//! Sharded persistence: one store directory per shard, one recovery.
//!
//! A sharded deployment ([`faust_ustor::ShardedServer`]) replicates the
//! protocol state across every shard but partitions the *durability*
//! work: only the shard owning a message appends it to disk. This
//! module supplies both halves of that contract:
//!
//! * [`ShardStore`] — the persistent [`ShardMember`]: a full replica
//!   plus its own write-ahead log, snapshots, and group-commit schedule
//!   for the messages it owns. Logged records are
//!   [`LogRecord::Routed`]: ordinary consecutive *local* WAL sequence
//!   numbers on the outside, the cross-shard *global* sequence number
//!   inside the checksummed payload.
//! * [`ShardedBackend`] — the [`ServerBackend`] that lays shards out as
//!   `shard-<i>/` subdirectories and, on restart, merges their logs
//!   back into one strictly gap-checked global history.
//!
//! # Recovery
//!
//! Replicas are deterministic, so any two shards at the same global
//! coverage hold bit-identical state. Recovery therefore rebuilds **one**
//! state and clones it into every shard:
//!
//! 1. each shard's snapshot and log are read and locally validated
//!    (same strictness as [`PersistentServer`](crate::PersistentServer):
//!    checksums, consecutive local sequence numbers, snapshot/log
//!    coherence — plus: every record must be `Routed`, every snapshot
//!    must carry its global coverage);
//! 2. the snapshot with the greatest global coverage `G` seeds the
//!    state (records below `G` are already reflected in it);
//! 3. every shard's records with global sequence number `≥ G` are
//!    merged, sorted, and validated **consecutive from `G`** — a
//!    missing owned record is a [`StoreError::SequenceGap`], a repeated
//!    one a [`StoreError::DuplicateRecord`]; no silent prefixes, ever —
//!    then replayed in global order.
//!
//! The deployment resumes sequencing at the first unseen global number,
//! so a restart is invisible to clients — while a *truncated* shard log
//! recovers (via the explicit [`ShardedBackend::repair`] mode, never
//! silently) into exactly the rollback fail-aware clients detect.
//!
//! # Crash semantics
//!
//! If any one shard wedges (a failed append, fsync, or snapshot), the
//! whole deployment goes crash-silent — [`ShardedServer`] stops
//! sequencing the moment a wedge is observed. Partial progress on the
//! surviving shards would fork the global order that recovery rebuilds;
//! a uniformly silent server is just a crashed server, the honest
//! failure mode the fail-aware layer already models.

use crate::codec::LogRecord;
use crate::log::{truncate_tail_records, Wal, WAL_FILE};
use crate::server::{replay_capturing, session_resume, Durability, StoreConfig};
use crate::snapshot::{read_snapshot, write_snapshot, Snapshot};
use crate::StoreError;
use faust_types::{ClientId, CommitMsg, ReplyMsg, SubmitMsg};
use faust_ustor::{Server, ServerBackend, SessionResume, ShardMember, ShardedServer, UstorServer};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The directory of shard `shard` inside a sharded store rooted at
/// `dir`.
pub fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}"))
}

/// A persistent shard: a full state replica, durable only for the
/// messages it owns.
///
/// Owned messages follow the `PersistentServer` write path exactly —
/// log first ([`LogRecord::Routed`], local WAL numbering), then apply
/// the very record that was logged, withholding replies under
/// [`Durability::Group`] until the batch fsync. Non-owned messages take
/// the absorb path: state update only, no I/O, no replies. The shard
/// tracks the first global sequence number not yet reflected in its
/// state, and stamps it into every snapshot
/// ([`Snapshot::global_next_seq`]) so recovery knows how far each
/// replica's state reaches.
#[derive(Debug)]
pub struct ShardStore {
    shard: usize,
    dir: PathBuf,
    config: StoreConfig,
    inner: UstorServer,
    wal: Wal,
    /// First global sequence number not reflected in `inner`.
    global_next: u64,
    wedged: Option<StoreError>,
    held: Vec<(ClientId, ReplyMsg)>,
    unsynced: u64,
    batch_started: Option<Instant>,
}

impl ShardStore {
    fn assemble(
        shard: usize,
        dir: &Path,
        config: StoreConfig,
        inner: UstorServer,
        wal: Wal,
        global_next: u64,
    ) -> Self {
        ShardStore {
            shard,
            dir: dir.to_path_buf(),
            config,
            inner,
            wal,
            global_next,
            wedged: None,
            held: Vec::new(),
            unsynced: 0,
            batch_started: None,
        }
    }

    /// The shard's index within its deployment.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The replica state (diagnostics and tests).
    pub fn server(&self) -> &UstorServer {
        &self.inner
    }

    /// Local sequence number the next logged record will carry — the
    /// number of messages this shard has ever *owned*.
    pub fn next_local_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// First global sequence number not reflected in the replica.
    pub fn global_next_seq(&self) -> u64 {
        self.global_next
    }

    /// Writes a snapshot of the replica and rotates the shard's log.
    /// Same crash-ordering as the single-engine store: snapshot renamed
    /// into place before the rotation, overlap skipped by recovery.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors; on error the old log keeps
    /// growing and the shard stays consistent.
    pub fn snapshot(&mut self) -> Result<(), StoreError> {
        let next_seq = self.wal.next_seq();
        write_snapshot(
            &self.dir,
            &Snapshot {
                n: self.inner.num_clients(),
                next_seq,
                state: self.inner.export_state(),
                global_next_seq: Some(self.global_next),
            },
            self.config.sync(),
        )?;
        self.wal = Wal::create(
            &self.dir,
            self.inner.num_clients(),
            next_seq,
            self.config.sync(),
        )?;
        // The snapshot durably covers the unsynced group-commit tail.
        self.unsynced = 0;
        Ok(())
    }

    fn wedge(&mut self, e: StoreError) {
        self.wedged = Some(e);
        self.held.clear();
        self.unsynced = 0;
        self.batch_started = None;
    }

    fn log(&mut self, record: &LogRecord) -> bool {
        if self.wedged.is_some() {
            return false;
        }
        match self.wal.append(record, self.config.sync_each_append()) {
            Ok(_) => true,
            Err(e) => {
                self.wedge(e);
                false
            }
        }
    }

    fn maybe_snapshot(&mut self) {
        if self.config.snapshot_every == 0 || self.wal.records() < self.config.snapshot_every {
            return;
        }
        if let Err(e) = self.snapshot() {
            self.wedge(e);
        }
    }

    /// The owned-message write path — `PersistentServer::log_then_apply`
    /// with the record wrapped in its global position.
    fn log_then_apply(&mut self, seq: u64, inner: LogRecord) -> Vec<(ClientId, ReplyMsg)> {
        let record = LogRecord::Routed {
            seq,
            inner: Box::new(inner),
        };
        if !self.log(&record) {
            return Vec::new(); // wedged: crash-silence, never unlogged acks
        }
        self.global_next = seq + 1;
        let replies = record.apply(&mut self.inner);
        match self.config.durability {
            Durability::Group { max_records, .. } => {
                self.unsynced += 1;
                self.batch_started.get_or_insert_with(Instant::now);
                self.held.extend(replies);
                self.maybe_snapshot();
                if self.unsynced >= max_records.max(1) {
                    self.flush(true)
                } else {
                    Vec::new()
                }
            }
            Durability::Always | Durability::Never => {
                self.maybe_snapshot();
                replies
            }
        }
    }
}

impl ShardMember for ShardStore {
    fn apply_submit(
        &mut self,
        seq: u64,
        from: ClientId,
        msg: SubmitMsg,
        owned: bool,
    ) -> Vec<(ClientId, ReplyMsg)> {
        if !owned {
            // Absorb path: keep the replica current, nothing durable —
            // the owner's log is the record of this message.
            if self.wedged.is_none() {
                self.inner.absorb_submit(from, msg);
                self.global_next = seq + 1;
            }
            return Vec::new();
        }
        self.log_then_apply(seq, LogRecord::Submit { from, msg })
    }

    fn apply_commit(
        &mut self,
        seq: u64,
        from: ClientId,
        msg: CommitMsg,
        owned: bool,
    ) -> Vec<(ClientId, ReplyMsg)> {
        if !owned {
            if self.wedged.is_none() {
                self.inner.on_commit(from, msg);
                self.global_next = seq + 1;
            }
            return Vec::new();
        }
        self.log_then_apply(seq, LogRecord::Commit { from, msg })
    }

    fn flush(&mut self, force: bool) -> Vec<(ClientId, ReplyMsg)> {
        let Durability::Group {
            max_records,
            max_wait,
        } = self.config.durability
        else {
            return Vec::new();
        };
        if self.wedged.is_some() || (self.held.is_empty() && self.unsynced == 0) {
            return Vec::new();
        }
        let due = force
            || self.unsynced == 0 // snapshot already made the batch durable
            || self.unsynced >= max_records.max(1)
            || self.batch_started.is_some_and(|t| t.elapsed() >= max_wait);
        if !due {
            return Vec::new();
        }
        if self.unsynced > 0 {
            if let Err(e) = self.wal.sync() {
                self.wedge(e);
                return Vec::new();
            }
            self.unsynced = 0;
        }
        self.batch_started = None;
        std::mem::take(&mut self.held)
    }

    fn flush_deadline(&self) -> Option<Instant> {
        let Durability::Group { max_wait, .. } = self.config.durability else {
            return None;
        };
        if self.wedged.is_some() || (self.held.is_empty() && self.unsynced == 0) {
            return None;
        }
        Some(self.batch_started? + max_wait)
    }

    fn wedged(&self) -> Option<String> {
        self.wedged.as_ref().map(|e| e.to_string())
    }
}

/// One shard's durable remains, scanned and locally validated.
struct ScannedShard {
    wal: Wal,
    /// The shard's snapshot, if any.
    snapshot: Option<Snapshot>,
    /// `(global_seq, record)` for every record in the shard's log.
    records: Vec<(u64, LogRecord)>,
}

impl ScannedShard {
    /// First global sequence number not reflected in the snapshot state
    /// (0 when the shard has never snapshotted).
    fn coverage(&self) -> u64 {
        self.snapshot
            .as_ref()
            .and_then(|s| s.global_next_seq)
            .unwrap_or(0)
    }
}

/// Reads and locally validates shard `shard` of a sharded store — the
/// per-shard half of recovery.
fn scan_shard(dir: &Path, shard: usize, n: usize) -> Result<ScannedShard, StoreError> {
    let sdir = shard_dir(dir, shard);
    let snapshot = read_snapshot(&sdir)?;
    if !sdir.join(WAL_FILE).exists() {
        return match snapshot {
            Some(_) => Err(StoreError::MissingWal),
            None => Err(StoreError::MissingState),
        };
    }
    let (wal, contents) = Wal::open(&sdir)?;
    if wal.n() != n {
        return Err(StoreError::ClientCountMismatch {
            expected: n,
            found: wal.n(),
        });
    }
    if let Some(snap) = &snapshot {
        if snap.n != n {
            return Err(StoreError::ClientCountMismatch {
                expected: n,
                found: snap.n,
            });
        }
        if snap.global_next_seq.is_none() {
            return Err(StoreError::UnshardedSnapshot { shard });
        }
        if contents.header.base_seq > snap.next_seq {
            return Err(StoreError::SnapshotAheadOfLog {
                snapshot_next: snap.next_seq,
                base_seq: contents.header.base_seq,
            });
        }
        if contents.next_seq() < snap.next_seq {
            return Err(StoreError::LogEndsBeforeSnapshot {
                snapshot_next: snap.next_seq,
                log_next: contents.next_seq(),
            });
        }
    }
    let mut records = Vec::with_capacity(contents.records.len());
    for scanned in contents.records {
        let Some(global) = scanned.record.global_seq() else {
            return Err(StoreError::UnroutedRecord {
                shard,
                seq: scanned.seq,
            });
        };
        records.push((global, scanned.record));
    }
    Ok(ScannedShard {
        wal,
        snapshot,
        records,
    })
}

/// The single recovered truth of a sharded store: one state, the global
/// position it reaches, and each shard's reopened log.
struct RecoveredShards {
    state: UstorServer,
    global_next: u64,
    shards: Vec<ScannedShard>,
    /// Per-client session state rebuilt from the merged replay, for the
    /// engine's duplicate cache (see [`Server::resume_sessions`]).
    resume: Vec<SessionResume>,
}

/// Merges the shards' durable remains back into one state — the global
/// half of recovery (see the module docs for the invariants).
fn recover_shards(dir: &Path, shards: usize, n: usize) -> Result<RecoveredShards, StoreError> {
    let mut scanned = Vec::with_capacity(shards);
    for shard in 0..shards {
        scanned.push(scan_shard(dir, shard, n)?);
    }
    // Seed from the deepest snapshot: replicas are deterministic, so the
    // shard that snapshotted furthest holds the state every other shard
    // would reach at that same global position.
    let base = scanned
        .iter()
        .map(ScannedShard::coverage)
        .max()
        .unwrap_or(0);
    let mut state = match scanned
        .iter()
        .find(|s| s.coverage() == base)
        .and_then(|s| s.snapshot.as_ref())
    {
        Some(snap) => UstorServer::from_state(snap.state.clone()),
        None => UstorServer::new(n),
    };
    // Merge every shard's records at or past the seed's coverage into
    // the one global order and demand it consecutive: each global
    // number was logged by exactly one owner, so a hole is a discarded
    // message and a repeat is a duplicated one.
    let mut merged: Vec<&(u64, LogRecord)> = scanned
        .iter()
        .flat_map(|s| s.records.iter())
        .filter(|(global, _)| *global >= base)
        .collect();
    merged.sort_by_key(|(global, _)| *global);
    let mut expected = base;
    let mut rings = vec![VecDeque::new(); n];
    for (global, record) in merged {
        if *global < expected {
            return Err(StoreError::DuplicateRecord {
                expected,
                found: *global,
            });
        }
        if *global > expected {
            return Err(StoreError::SequenceGap {
                expected,
                found: *global,
            });
        }
        // Replay in global order, recapturing the replies of the
        // post-snapshot window for the engine's duplicate cache.
        replay_capturing(record.clone(), &mut state, &mut rings);
        expected += 1;
    }
    let resume = session_resume(&state, rings);
    Ok(RecoveredShards {
        state,
        global_next: expected,
        shards: scanned,
        resume,
    })
}

/// The sharded [`ServerBackend`]: `shards` independent `shard-<i>/`
/// store directories under one root, recovered together into one
/// [`ShardedServer`].
///
/// Building the backend either initializes a fresh layout (no shard
/// directories yet) or recovers the existing one — so handing the same
/// backend to a restarted process resumes the deployment where the
/// merged logs left it. The shard count is part of the layout: opening
/// an existing store with a different count is a
/// [`StoreError::ShardLayoutMismatch`], never a silent re-partitioning
/// (registers would change owners and the logs' global order would no
/// longer be reconstructible).
#[derive(Debug, Clone)]
pub struct ShardedBackend {
    /// Root directory; shards live in `shard-<i>/` beneath it.
    pub dir: PathBuf,
    /// Store configuration, applied to every shard (each shard runs its
    /// own group-commit batch and snapshot rotation on this policy).
    pub config: StoreConfig,
    /// Number of shards — fixed for the lifetime of the store.
    pub shards: usize,
    /// Run each shard on its own worker thread (the serving
    /// configuration); inline (deterministic) otherwise.
    pub threaded: bool,
    /// **Opt-in repair**: before strict recovery, truncate every
    /// shard's log to the longest globally-consistent prefix (dropping
    /// torn tails and any records past the first global hole). This is
    /// the sharded analogue of
    /// [`truncate_tail_records`] — an
    /// explicit operator decision, never a default, because discarding
    /// a suffix is indistinguishable from the rollback attack and
    /// clients will flag the recovered state accordingly.
    pub repair: bool,
}

impl ShardedBackend {
    /// A backend rooted at `dir` with `shards` shards (strict recovery,
    /// no repair).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
        shards: usize,
        threaded: bool,
    ) -> Self {
        assert!(shards > 0, "a sharded store has at least one shard");
        ShardedBackend {
            dir: dir.into(),
            config,
            shards,
            threaded,
            repair: false,
        }
    }

    /// How many `shard-<i>/` directories currently exist under `dir`
    /// (counted from 0 up to the first missing index).
    fn existing_shards(&self) -> usize {
        (0..)
            .take_while(|i| shard_dir(&self.dir, *i).is_dir())
            .count()
    }

    /// Opens the store: fresh initialization if no shard directories
    /// exist, merged recovery otherwise. Returns the ready
    /// [`ShardedServer`], sequencing resumed at the first global number
    /// the logs have not seen.
    ///
    /// # Errors
    ///
    /// Structured [`StoreError`]s for layout or recovery anomalies, and
    /// file-system errors.
    pub fn open(&self, n: usize) -> Result<ShardedServer, StoreError> {
        std::fs::create_dir_all(&self.dir)?;
        let existing = self.existing_shards();
        if existing == 0 {
            return self.initialize(n);
        }
        if existing != self.shards {
            return Err(StoreError::ShardLayoutMismatch {
                expected: self.shards,
                found: existing,
            });
        }
        if self.repair {
            self.repair_to_consistent_prefix(n)?;
        }
        let recovered = recover_shards(&self.dir, self.shards, n)?;
        let members: Vec<Box<dyn ShardMember>> = recovered
            .shards
            .into_iter()
            .enumerate()
            .map(|(shard, s)| {
                Box::new(ShardStore::assemble(
                    shard,
                    &shard_dir(&self.dir, shard),
                    self.config.clone(),
                    recovered.state.clone(),
                    s.wal,
                    recovered.global_next,
                )) as Box<dyn ShardMember>
            })
            .collect();
        Ok(self
            .deploy(n, members)
            .resumed_at(recovered.global_next)
            .with_resume(recovered.resume))
    }

    fn initialize(&self, n: usize) -> Result<ShardedServer, StoreError> {
        let mut members: Vec<Box<dyn ShardMember>> = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let sdir = shard_dir(&self.dir, shard);
            std::fs::create_dir_all(&sdir)?;
            let wal = Wal::create(&sdir, n, 0, self.config.sync())?;
            members.push(Box::new(ShardStore::assemble(
                shard,
                &sdir,
                self.config.clone(),
                UstorServer::new(n),
                wal,
                0,
            )));
        }
        Ok(self.deploy(n, members))
    }

    fn deploy(&self, n: usize, members: Vec<Box<dyn ShardMember>>) -> ShardedServer {
        if self.threaded {
            ShardedServer::threaded(n, members)
        } else {
            ShardedServer::inline(n, members)
        }
    }

    /// Truncates every shard's log to the longest globally-consistent
    /// prefix: tolerant-scans each log, finds the first global sequence
    /// number missing from the union (starting at the deepest snapshot
    /// coverage), and drops every record at or past it — plus any torn
    /// tail bytes. Returns the cut position (first discarded global
    /// number). A store with no anomalies is untouched.
    ///
    /// # Errors
    ///
    /// Snapshot and header problems are not repairable here and
    /// propagate; so does any file-system error.
    pub fn repair_to_consistent_prefix(&self, n: usize) -> Result<u64, StoreError> {
        let mut coverage = 0u64;
        // (shard, valid records' global seqs, in log order)
        let mut globals: Vec<Vec<u64>> = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let sdir = shard_dir(&self.dir, shard);
            if let Some(snap) = read_snapshot(&sdir)? {
                if snap.n != n {
                    return Err(StoreError::ClientCountMismatch {
                        expected: n,
                        found: snap.n,
                    });
                }
                let Some(global) = snap.global_next_seq else {
                    return Err(StoreError::UnshardedSnapshot { shard });
                };
                coverage = coverage.max(global);
            }
            let (contents, _anomaly) = Wal::scan_prefix(&sdir.join(WAL_FILE))?;
            let mut seqs = Vec::with_capacity(contents.records.len());
            for scanned in contents.records {
                let Some(global) = scanned.record.global_seq() else {
                    return Err(StoreError::UnroutedRecord {
                        shard,
                        seq: scanned.seq,
                    });
                };
                seqs.push(global);
            }
            globals.push(seqs);
        }
        // First global number nobody logged — everything past it is
        // unreachable for replay and must go.
        let mut have: Vec<u64> = globals.iter().flatten().copied().collect();
        have.sort_unstable();
        let mut cut = coverage;
        for g in have {
            if g == cut {
                cut += 1;
            }
        }
        for (shard, seqs) in globals.iter().enumerate() {
            // Appends happen in global order, so the doomed records form
            // a tail of the local log.
            let doomed = seqs.iter().filter(|g| **g >= cut).count();
            truncate_tail_records(&shard_dir(&self.dir, shard), doomed)?;
        }
        Ok(cut)
    }
}

impl ServerBackend for ShardedBackend {
    fn build(&self, n: usize) -> std::io::Result<Box<dyn Server + Send>> {
        let server = self.open(n)?;
        Ok(Box::new(server))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{clients, run_op, scratch_dir};
    use faust_types::Value;

    fn no_sync() -> StoreConfig {
        StoreConfig {
            durability: Durability::Never,
            snapshot_every: 0,
        }
    }

    fn backend(dir: &Path, shards: usize) -> ShardedBackend {
        ShardedBackend::new(dir, no_sync(), shards, false)
    }

    /// One full read op; returns what the read observed.
    fn run_read(
        server: &mut dyn Server,
        client: &mut faust_ustor::UstorClient,
        target: ClientId,
    ) -> Option<Option<Value>> {
        let id = client.id();
        let submit = client.begin_read(target).unwrap();
        let mut replies = server.on_submit(id, submit);
        if replies.is_empty() {
            replies = server.flush(true);
        }
        let (_, reply) = replies
            .into_iter()
            .find(|(to, _)| *to == id)
            .expect("one reply for the submitter");
        let (commit, done) = client.handle_reply(reply).expect("correct server");
        server.on_commit(id, commit.expect("immediate mode"));
        done.read_value
    }

    /// Writes one value per client and reads the left neighbour's.
    fn workload(server: &mut dyn Server, cs: &mut [faust_ustor::UstorClient], rounds: u64) {
        let n = cs.len();
        for round in 0..rounds {
            for i in 0..n {
                let submit = cs[i].begin_write(Value::unique(i as u32, round)).unwrap();
                run_op(server, &mut cs[i], submit);
            }
        }
        for i in 0..n {
            let target = ClientId::new(((i + n - 1) % n) as u32);
            let submit = cs[i].begin_read(target).unwrap();
            run_op(server, &mut cs[i], submit);
        }
    }

    #[test]
    fn sharded_store_survives_restart() {
        let dir = scratch_dir("sharded-restart");
        let n = 3;
        let backend = backend(&dir, 2);
        let mut server = backend.open(n).unwrap();
        let mut cs = clients(n, b"sharded-restart");
        workload(&mut server, &mut cs, 2);
        assert!(server.wedge_reason().is_none());
        drop(server); // crash

        // Same backend, new process: the merged recovery resumes the
        // schedule and the clients' version vectors accept it.
        let mut server = backend.open(n).unwrap();
        let read = run_read(&mut server, &mut cs[0], ClientId::new(1));
        assert_eq!(read, Some(Some(Value::unique(1, 1))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_snapshots_rotate_and_recovery_uses_the_deepest() {
        let dir = scratch_dir("sharded-snap");
        let n = 4;
        let config = StoreConfig {
            durability: Durability::Never,
            snapshot_every: 3,
        };
        let backend = ShardedBackend::new(&dir, config, 4, false);
        let mut server = backend.open(n).unwrap();
        let mut cs = clients(n, b"sharded-snap");
        workload(&mut server, &mut cs, 3);
        drop(server);
        // At least one shard rotated its log behind a snapshot.
        let rotated = (0..4)
            .filter(|i| {
                shard_dir(&dir, *i)
                    .join(crate::snapshot::SNAPSHOT_FILE)
                    .exists()
            })
            .count();
        assert!(rotated > 0, "some shard snapshotted");
        // Recovery seeds from the deepest snapshot and replays the rest.
        let mut server = backend.open(n).unwrap();
        let read = run_read(&mut server, &mut cs[1], ClientId::new(0));
        assert_eq!(read, Some(Some(Value::unique(0, 2))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_withholds_until_a_shard_flush() {
        let dir = scratch_dir("sharded-group");
        let config = StoreConfig {
            durability: Durability::Group {
                max_records: 100,
                max_wait: std::time::Duration::from_secs(3600),
            },
            snapshot_every: 0,
        };
        let backend = ShardedBackend::new(&dir, config, 2, false);
        let mut server = backend.open(2).unwrap();
        let mut cs = clients(2, b"sharded-group");
        let submit = cs[0].begin_write(Value::from("held")).unwrap();
        assert!(
            server.on_submit(ClientId::new(0), submit).is_empty(),
            "reply withheld until the owning shard's batch fsync"
        );
        assert!(server.flush_deadline().is_some());
        let released = server.flush(true);
        assert_eq!(released.len(), 1);
        cs[0]
            .handle_reply(released.into_iter().next().unwrap().1)
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_recovery_answers_a_resent_submit_byte_identically() {
        use faust_types::{UstorMsg, Wire};
        let dir = scratch_dir("sharded-resume");
        let n = 2;
        let backend = backend(&dir, 2);
        let mut server = backend.open(n).unwrap();
        let mut cs = clients(n, b"sharded-resume");
        let submit = cs[0].begin_write(Value::from("v")).unwrap();
        run_op(&mut server, &mut cs[0], submit);
        // The ack of this read is lost with the connection.
        let read = cs[0].begin_read(ClientId::new(1)).unwrap();
        let (_, original) = server
            .on_submit(ClientId::new(0), read.clone())
            .pop()
            .unwrap();
        drop(server); // crash

        // A restarted deployment, behind a full engine, recognises the
        // resent SUBMIT as a duplicate and re-issues the same bytes.
        let recovered = backend.build(n).unwrap();
        let mut engine = faust_ustor::ServerEngine::new(n, recovered);
        engine.enqueue(ClientId::new(0), UstorMsg::Submit(read));
        engine.process_all();
        let (to, replayed) = engine.poll_output().expect("replayed reply");
        assert_eq!(to, ClientId::new(0));
        assert_eq!(replayed.encode(), UstorMsg::Reply(original).encode());
        assert_eq!(engine.stats().duplicates, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_count_is_part_of_the_layout() {
        let dir = scratch_dir("sharded-layout");
        drop(backend(&dir, 2).open(2).unwrap());
        for wrong in [1usize, 3] {
            assert!(matches!(
                backend(&dir, wrong).open(2).unwrap_err(),
                StoreError::ShardLayoutMismatch { expected, .. } if expected == wrong
            ));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_shard_is_a_gap_strictly_and_a_rollback_under_repair() {
        let dir = scratch_dir("sharded-truncate");
        let n = 2;
        let backend = backend(&dir, 2);
        let mut server = backend.open(n).unwrap();
        let mut cs = clients(n, b"sharded-truncate");
        workload(&mut server, &mut cs, 3);
        drop(server);

        // The rollback attack against one shard: drop its last records.
        truncate_tail_records(&shard_dir(&dir, 1), 2).unwrap();

        // Strict recovery refuses: the merged global order has a hole.
        assert!(matches!(
            backend.open(n).unwrap_err(),
            StoreError::SequenceGap { .. }
        ));

        // Explicit repair cuts EVERY shard back to the longest
        // consistent prefix and recovery then succeeds...
        let repairing = ShardedBackend {
            repair: true,
            ..backend.clone()
        };
        let mut server = repairing.open(n).unwrap();
        // ...into a rolled-back state: the fail-aware client, whose
        // version vector remembers the discarded suffix, detects it.
        let submit = cs[0].begin_read(ClientId::new(1)).unwrap();
        let mut replies = server.on_submit(ClientId::new(0), submit);
        if replies.is_empty() {
            replies = server.flush(true);
        }
        let (_, reply) = replies.pop().expect("server answers");
        assert!(
            cs[0].handle_reply(reply).is_err(),
            "client flags the repaired (rolled-back) history"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repair_on_a_clean_store_is_a_no_op() {
        let dir = scratch_dir("sharded-repair-noop");
        let n = 2;
        let backend = backend(&dir, 2);
        let mut server = backend.open(n).unwrap();
        let mut cs = clients(n, b"sharded-repair-noop");
        workload(&mut server, &mut cs, 2);
        drop(server);
        let repairing = ShardedBackend {
            repair: true,
            ..backend.clone()
        };
        // Nothing truncated; the same clients keep going happily.
        let mut server = repairing.open(n).unwrap();
        let read = run_read(&mut server, &mut cs[1], ClientId::new(0));
        assert_eq!(read, Some(Some(Value::unique(0, 1))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
