//! Arithmetic in GF(2²⁵⁵ − 19), the base field of curve25519.
//!
//! Elements are held in five 51-bit limbs (radix 2⁵¹), the standard
//! unsaturated representation for 64-bit targets: limb products fit a
//! `u128`, and the prime's shape makes reduction a multiply-by-19 of the
//! overflow. Every public operation returns a *weakly reduced* element
//! (each limb < 2⁵² ); only [`Fe::to_bytes`] produces the unique canonical
//! encoding.
//!
//! All arithmetic here is variable-time. That is fine for verification,
//! which handles only public data; see the crate docs for the
//! side-channel caveat on signing.

/// Mask of one 51-bit limb.
const MASK51: u64 = (1 << 51) - 1;

/// A field element of GF(2²⁵⁵ − 19).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fe(pub(crate) [u64; 5]);

/// p − 2 as little-endian bytes (exponent for inversion via Fermat).
const P_MINUS_2: [u8; 32] = {
    let mut b = [0xffu8; 32];
    b[0] = 0xeb; // 0xed - 2
    b[31] = 0x7f;
    b
};

/// (p − 5)/8 = 2²⁵² − 3 as little-endian bytes (exponent used in the
/// square-root computation of RFC 8032 §5.1.3).
const P_MINUS_5_OVER_8: [u8; 32] = {
    let mut b = [0xffu8; 32];
    b[0] = 0xfd;
    b[31] = 0x0f;
    b
};

/// (p − 1)/4 = 2²⁵³ − 5 as little-endian bytes (2 raised to this power is
/// a square root of −1).
const P_MINUS_1_OVER_4: [u8; 32] = {
    let mut b = [0xffu8; 32];
    b[0] = 0xfb;
    b[31] = 0x1f;
    b
};

impl Fe {
    pub(crate) const ZERO: Fe = Fe([0; 5]);
    pub(crate) const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// A small integer as a field element.
    pub(crate) fn from_u64(v: u64) -> Fe {
        let mut fe = Fe::ZERO;
        fe.0[0] = v & MASK51;
        fe.0[1] = v >> 51;
        fe
    }

    /// Loads a little-endian 255-bit encoding (the top bit of byte 31 is
    /// ignored, per convention).
    pub(crate) fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load8 = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
        Fe([
            load8(0) & MASK51,
            (load8(6) >> 3) & MASK51,
            (load8(12) >> 6) & MASK51,
            (load8(19) >> 1) & MASK51,
            (load8(24) >> 12) & MASK51,
        ])
    }

    /// Whether `bytes` is the canonical encoding of some field element,
    /// i.e. interpreting the low 255 bits as an integer yields a value
    /// < p. (The sign bit — bit 255 — is not examined.)
    pub(crate) fn bytes_are_canonical(bytes: &[u8; 32]) -> bool {
        // Values ≥ p = 2²⁵⁵ − 19 have bytes 1..31 all 0xff (modulo the
        // sign bit) and byte 0 ≥ 0xed.
        let mut all_ones = (bytes[31] | 0x80) == 0xff;
        for &b in &bytes[1..31] {
            all_ones &= b == 0xff;
        }
        !(all_ones && bytes[0] >= 0xed)
    }

    /// The canonical 32-byte little-endian encoding (fully reduced;
    /// bit 255 is zero).
    pub(crate) fn to_bytes(self) -> [u8; 32] {
        let mut l = self.carried().0;
        // Compute q = floor((x + 19) / 2²⁵⁵) ∈ {0, 1}: 1 exactly when
        // x ≥ p. Then x − q·p = x + 19q mod 2²⁵⁵ is canonical.
        let mut q = (l[0] + 19) >> 51;
        q = (l[1] + q) >> 51;
        q = (l[2] + q) >> 51;
        q = (l[3] + q) >> 51;
        q = (l[4] + q) >> 51;
        l[0] += 19 * q;
        let mut carry = 0u64;
        for limb in l.iter_mut() {
            *limb += carry;
            carry = *limb >> 51;
            *limb &= MASK51;
        }
        // carry (the 2²⁵⁵ bit) is dropped: reduction modulo 2²⁵⁵.
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for limb in l {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 {
                out[idx] = acc as u8;
                idx += 1;
                acc >>= 8;
                acc_bits -= 8;
            }
        }
        // 5·51 = 255 bits: seven bits remain for the final byte.
        out[idx] = acc as u8;
        debug_assert_eq!(idx, 31);
        out
    }

    /// Weakly reduces so every limb is < 2⁵¹ + ε.
    fn carried(self) -> Fe {
        let mut l = self.0;
        let mut carry = 0u64;
        for limb in l.iter_mut() {
            *limb += carry;
            carry = *limb >> 51;
            *limb &= MASK51;
        }
        l[0] += 19 * carry;
        // One more partial pass: l[0] may have exceeded 2⁵¹ again.
        let c = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c;
        Fe(l)
    }

    pub(crate) fn add(self, rhs: Fe) -> Fe {
        let mut l = self.0;
        for (a, b) in l.iter_mut().zip(rhs.0) {
            *a += b;
        }
        Fe(l).carried()
    }

    pub(crate) fn sub(self, rhs: Fe) -> Fe {
        // a + 2p − b keeps every limb non-negative: the limbs of 2p are
        // (2⁵² − 38, 2⁵² − 2, …), ≥ any weakly reduced limb of b.
        let two_p = [
            (MASK51 - 18) * 2, // 2·(2⁵¹ − 19) = 2⁵² − 38
            MASK51 * 2,        // 2·(2⁵¹ − 1) = 2⁵² − 2
            MASK51 * 2,
            MASK51 * 2,
            MASK51 * 2,
        ];
        let mut l = [0u64; 5];
        for i in 0..5 {
            l[i] = self.0[i] + two_p[i] - rhs.0[i];
        }
        Fe(l).carried()
    }

    pub(crate) fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    pub(crate) fn mul(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        let m = |x: u64, y: u64| (x as u128) * (y as u128);
        // 19·b fits u64 comfortably: b limbs < 2⁵², 19·2⁵² < 2⁵⁷.
        let b1_19 = 19 * b[1];
        let b2_19 = 19 * b[2];
        let b3_19 = 19 * b[3];
        let b4_19 = 19 * b[4];
        let mut r0 =
            m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let mut r1 =
            m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let mut r2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let mut r3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let mut r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        let mut out = [0u64; 5];
        let mut carry: u128 = 0;
        r0 += carry;
        out[0] = (r0 as u64) & MASK51;
        carry = r0 >> 51;
        r1 += carry;
        out[1] = (r1 as u64) & MASK51;
        carry = r1 >> 51;
        r2 += carry;
        out[2] = (r2 as u64) & MASK51;
        carry = r2 >> 51;
        r3 += carry;
        out[3] = (r3 as u64) & MASK51;
        carry = r3 >> 51;
        r4 += carry;
        out[4] = (r4 as u64) & MASK51;
        carry = r4 >> 51;
        out[0] += 19 * (carry as u64);
        Fe(out).carried()
    }

    pub(crate) fn square(self) -> Fe {
        self.mul(self)
    }

    /// `self` raised to the little-endian exponent `e` (variable time).
    fn pow(self, e: &[u8; 32]) -> Fe {
        let mut result = Fe::ONE;
        let mut started = false;
        for byte_idx in (0..32).rev() {
            for bit in (0..8).rev() {
                if started {
                    result = result.square();
                }
                if (e[byte_idx] >> bit) & 1 == 1 {
                    result = result.mul(self);
                    started = true;
                }
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat's little theorem (x^(p−2)).
    /// Returns zero for zero.
    pub(crate) fn invert(self) -> Fe {
        self.pow(&P_MINUS_2)
    }

    /// x^((p−5)/8), the core exponentiation of the Ed25519 decompression
    /// square root (RFC 8032 §5.1.3).
    pub(crate) fn pow_p58(self) -> Fe {
        self.pow(&P_MINUS_5_OVER_8)
    }

    /// √−1 = 2^((p−1)/4), computed once.
    pub(crate) fn sqrt_m1() -> Fe {
        *SQRT_M1.get_or_init(|| Fe::from_u64(2).pow(&P_MINUS_1_OVER_4))
    }

    pub(crate) fn is_zero(self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// The "sign" of a field element: the low bit of its canonical
    /// encoding (RFC 8032 calls negative the elements with this bit set).
    pub(crate) fn is_negative(self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    pub(crate) fn ct_eq_vartime(self, rhs: Fe) -> bool {
        self.to_bytes() == rhs.to_bytes()
    }
}

static SQRT_M1: std::sync::OnceLock<Fe> = std::sync::OnceLock::new();

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> Fe {
        Fe::from_u64(v)
    }

    #[test]
    fn small_integer_arithmetic() {
        assert!(fe(7).add(fe(5)).ct_eq_vartime(fe(12)));
        assert!(fe(7).sub(fe(5)).ct_eq_vartime(fe(2)));
        assert!(fe(7).mul(fe(6)).ct_eq_vartime(fe(42)));
        assert!(fe(9).square().ct_eq_vartime(fe(81)));
    }

    #[test]
    fn negation_wraps_modulo_p() {
        // −1 ≡ p − 1: canonical bytes are (p−1) little-endian.
        let minus_one = fe(1).neg();
        let b = minus_one.to_bytes();
        assert_eq!(b[0], 0xec);
        assert_eq!(b[31], 0x7f);
        assert!(minus_one.add(fe(1)).is_zero());
    }

    #[test]
    fn inversion_roundtrips() {
        for v in [1u64, 2, 121666, 0xdeadbeef] {
            assert!(fe(v).mul(fe(v).invert()).ct_eq_vartime(Fe::ONE), "v={v}");
        }
        assert!(Fe::ZERO.invert().is_zero());
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = Fe::sqrt_m1();
        assert!(i.square().ct_eq_vartime(fe(1).neg()));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        bytes[31] &= 0x7f;
        // Not every 255-bit string is canonical, but this one is far
        // below p, so from/to must round-trip exactly.
        assert!(bytes[31] < 0x7f);
        assert_eq!(Fe::from_bytes(&bytes).to_bytes(), bytes);
    }

    #[test]
    fn canonicality_check() {
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        assert!(!Fe::bytes_are_canonical(&p_bytes), "p itself");
        p_bytes[0] = 0xec;
        assert!(Fe::bytes_are_canonical(&p_bytes), "p − 1");
        p_bytes[0] = 0xee;
        assert!(!Fe::bytes_are_canonical(&p_bytes), "p + 1");
        assert!(Fe::bytes_are_canonical(&[0u8; 32]), "zero");
    }

    #[test]
    fn noncanonical_input_reduces() {
        // p + 1 must decode to the element 1.
        let mut bytes = [0xffu8; 32];
        bytes[0] = 0xee;
        bytes[31] = 0x7f;
        assert!(Fe::from_bytes(&bytes).ct_eq_vartime(Fe::ONE));
    }
}
