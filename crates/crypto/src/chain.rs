//! Digest chains over operation sequences, as defined in Section 5 of the
//! FAUST paper.
//!
//! USTOR represents a client's *view history* — the sequence of operations
//! it believes have been scheduled — compactly by hashing the sequence of
//! executing-client indices into a running digest:
//!
//! ```text
//! D(ω_1 … ω_m) = ⊥                            if m = 0
//! D(ω_1 … ω_m) = H( D(ω_1 … ω_{m-1}) ‖ i_m )  otherwise
//! ```
//!
//! where `i_m` is the index of the client that executed the `m`-th
//! operation. Collision resistance of `H` makes the digest a unique
//! commitment to the whole sequence, so two clients can compare entire view
//! histories by comparing 32-byte digests.
//!
//! The empty chain `⊥` is represented by `None`; the encoding of the
//! previous link is length-tagged so `H(⊥ ‖ k)` and `H(d ‖ k)` can never
//! collide across arities.

use crate::sha256::{Digest, Sha256};
use crate::sig::ClientIndex;

/// Extends a digest chain by one operation executed by client `index`.
///
/// `prev` is the digest of the sequence so far (`None` for the empty
/// sequence `⊥`).
///
/// # Example
///
/// ```
/// use faust_crypto::chain::chain_extend;
/// let d1 = chain_extend(None, 0);
/// let d2 = chain_extend(Some(d1), 1);
/// // Chains commit to order: (0, 1) differs from (1, 0).
/// let other = chain_extend(Some(chain_extend(None, 1)), 0);
/// assert_ne!(d2, other);
/// ```
pub fn chain_extend(prev: Option<Digest>, index: ClientIndex) -> Digest {
    let mut h = Sha256::new();
    h.update(b"faust-chain/v1");
    match prev {
        None => h.update(&[0u8]),
        Some(d) => {
            h.update(&[1u8]);
            h.update(d.as_bytes());
        }
    }
    h.update(&index.to_be_bytes());
    h.finalize()
}

/// Computes the digest of a whole sequence of executing-client indices.
///
/// Returns `None` for the empty sequence (the paper's `⊥`).
///
/// # Example
///
/// ```
/// use faust_crypto::chain::{chain_digest, chain_extend};
/// assert_eq!(chain_digest(&[]), None);
/// let d = chain_digest(&[2, 0, 1]).unwrap();
/// let manual = chain_extend(Some(chain_extend(Some(chain_extend(None, 2)), 0)), 1);
/// assert_eq!(d, manual);
/// ```
pub fn chain_digest(indices: &[ClientIndex]) -> Option<Digest> {
    let mut acc = None;
    for &i in indices {
        acc = Some(chain_extend(acc, i));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn empty_is_bottom() {
        assert_eq!(chain_digest(&[]), None);
    }

    #[test]
    fn singleton_matches_extend() {
        assert_eq!(chain_digest(&[7]), Some(chain_extend(None, 7)));
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(chain_digest(&[0, 1]), chain_digest(&[1, 0]));
    }

    #[test]
    fn length_sensitive() {
        assert_ne!(chain_digest(&[0]), chain_digest(&[0, 0]));
        assert_ne!(chain_digest(&[0, 0]), chain_digest(&[0, 0, 0]));
    }

    #[test]
    fn prefix_extension_is_incremental() {
        let full = chain_digest(&[3, 1, 4, 1, 5]).unwrap();
        let prefix = chain_digest(&[3, 1, 4, 1]);
        assert_eq!(chain_extend(prefix, 5), full);
    }

    #[test]
    fn distinct_sequences_distinct_digests() {
        // All sequences of length ≤ 3 over 4 clients have unique digests.
        let mut seen: HashSet<Option<Digest>> = HashSet::new();
        let mut sequences: Vec<Vec<ClientIndex>> = vec![vec![]];
        let mut frontier = sequences.clone();
        for _ in 0..3 {
            let mut next = Vec::new();
            for s in &frontier {
                for c in 0..4 {
                    let mut e = s.clone();
                    e.push(c);
                    next.push(e);
                }
            }
            sequences.extend(next.iter().cloned());
            frontier = next;
        }
        for s in &sequences {
            assert!(seen.insert(chain_digest(s)), "collision for {s:?}");
        }
    }
}
