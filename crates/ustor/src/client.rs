//! The USTOR client state machine — Algorithm 1 of the paper.
//!
//! [`UstorClient`] is written sans-io: [`UstorClient::begin_write`] /
//! [`UstorClient::begin_read`] produce the SUBMIT message to send, and
//! [`UstorClient::handle_reply`] consumes the server's REPLY, performs
//! every check of lines 35–52, and produces the COMMIT message plus the
//! operation's result. Any failed check yields a [`Fault`] — the paper's
//! `output fail_i; halt` — after which the client permanently refuses to
//! operate.
//!
//! The "extended" operations of the paper (which additionally return the
//! relevant versions, needed by the FAUST layer) correspond to the
//! [`OpCompletion`] struct: every completion carries the committed version
//! and, for reads, the writer's version.

use crate::fault::Fault;
use faust_crypto::chain::chain_extend;
use faust_crypto::sha256::sha256;
use faust_crypto::sig::{Keypair, SigContext, Signer, Verifier, VerifierRegistry};
use faust_crypto::Digest;
use faust_types::op::{data_signing_bytes, proof_signing_bytes, submit_signing_bytes};
use faust_types::{
    ClientId, CommitMsg, InvocationTuple, OpKind, ReplyMsg, SignedVersion, SubmitMsg, Timestamp,
    Value, Version,
};

/// Why a new operation could not be started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeginError {
    /// An operation is already in flight; USTOR clients are sequential.
    Busy,
    /// The client has detected a server fault and halted.
    Halted(Fault),
}

impl std::fmt::Display for BeginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BeginError::Busy => f.write_str("an operation is already in flight"),
            BeginError::Halted(fault) => write!(f, "client halted after fault: {fault}"),
        }
    }
}

impl std::error::Error for BeginError {}

/// The in-flight operation.
#[derive(Debug, Clone)]
struct PendingOp {
    kind: OpKind,
    target: ClientId,
    timestamp: Timestamp,
    /// Value being written (writes only), echoed into the completion.
    value: Option<Value>,
}

/// Result of a completed operation, in the "extended" form of the paper
/// (`writex_i` / `readx_i` return the relevant versions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpCompletion {
    /// Read or write.
    pub kind: OpKind,
    /// The register accessed.
    pub target: ClientId,
    /// The operation's timestamp `t` (monotonically increasing per
    /// client; Definition 5 integrity).
    pub timestamp: Timestamp,
    /// For reads: the value read (`None` = register still `⊥`). `None`
    /// for writes.
    pub read_value: Option<Option<Value>>,
    /// For writes: the value written.
    pub written_value: Option<Value>,
    /// The version `(V_i, M_i)` committed by this operation.
    pub version: Version,
    /// For reads: the writer's version `(V^j, M^j)` from the reply,
    /// with its COMMIT-signature. The FAUST layer stores it in `VER_i[j]`.
    pub writer_version: Option<SignedVersion>,
}

/// When the client transmits the COMMIT of each operation.
///
/// Section 5 of the paper: "Sending a COMMIT message is simply an
/// optimization to expedite garbage collection at S; this message can be
/// eliminated by piggybacking its contents on the SUBMIT message of the
/// next operation."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// Send a separate COMMIT message immediately (Algorithm 1 as
    /// written): 3 messages per operation, prompt garbage collection.
    #[default]
    Immediate,
    /// Piggyback the COMMIT on the next SUBMIT: 2 messages per operation,
    /// at the cost of a longer pending list `L` at the server.
    Piggyback,
}

/// The USTOR client protocol state (Algorithm 1).
///
/// # Example
///
/// ```
/// use faust_crypto::sig::KeySet;
/// use faust_types::{ClientId, Value};
/// use faust_ustor::{Server, UstorClient, UstorServer};
///
/// let keys = KeySet::generate(2, b"doc");
/// let mut server = UstorServer::new(2);
/// let mut alice = UstorClient::new(ClientId::new(0), 2, keys.keypair(0).unwrap().clone(), keys.registry());
///
/// let submit = alice.begin_write(Value::from("v1")).unwrap();
/// let replies = server.on_submit(ClientId::new(0), submit);
/// let (commit, done) = alice.handle_reply(replies.into_iter().next().unwrap().1).unwrap();
/// server.on_commit(ClientId::new(0), commit.expect("immediate commit mode"));
/// assert_eq!(done.timestamp, 1);
/// ```
#[derive(Debug, Clone)]
pub struct UstorClient {
    id: ClientId,
    n: usize,
    keypair: Keypair,
    registry: VerifierRegistry,
    /// `x̄_i`: hash of the most recently written value (`⊥` before the
    /// first write).
    xbar: Option<Digest>,
    /// The client's version `(V_i, M_i)`.
    version: Version,
    pending: Option<PendingOp>,
    halted: Option<Fault>,
    commit_mode: CommitMode,
    /// In piggyback mode: the COMMIT not yet attached to a SUBMIT.
    held_commit: Option<CommitMsg>,
}

impl UstorClient {
    /// Creates the client protocol state for client `id` of `n`.
    ///
    /// # Panics
    ///
    /// Panics if the keypair does not belong to `id` or `id ≥ n`.
    pub fn new(id: ClientId, n: usize, keypair: Keypair, registry: VerifierRegistry) -> Self {
        assert_eq!(keypair.signer_index(), id.as_u32(), "keypair must match id");
        assert!(id.index() < n, "client id out of range");
        UstorClient {
            id,
            n,
            keypair,
            registry,
            xbar: None,
            version: Version::initial(n),
            pending: None,
            halted: None,
            commit_mode: CommitMode::Immediate,
            held_commit: None,
        }
    }

    /// Switches the commit transmission strategy (see [`CommitMode`]).
    /// Call before the first operation.
    pub fn set_commit_mode(&mut self, mode: CommitMode) {
        self.commit_mode = mode;
    }

    /// The current commit transmission strategy.
    pub fn commit_mode(&self) -> CommitMode {
        self.commit_mode
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of clients `n`.
    pub fn num_clients(&self) -> usize {
        self.n
    }

    /// The current version `(V_i, M_i)` (last committed).
    pub fn version(&self) -> &Version {
        &self.version
    }

    /// The fault that halted this client, if any.
    pub fn fault(&self) -> Option<&Fault> {
        self.halted.as_ref()
    }

    /// The verifier registry this client trusts (shared at setup).
    pub fn registry(&self) -> &VerifierRegistry {
        &self.registry
    }

    /// Whether an operation is in flight.
    pub fn is_busy(&self) -> bool {
        self.pending.is_some()
    }

    /// Starts `write_i(x)`: returns the SUBMIT message for the server.
    ///
    /// # Errors
    ///
    /// [`BeginError::Busy`] if an operation is in flight,
    /// [`BeginError::Halted`] if a fault was detected earlier.
    pub fn begin_write(&mut self, value: Value) -> Result<SubmitMsg, BeginError> {
        self.begin(OpKind::Write, self.id, Some(value))
    }

    /// Starts `read_i(j)`: returns the SUBMIT message for the server.
    ///
    /// # Errors
    ///
    /// [`BeginError::Busy`] if an operation is in flight,
    /// [`BeginError::Halted`] if a fault was detected earlier.
    pub fn begin_read(&mut self, register: ClientId) -> Result<SubmitMsg, BeginError> {
        self.begin(OpKind::Read, register, None)
    }

    fn begin(
        &mut self,
        kind: OpKind,
        target: ClientId,
        value: Option<Value>,
    ) -> Result<SubmitMsg, BeginError> {
        if let Some(fault) = &self.halted {
            return Err(BeginError::Halted(fault.clone()));
        }
        if self.pending.is_some() {
            return Err(BeginError::Busy);
        }
        // Line 12/25: t ← V_i[i] + 1.
        let t = self.version.v().get(self.id) + 1;
        // Line 13: a write updates x̄_i before signing.
        if let Some(v) = &value {
            self.xbar = Some(sha256(v.as_bytes()));
        }
        // Lines 14/26: SUBMIT- and DATA-signatures.
        let submit_sig = self
            .keypair
            .sign(SigContext::Submit, &submit_signing_bytes(kind, target, t));
        let data_sig = self
            .keypair
            .sign(SigContext::Data, &data_signing_bytes(t, self.xbar));
        self.pending = Some(PendingOp {
            kind,
            target,
            timestamp: t,
            value: value.clone(),
        });
        Ok(SubmitMsg {
            timestamp: t,
            tuple: InvocationTuple {
                client: self.id,
                kind,
                register: target,
                sig: submit_sig,
            },
            value,
            data_sig,
            // In piggyback mode, the previous operation's COMMIT rides
            // along; the server applies it before this submit.
            piggyback: self.held_commit.take(),
        })
    }

    /// Processes the server's REPLY for the in-flight operation: performs
    /// all checks of Algorithm 1 and, on success, returns the COMMIT
    /// message to send — `None` in [`CommitMode::Piggyback`], where the
    /// commit is attached to the next SUBMIT instead — plus the
    /// operation's completion.
    ///
    /// # Errors
    ///
    /// Returns the detected [`Fault`] if any check fails; the client halts
    /// permanently (the paper's `output fail_i; halt`).
    pub fn handle_reply(
        &mut self,
        reply: ReplyMsg,
    ) -> Result<(Option<CommitMsg>, OpCompletion), Fault> {
        match self.try_handle_reply(reply) {
            Ok(out) => Ok(out),
            Err(fault) => {
                self.halted = Some(fault.clone());
                self.pending = None;
                Err(fault)
            }
        }
    }

    fn try_handle_reply(
        &mut self,
        reply: ReplyMsg,
    ) -> Result<(Option<CommitMsg>, OpCompletion), Fault> {
        if let Some(fault) = &self.halted {
            return Err(fault.clone());
        }
        let op = self.pending.clone().ok_or(Fault::UnsolicitedReply)?;
        self.validate_shape(&reply, &op)?;
        self.update_version(&reply)?;
        let read_value = if op.kind == OpKind::Read {
            Some(self.check_data(&reply, op.target)?)
        } else {
            None
        };
        self.pending = None;

        // Lines 18/31: COMMIT- and PROOF-signatures on the new version.
        let commit_sig = self
            .keypair
            .sign(SigContext::Commit, &self.version.signing_bytes());
        let proof_sig = self.keypair.sign(
            SigContext::Proof,
            &proof_signing_bytes(self.version.m().get(self.id)),
        );
        let commit = CommitMsg {
            version: self.version.clone(),
            commit_sig,
            proof_sig,
        };
        let commit = match self.commit_mode {
            CommitMode::Immediate => Some(commit),
            CommitMode::Piggyback => {
                self.held_commit = Some(commit);
                None
            }
        };
        let completion = OpCompletion {
            kind: op.kind,
            target: op.target,
            timestamp: op.timestamp,
            read_value,
            written_value: op.value,
            version: self.version.clone(),
            writer_version: reply.read.map(|r| r.writer_version),
        };
        Ok((commit, completion))
    }

    /// Structural validation: vector arities and index ranges. A correct
    /// server never fails these; they keep a Byzantine server from causing
    /// panics instead of clean detection.
    fn validate_shape(&self, reply: &ReplyMsg, op: &PendingOp) -> Result<(), Fault> {
        if reply.last_committer.index() >= self.n {
            return Err(Fault::MalformedReply("last committer out of range"));
        }
        if reply.commit_version.version.num_clients() != self.n {
            return Err(Fault::MalformedReply("commit version arity"));
        }
        if reply.proofs.len() != self.n {
            return Err(Fault::MalformedReply("proof vector arity"));
        }
        for tuple in &reply.pending {
            if tuple.client.index() >= self.n || tuple.register.index() >= self.n {
                return Err(Fault::MalformedReply("pending tuple index out of range"));
            }
        }
        match (&reply.read, op.kind) {
            (None, OpKind::Read) => Err(Fault::MalformedReply("missing read part")),
            (Some(r), OpKind::Read) if r.writer_version.version.num_clients() != self.n => {
                Err(Fault::MalformedReply("writer version arity"))
            }
            _ => Ok(()),
        }
    }

    /// Algorithm 1, `updateVersion` (lines 34–47).
    fn update_version(&mut self, reply: &ReplyMsg) -> Result<(), Fault> {
        let c = reply.last_committer;
        let signed = &reply.commit_version;

        // Line 35: the version is the initial one or carries a valid
        // COMMIT-signature by C_c.
        if !signed.version.is_initial() {
            let valid = signed.sig.as_ref().is_some_and(|sig| {
                self.registry.verify(
                    c.as_u32(),
                    SigContext::Commit,
                    &signed.version.signing_bytes(),
                    sig,
                )
            });
            if !valid {
                return Err(Fault::BadCommitVersionSignature);
            }
        }

        // Line 36: monotonicity and agreement on our own entry.
        if !self.version.le(&signed.version) {
            return Err(Fault::VersionRegression);
        }
        if signed.version.v().get(self.id) != self.version.v().get(self.id) {
            return Err(Fault::OwnTimestampMismatch);
        }

        // Line 37: adopt (V^c, M^c).
        self.version = signed.version.clone();
        // Line 38: d ← M^c[c].
        let mut d = self.version.m().get(c);

        // Lines 39–45: fold in the pending (concurrent) operations.
        for tuple in &reply.pending {
            let k = tuple.client;
            // Line 41: C_k's previous operation must have committed the
            // digest we hold for it, vouched by its PROOF-signature.
            if let Some(expected) = self.version.m().get(k) {
                let proof = reply.proofs[k.index()]
                    .as_ref()
                    .ok_or(Fault::MissingProofSignature)?;
                let ok = self.registry.verify(
                    k.as_u32(),
                    SigContext::Proof,
                    &proof_signing_bytes(Some(expected)),
                    proof,
                );
                if !ok {
                    return Err(Fault::BadProofSignature);
                }
            }
            // Line 42: account for the pending operation.
            let expected_t = self.version.v_mut().increment(k);
            // Line 43: we never appear in our own pending list, and the
            // SUBMIT-signature must match the expected timestamp.
            if k == self.id {
                return Err(Fault::OwnOperationPending);
            }
            let ok = self.registry.verify(
                k.as_u32(),
                SigContext::Submit,
                &submit_signing_bytes(tuple.kind, tuple.register, expected_t),
                &tuple.sig,
            );
            if !ok {
                return Err(Fault::BadSubmitSignature);
            }
            // Lines 44–45: extend the digest chain.
            d = Some(chain_extend(d, k.as_u32()));
            self.version.m_mut().set(k, d.expect("just set"));
        }

        // Lines 46–47: append our own operation.
        self.version.v_mut().increment(self.id);
        self.version
            .m_mut()
            .set(self.id, chain_extend(d, self.id.as_u32()));
        Ok(())
    }

    /// Algorithm 1, `checkData` (lines 48–52). Returns the read value.
    fn check_data(&self, reply: &ReplyMsg, j: ClientId) -> Result<Option<Value>, Fault> {
        let read = reply.read.as_ref().expect("validated in validate_shape");
        let writer = &read.writer_version;
        let tj = read.mem_timestamp;

        // Line 49: writer's version is initial or properly signed by C_j.
        if !writer.version.is_initial() {
            let valid = writer.sig.as_ref().is_some_and(|sig| {
                self.registry.verify(
                    j.as_u32(),
                    SigContext::Commit,
                    &writer.version.signing_bytes(),
                    sig,
                )
            });
            if !valid {
                return Err(Fault::BadWriterCommitSignature);
            }
        }

        // t_j = 0 means C_j has never submitted an operation; the register
        // is necessarily `⊥`, and a correct server sends exactly
        // `(0, ⊥, ⊥)`. Enforcing that here closes the gap where a faulty
        // server returns a fabricated value with t_j = 0 to skip the
        // DATA-signature check.
        if tj == 0 && (read.mem_value.is_some() || read.mem_data_sig.is_some()) {
            return Err(Fault::MalformedReply("nonempty initial register"));
        }

        // Line 50: the value is fresh-signed by C_j under timestamp t_j.
        if tj != 0 {
            let value_hash = read.mem_value.as_ref().map(|v| sha256(v.as_bytes()));
            let valid = read.mem_data_sig.as_ref().is_some_and(|sig| {
                self.registry.verify(
                    j.as_u32(),
                    SigContext::Data,
                    &data_signing_bytes(tj, value_hash),
                    sig,
                )
            });
            if !valid {
                return Err(Fault::BadDataSignature);
            }
        }

        // Line 51: the writer's version is within the presented history,
        // and t_j is exactly the last operation of C_j we account for.
        if !writer.version.le(&reply.commit_version.version) {
            return Err(Fault::WriterVersionAhead);
        }
        if tj != self.version.v().get(j) {
            return Err(Fault::DataTimestampMismatch);
        }

        // Line 52: the writer's own entry matches t_j, give or take the
        // not-yet-received COMMIT.
        let vjj = writer.version.v().get(j);
        if !(vjj == tj || (tj > 0 && vjj == tj - 1)) {
            return Err(Fault::WriterSelfEntryMismatch);
        }

        Ok(read.mem_value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::sig::KeySet;

    fn client(n: usize) -> UstorClient {
        let keys = KeySet::generate(n, b"client-tests");
        UstorClient::new(
            ClientId::new(0),
            n,
            keys.keypair(0).unwrap().clone(),
            keys.registry(),
        )
    }

    #[test]
    fn begin_assigns_increasing_timestamps() {
        let mut c = client(2);
        let m1 = c.begin_write(Value::from("a")).unwrap();
        assert_eq!(m1.timestamp, 1);
        // Second begin while busy fails.
        assert_eq!(
            c.begin_read(ClientId::new(1)).unwrap_err(),
            BeginError::Busy
        );
    }

    #[test]
    fn write_submit_carries_value_read_does_not() {
        let mut c = client(2);
        let w = c.begin_write(Value::from("a")).unwrap();
        assert_eq!(w.value, Some(Value::from("a")));
        assert_eq!(w.tuple.kind, OpKind::Write);
        assert_eq!(w.tuple.register, ClientId::new(0));

        let mut c2 = client(2);
        let r = c2.begin_read(ClientId::new(1)).unwrap();
        assert_eq!(r.value, None);
        assert_eq!(r.tuple.kind, OpKind::Read);
        assert_eq!(r.tuple.register, ClientId::new(1));
    }

    #[test]
    fn unsolicited_reply_is_a_fault() {
        let mut c = client(2);
        let reply = ReplyMsg {
            last_committer: ClientId::new(1),
            commit_version: SignedVersion::initial(2),
            read: None,
            pending: vec![],
            proofs: vec![None, None],
        };
        assert_eq!(c.handle_reply(reply), Err(Fault::UnsolicitedReply));
    }

    #[test]
    fn halted_client_refuses_operations() {
        let mut c = client(2);
        let reply = ReplyMsg {
            last_committer: ClientId::new(1),
            commit_version: SignedVersion::initial(2),
            read: None,
            pending: vec![],
            proofs: vec![None, None],
        };
        let _ = c.handle_reply(reply); // unsolicited → halt
        assert!(matches!(
            c.begin_write(Value::from("x")),
            Err(BeginError::Halted(_))
        ));
    }

    #[test]
    fn malformed_arity_is_detected_not_panicking() {
        let mut c = client(3);
        c.begin_write(Value::from("a")).unwrap();
        let reply = ReplyMsg {
            last_committer: ClientId::new(0),
            commit_version: SignedVersion::initial(2), // wrong arity: 2 ≠ 3
            read: None,
            pending: vec![],
            proofs: vec![None, None, None],
        };
        assert_eq!(
            c.handle_reply(reply),
            Err(Fault::MalformedReply("commit version arity"))
        );
    }
}
