//! Byzantine server implementations.
//!
//! Each adversary realizes a misbehaviour the paper's client checks (or
//! the FAUST layer) must catch — or, for the schedule-level attacks, a
//! misbehaviour that is *undetectable* in a single execution and shows why
//! forking semantics are the best achievable:
//!
//! * [`SplitBrainServer`] — maintains one world per client group after a
//!   trigger point; clients in different groups never see each other's
//!   subsequent operations. Undetectable by USTOR alone (this is exactly a
//!   forking attack); detected by FAUST's offline version exchange.
//! * [`Fig3Server`] — the stale-read attack of Figure 3: hides a completed
//!   write from the reader's first read, then reveals it. Produces a weak
//!   fork-linearizable (but not fork-linearizable) history.
//! * [`TamperServer`] — mutates a single reply in a configurable way; each
//!   [`Tamper`] variant trips a specific Algorithm 1 check.
//! * [`CrashServer`] — goes silent after a configurable number of
//!   messages; violates liveness only, so USTOR never flags it (FAUST's
//!   probing handles it).

use crate::server::{Server, UstorServer};
use faust_crypto::sig::Signature;
use faust_types::{ClientId, CommitMsg, OpKind, ReplyMsg, SignedVersion, SubmitMsg, Value};

/// A split-brain (forking) server.
///
/// Processes the first `fork_after` submits in one shared world, then
/// clones the world once per client group and routes every client to its
/// group's world. From that point on, the groups evolve independently:
/// their members never see each other's new operations — the views have
/// forked.
#[derive(Debug, Clone)]
pub struct SplitBrainServer {
    groups: Vec<Vec<ClientId>>,
    fork_after: usize,
    submits_seen: usize,
    shared: Option<UstorServer>,
    worlds: Vec<UstorServer>,
}

impl SplitBrainServer {
    /// Creates a forking server for `n` clients that splits into `groups`
    /// after `fork_after` submits have been processed.
    ///
    /// # Panics
    ///
    /// Panics if the groups do not partition `0..n`.
    pub fn new(n: usize, groups: Vec<Vec<ClientId>>, fork_after: usize) -> Self {
        let mut members: Vec<usize> = groups.iter().flatten().map(|c| c.index()).collect();
        members.sort_unstable();
        assert_eq!(
            members,
            (0..n).collect::<Vec<_>>(),
            "groups must partition the clients"
        );
        SplitBrainServer {
            groups,
            fork_after,
            submits_seen: 0,
            shared: Some(UstorServer::new(n)),
            worlds: Vec::new(),
        }
    }

    fn world_of(&mut self, client: ClientId) -> &mut UstorServer {
        if self.shared.is_some() {
            if self.submits_seen <= self.fork_after {
                return self.shared.as_mut().expect("checked above");
            }
            // Fork point reached: clone the shared world per group.
            let template = self.shared.take().expect("checked above");
            self.worlds = self.groups.iter().map(|_| template.clone()).collect();
        }
        let g = self
            .groups
            .iter()
            .position(|g| g.contains(&client))
            .expect("client belongs to a group");
        &mut self.worlds[g]
    }
}

impl Server for SplitBrainServer {
    fn on_submit(&mut self, client: ClientId, msg: SubmitMsg) -> Vec<(ClientId, ReplyMsg)> {
        self.submits_seen += 1;
        self.world_of(client).on_submit(client, msg)
    }

    fn on_commit(&mut self, client: ClientId, msg: CommitMsg) -> Vec<(ClientId, ReplyMsg)> {
        self.world_of(client).on_commit(client, msg)
    }
}

/// The stale-read attack of Figure 3.
///
/// Client `writer` completes a write; when `reader` then reads the
/// writer's register for the first time, the server *pretends the write
/// never happened* (serving a pristine world), and only reveals the write
/// on the reader's subsequent read — as a pending, never-committed
/// operation. Both clients pass all USTOR checks; the resulting history
/// is weakly fork-linearizable but not fork-linearizable, because the
/// reader's first read violates the real-time order with the completed
/// write.
#[derive(Debug, Clone)]
pub struct Fig3Server {
    /// The writer's world: sees everything.
    writer_world: UstorServer,
    /// The reader's world: starts pristine; the writer's submits are
    /// replayed into it lazily, and the writer's commits never reach it.
    reader_world: UstorServer,
    writer: ClientId,
    reader: ClientId,
    /// Writer submits not yet replayed into the reader's world.
    unreplayed: Vec<SubmitMsg>,
    /// How many reads the reader has performed.
    reader_reads: usize,
}

impl Fig3Server {
    /// Creates the attack server for `n` clients with the given writer and
    /// reader roles.
    pub fn new(n: usize, writer: ClientId, reader: ClientId) -> Self {
        assert_ne!(writer, reader, "attack needs two distinct clients");
        Fig3Server {
            writer_world: UstorServer::new(n),
            reader_world: UstorServer::new(n),
            writer,
            reader,
            unreplayed: Vec::new(),
            reader_reads: 0,
        }
    }
}

impl Server for Fig3Server {
    fn on_submit(&mut self, client: ClientId, msg: SubmitMsg) -> Vec<(ClientId, ReplyMsg)> {
        if client == self.writer {
            // The writer is served honestly from its own world, but the
            // reader's world does not learn of the submit yet.
            self.unreplayed.push(msg.clone());
            self.writer_world.on_submit(client, msg)
        } else if client == self.reader {
            if msg.tuple.kind == OpKind::Read {
                self.reader_reads += 1;
                if self.reader_reads > 1 {
                    // Reveal the writer's operations as pending-but-
                    // uncommitted: replay their submits (discarding the
                    // replies), never their commits.
                    for held in self.unreplayed.drain(..) {
                        let _ = self.reader_world.on_submit(self.writer, held);
                    }
                }
            }
            self.reader_world.on_submit(client, msg)
        } else {
            // Bystanders live in the writer's world.
            self.writer_world.on_submit(client, msg)
        }
    }

    fn on_commit(&mut self, client: ClientId, msg: CommitMsg) -> Vec<(ClientId, ReplyMsg)> {
        if client == self.reader {
            self.reader_world.on_commit(client, msg)
        } else {
            self.writer_world.on_commit(client, msg)
        }
    }
}

/// Which single mutation a [`TamperServer`] applies.
///
/// Each variant names the Algorithm 1 check it trips (see
/// [`crate::fault::Fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tamper {
    /// Replace the COMMIT-signature on the main version → line 35.
    CorruptCommitSig,
    /// Serve the initial version after history has advanced → line 36
    /// (version regression).
    RegressToInitialVersion,
    /// Replace a pending tuple's SUBMIT-signature → line 43.
    CorruptPendingSig,
    /// Echo the victim's own submit back in the pending list → line 43.
    EchoOwnTuple,
    /// Drop the PROOF-signature of a pending operation's client → line 41.
    OmitProof,
    /// Replace that PROOF-signature with garbage → line 41.
    CorruptProof,
    /// Flip the returned read value → line 50.
    CorruptReadValue,
    /// Serve a stale `MEM[j]` (old value and timestamp) while presenting
    /// the current version → line 51 (timestamp mismatch).
    StaleReadValue,
    /// Replace the writer-version signature on a read → line 49.
    CorruptWriterSig,
    /// Serve an outdated writer version (two or more commits behind) with
    /// current data → line 52.
    AncientWriterVersion,
}

/// Wraps the correct server and mutates the first reply sent to `victim`
/// once `after_submits` total submits have been processed.
#[derive(Debug)]
pub struct TamperServer {
    inner: UstorServer,
    victim: ClientId,
    after_submits: usize,
    kind: Tamper,
    submits_seen: usize,
    fired: bool,
    /// Per-client history of committed signed versions (for stale/ancient
    /// tampering), oldest first.
    version_history: Vec<Vec<SignedVersion>>,
    /// Per-client history of `MEM` entries captured at submit time:
    /// `(timestamp, value, data_sig)`.
    mem_history: Vec<Vec<(u64, Option<Value>, Signature)>>,
}

impl TamperServer {
    /// Creates a tampering server for `n` clients.
    pub fn new(n: usize, victim: ClientId, after_submits: usize, kind: Tamper) -> Self {
        TamperServer {
            inner: UstorServer::new(n),
            victim,
            after_submits,
            kind,
            submits_seen: 0,
            fired: false,
            version_history: vec![Vec::new(); n],
            mem_history: vec![Vec::new(); n],
        }
    }

    /// Whether the mutation has been applied yet.
    pub fn has_fired(&self) -> bool {
        self.fired
    }

    fn tamper(&mut self, submit: &SubmitMsg, reply: &mut ReplyMsg) {
        match self.kind {
            Tamper::CorruptCommitSig => {
                if reply.commit_version.version.is_initial() {
                    return; // nothing to corrupt yet; wait for a later reply
                }
                reply.commit_version.sig = Some(Signature::garbage());
            }
            Tamper::RegressToInitialVersion => {
                let n = reply.commit_version.version.num_clients();
                if reply.commit_version.version.is_initial() {
                    return;
                }
                reply.commit_version = SignedVersion::initial(n);
                reply.pending.clear();
            }
            Tamper::CorruptPendingSig => match reply.pending.first_mut() {
                Some(t) => t.sig = Signature::garbage(),
                None => return,
            },
            Tamper::EchoOwnTuple => {
                reply.pending.push(submit.tuple.clone());
            }
            Tamper::OmitProof => {
                let Some(k) = reply.pending.first().map(|t| t.client) else {
                    return;
                };
                reply.proofs[k.index()] = None;
            }
            Tamper::CorruptProof => {
                let Some(k) = reply.pending.first().map(|t| t.client) else {
                    return;
                };
                reply.proofs[k.index()] = Some(Signature::garbage());
            }
            Tamper::CorruptReadValue => {
                let Some(read) = reply.read.as_mut() else {
                    return;
                };
                read.mem_value = Some(Value::from("corrupted by server"));
            }
            Tamper::StaleReadValue => {
                let Some(read) = reply.read.as_mut() else {
                    return;
                };
                let j = submit.tuple.register;
                // Serve the oldest recorded MEM entry; stale iff history
                // has advanced since.
                let Some((t, v, sig)) = self.mem_history[j.index()].first() else {
                    return;
                };
                read.mem_timestamp = *t;
                read.mem_value = v.clone();
                read.mem_data_sig = Some(*sig);
            }
            Tamper::CorruptWriterSig => {
                let Some(read) = reply.read.as_mut() else {
                    return;
                };
                if read.writer_version.version.is_initial() {
                    return;
                }
                read.writer_version.sig = Some(Signature::garbage());
            }
            Tamper::AncientWriterVersion => {
                let Some(read) = reply.read.as_mut() else {
                    return;
                };
                let j = submit.tuple.register;
                // Serve the writer's *first* committed version; line 52
                // trips iff the writer has committed ≥ 2 further ops.
                let Some(old) = self.version_history[j.index()].first() else {
                    return;
                };
                read.writer_version = old.clone();
            }
        }
        self.fired = true;
    }
}

impl Server for TamperServer {
    fn on_submit(&mut self, client: ClientId, msg: SubmitMsg) -> Vec<(ClientId, ReplyMsg)> {
        self.submits_seen += 1;
        self.mem_history[client.index()].push((msg.timestamp, msg.value.clone(), msg.data_sig));
        let mut replies = self.inner.on_submit(client, msg.clone());
        if !self.fired && self.submits_seen > self.after_submits {
            for (to, reply) in replies.iter_mut() {
                if *to == self.victim {
                    self.tamper(&msg, reply);
                }
            }
        }
        replies
    }

    fn on_commit(&mut self, client: ClientId, msg: CommitMsg) -> Vec<(ClientId, ReplyMsg)> {
        self.version_history[client.index()].push(SignedVersion {
            version: msg.version.clone(),
            sig: Some(msg.commit_sig),
        });
        self.inner.on_commit(client, msg)
    }
}

/// A server that simply stops responding after `mute_after` submits.
///
/// This violates only liveness: no USTOR check ever fires, which is why
/// the paper's FAUST layer adds offline probing — detection completeness
/// (Definition 5 property 7) must hold even against a silent server.
#[derive(Debug, Clone)]
pub struct CrashServer {
    inner: UstorServer,
    mute_after: usize,
    submits_seen: usize,
}

impl CrashServer {
    /// Creates a server that answers the first `mute_after` submits and
    /// then goes silent forever.
    pub fn new(n: usize, mute_after: usize) -> Self {
        CrashServer {
            inner: UstorServer::new(n),
            mute_after,
            submits_seen: 0,
        }
    }

    /// Whether the server has gone silent.
    pub fn is_mute(&self) -> bool {
        self.submits_seen >= self.mute_after
    }
}

impl Server for CrashServer {
    fn on_submit(&mut self, client: ClientId, msg: SubmitMsg) -> Vec<(ClientId, ReplyMsg)> {
        if self.submits_seen >= self.mute_after {
            return Vec::new();
        }
        self.submits_seen += 1;
        self.inner.on_submit(client, msg)
    }

    fn on_commit(&mut self, client: ClientId, msg: CommitMsg) -> Vec<(ClientId, ReplyMsg)> {
        if self.submits_seen >= self.mute_after {
            return Vec::new();
        }
        self.inner.on_commit(client, msg)
    }
}
