//! The deterministic whole-system fault-simulation suite.
//!
//! Every test here drives the virtual-time simulator
//! (`faust::core::sim`): many `SessionCore` clients and one
//! `ServerEngine` scheduled by a discrete-event loop, no threads, no
//! sockets, no wall clock. A run is a pure function of its
//! [`SimScenario`], so
//!
//! * failures reproduce **bit-identically** from the seed,
//! * a failing fault plan is **shrunk** to a 1-minimal set of clauses,
//! * and the printed report is a ready-to-run reproduction recipe.
//!
//! Seeds: `FAUST_SIM_SEED_BASE` picks the first seed (default 42 — the
//! pinned default, so ordinary `cargo test` runs are reproducible);
//! `FAUST_SIM_RUNS` the number of consecutive seeds (default 1000). CI
//! runs one job with the pinned base and one with a rotating base
//! derived from the run number, so coverage grows forever while every
//! red run stays replayable. `FAUST_SIM_SEED=<n> cargo test --release
//! --test sim_faults reproduce_seed -- --nocapture` replays one seed.
//!
//! See `docs/simulation.md` for the architecture and the oracle
//! definitions.

use faust::audit::{audit, AuditVerdict, SessionHistory};
use faust::core::runtime::spawn_engine;
use faust::core::threaded_faust::{run_faust_session, FaustSession, ThreadedFaustConfig};
use faust::core::{
    check_determinism, gen_scenario, investigate, run_and_check, run_sim, CrashSpec, FaultClause,
    FaultPlan, FaustConfig, FaustWorkloadOp, Notification, ServerSpec, SimDurability, SimScenario,
    UserOp, WalTamper,
};
use faust::crypto::sig::KeySet;
use faust::crypto::SigScheme;
use faust::net::{tcp, ClientConn, TcpServerTransport};
use faust::sim::DelayModel;
use faust::store::{testutil, Durability, PersistentBackend, StoreConfig};
use faust::types::{ClientId, Value};
use faust::ustor::ServerBackend;
use std::time::{Duration, Instant};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Where a failing run's reproduction recipe is written, so CI can
/// upload it as an artifact next to the red job.
const REPRO_PATH: &str = "target/sim-failure-repro.txt";

/// The flagship fuzz loop: `FAUST_SIM_RUNS` generated scenarios
/// (honest, crashing, rolling back, Byzantine networks), each checked
/// against the full oracle set — no false positives, no missed
/// guaranteed-observable forks, consistency-checker verdicts over the
/// recorded history — with a determinism double-run sprinkled in. On
/// the first violation the fault plan is delta-debugged down to a
/// 1-minimal reproduction and the test panics with the recipe.
#[test]
fn seeded_runs_pass_all_oracles() {
    let base = env_u64("FAUST_SIM_SEED_BASE", 42);
    let runs = env_u64("FAUST_SIM_RUNS", 1000);
    eprintln!(
        "sim_faults: seeds {base}..{} (base {base}, {runs} runs)",
        base + runs
    );
    for seed in base..base + runs {
        let scenario = gen_scenario(seed);
        let verdict = run_and_check(&scenario).map(|_| ());
        let verdict = verdict.and_then(|()| {
            if (seed - base).is_multiple_of(64) {
                // Reproducibility oracle: the same scenario twice must
                // yield bit-identical histories, notifications, and
                // traffic metrics.
                check_determinism(&scenario)
            } else {
                Ok(())
            }
        });
        if let Err(error) = verdict {
            let failure = investigate(&scenario, error);
            let report = failure.render();
            std::fs::write(REPRO_PATH, &report).ok();
            panic!("\n{report}\n(also written to {REPRO_PATH})");
        }
    }
}

/// Replays one seed end to end with full output — the command the
/// failure report prints. A no-op unless `FAUST_SIM_SEED` is set.
#[test]
fn reproduce_seed() {
    let Ok(seed) = std::env::var("FAUST_SIM_SEED") else {
        return;
    };
    let seed: u64 = seed.parse().expect("FAUST_SIM_SEED must be an integer");
    let scenario = gen_scenario(seed);
    eprintln!("replaying seed {seed}: {scenario:#?}");
    match run_and_check(&scenario) {
        Ok(report) => {
            eprintln!(
                "seed {seed} passes: {} completed ops, {} failures, final t={}",
                report.completed_ops(),
                report.failures.len(),
                report.final_time
            );
        }
        Err(error) => {
            let failure = investigate(&scenario, error);
            panic!("\n{}", failure.render());
        }
    }
}

/// The acceptance property in isolation: a handful of pinned seeds
/// rerun bit-identically, including ones whose plans crash and fork
/// the server.
#[test]
fn pinned_seeds_rerun_bit_identically() {
    for seed in [0, 7, 42, 88, 286, 1337] {
        check_determinism(&gen_scenario(seed)).expect("bit-identical rerun");
    }
}

// ---------------------------------------------------------------------------
// The threaded kill+restart e2e, ported into virtual time (satellite of
// the simulator: same scenario, same assertions, a fraction of the
// wall clock).
// ---------------------------------------------------------------------------

/// The virtual-time port of
/// `crash_recovery::group_commit_server_killed_and_recovered_mid_run_is_invisible_to_clients`:
/// three clients run a two-phase workload against a group-commit
/// persistent server; at the quiescent phase boundary (message 8 — all
/// four phase-1 operations submitted *and* committed, so no reply is
/// held back by the durability batch) the server is killed and
/// recovered from its log. Honest recovery must be invisible: no
/// failure notifications, every op completes, and the read crossing
/// the restart sees the last pre-crash value.
fn kill_restart_scenario() -> SimScenario {
    SimScenario {
        seed: 4242,
        workloads: vec![
            vec![
                FaustWorkloadOp::Write(Value::from("a1")),
                FaustWorkloadOp::Write(Value::from("a2")),
                // Staggered pauses: C1 resumes first, so its cross-read
                // lands before C0's phase-2 write — the same op order
                // the threaded twin asserts.
                FaustWorkloadOp::Pause(500),
                FaustWorkloadOp::Read(c(1)),
                FaustWorkloadOp::Write(Value::from("a3")),
            ],
            vec![
                FaustWorkloadOp::Write(Value::from("b1")),
                FaustWorkloadOp::Pause(300),
                FaustWorkloadOp::Read(c(0)),
            ],
            vec![
                FaustWorkloadOp::Read(c(0)),
                FaustWorkloadOp::Pause(400),
                FaustWorkloadOp::Write(Value::from("c1")),
            ],
        ],
        server: ServerSpec::Persistent {
            durability: SimDurability::Group {
                max_records: 8,
                max_wait_ticks: 20,
            },
            snapshot_every: 0,
        },
        plan: FaultPlan {
            clauses: vec![FaultClause::CrashRestart(CrashSpec {
                // 4 phase-1 ops × (SUBMIT + COMMIT) — the crash lands
                // exactly on the phase boundary.
                after_messages: 8,
                tamper: WalTamper::None,
            })],
        },
        deadline: 4_000,
        tick_period: 25,
        // Like the threaded twin: no dummy reads, so phases are exactly
        // the scripted messages and the kill point is quiescent.
        dummy_reads: false,
        link_delay: DelayModel::Uniform(1, 6),
        offline_delay: DelayModel::Uniform(20, 80),
    }
}

/// Runs the threaded twin once (both phases, real sockets, real group
/// fsync batches) and returns its wall-clock time.
fn threaded_twin_elapsed() -> Duration {
    let n = 3;
    let dir = testutil::scratch_dir("sim-vs-threads");
    let backend = PersistentBackend::new(
        &dir,
        StoreConfig {
            durability: Durability::Group {
                max_records: 8,
                max_wait: Duration::from_millis(2),
            },
            snapshot_every: 0,
        },
    );
    let config = ThreadedFaustConfig {
        faust: FaustConfig {
            dummy_reads: false,
            ..FaustConfig::default()
        },
        run_for: Duration::from_millis(1200),
        ..ThreadedFaustConfig::default()
    };
    let run_phase = |session: FaustSession, workloads: Vec<Vec<UserOp>>| {
        let transport = TcpServerTransport::bind("127.0.0.1:0", n).expect("bind loopback");
        let addr = transport.local_addr();
        let server = backend.build(n).expect("backend builds/recovers");
        let engine_thread = spawn_engine(n, server, transport);
        let conns: Vec<ClientConn> = (0..n)
            .map(|i| tcp::connect(addr, c(i as u32)).expect("connect"))
            .collect();
        run_faust_session(session, workloads, conns, config, engine_thread)
    };

    let started = Instant::now();
    let session = FaustSession::new(n, &config, b"sim-vs-threads");
    let (report1, session) = run_phase(
        session,
        vec![
            vec![
                UserOp::Write(Value::from("a1")),
                UserOp::Write(Value::from("a2")),
            ],
            vec![UserOp::Write(Value::from("b1"))],
            vec![UserOp::Read(c(0))],
        ],
    );
    assert!(report1.failures.is_empty(), "{:?}", report1.failures);
    // <- the first incarnation is dead here; only the log survives.
    let (report2, _session) = run_phase(
        session,
        vec![
            vec![UserOp::Read(c(1)), UserOp::Write(Value::from("a3"))],
            vec![UserOp::Read(c(0))],
            vec![UserOp::Write(Value::from("c1"))],
        ],
    );
    let elapsed = started.elapsed();
    assert!(
        report2.failures.is_empty(),
        "threaded honest recovery must be invisible: {:?}",
        report2.failures
    );
    std::fs::remove_dir_all(&dir).ok();
    elapsed
}

#[test]
fn group_commit_kill_restart_in_virtual_time_matches_threaded_run_10x_faster() {
    let scenario = kill_restart_scenario();

    let started = Instant::now();
    let report = run_sim(&scenario);
    let sim_elapsed = started.elapsed();

    // Same assertions as the threaded e2e.
    assert!(
        report.failures.is_empty(),
        "honest group-commit recovery must be invisible: {:?}",
        report.failures
    );
    let crash_at = report.crash_time.expect("the kill must actually fire");
    assert!(
        crash_at < 300,
        "the kill belongs to the phase boundary, fired at t={crash_at}"
    );
    assert_eq!(
        report.completed_ops(),
        scenario.user_ops(),
        "every op on both sides of the restart completes"
    );
    let cross_read = report.notifications[1]
        .iter()
        .filter_map(|(_, note)| match note {
            Notification::Completed(done) if done.kind == faust::types::OpKind::Read => {
                done.read_value.clone()
            }
            _ => None,
        })
        .next_back()
        .flatten()
        .expect("C1's cross-restart read completed");
    assert_eq!(
        cross_read,
        Value::from("a2"),
        "read after restart must see the last pre-crash value"
    );

    // And it reruns bit-identically, crash included.
    check_determinism(&scenario).expect("kill+restart reruns bit-identically");

    // The point of the simulator: the same system behaviour, two orders
    // of magnitude below the threaded run's wall clock (which sleeps
    // through two real 1.2 s phases).
    let threaded_elapsed = threaded_twin_elapsed();
    assert!(
        sim_elapsed * 10 <= threaded_elapsed,
        "virtual time must be ≥10× faster: sim {sim_elapsed:?} vs threads {threaded_elapsed:?}"
    );
}

// ---------------------------------------------------------------------------
// Offline-auditor agreement: every simulated run exports a FAUSTHIS
// session history, and `faust-audit` — a second oracle sharing no code
// with the online fail-aware machinery — must agree with what actually
// happened. The seeded fuzz loop above already audits every generated
// scenario inside `check_oracles`; these tests pin the two verdict
// directions explicitly.
// ---------------------------------------------------------------------------

/// Replays a run's exported history through the offline auditor.
fn offline_verdict(scenario: &SimScenario, report: &faust::core::SimRunReport) -> AuditVerdict {
    let bytes = report
        .exported_history
        .as_ref()
        .expect("every run exports a session history");
    let session = SessionHistory::decode(bytes).expect("exported history decodes");
    let registry =
        KeySet::generate_with(SigScheme::Hmac, scenario.n(), &scenario.seed.to_be_bytes())
            .registry();
    audit(&session, &registry).expect("auditor runs").verdict
}

/// Honest runs — volatile, and persistent across a crash+recovery —
/// must be certified by the offline auditor.
#[test]
fn auditor_certifies_honest_runs() {
    // Volatile, no faults.
    let mut scenario = kill_restart_scenario();
    scenario.server = ServerSpec::Volatile;
    scenario.plan = FaultPlan { clauses: vec![] };
    let report = run_and_check(&scenario).expect("oracles pass");
    match offline_verdict(&scenario, &report) {
        AuditVerdict::Certified {
            fork_linearizable, ..
        } => assert!(fork_linearizable),
        other => panic!("honest volatile run must certify, got {other:?}"),
    }

    // Persistent, honest kill+restart: the recovered WAL accounts for
    // the whole session, so the auditor certifies straight across the
    // crash.
    let scenario = kill_restart_scenario();
    let report = run_and_check(&scenario).expect("oracles pass");
    assert!(report.crash_time.is_some(), "the kill must fire");
    match offline_verdict(&scenario, &report) {
        AuditVerdict::Certified {
            fork_linearizable, ..
        } => assert!(fork_linearizable),
        other => panic!("honest crash recovery must certify, got {other:?}"),
    }
}

/// A volatile server crash wipes committed state — a global fork. The
/// exported post-crash session cannot account for the pre-crash
/// schedule, so the auditor must localize a divergence even if no
/// online client happened to observe the fork.
#[test]
fn auditor_diverges_on_wiped_state() {
    let mut scenario = kill_restart_scenario();
    scenario.server = ServerSpec::Volatile;
    scenario.dummy_reads = true;
    let report = run_sim(&scenario);
    let crash_time = report.crash_time.expect("the crash must fire");
    let completed_before_crash = report.notifications.iter().any(|ns| {
        ns.iter()
            .any(|(t, n)| matches!(n, Notification::Completed(_)) && *t < crash_time)
    });
    assert!(completed_before_crash, "ops must complete before the crash");
    match offline_verdict(&scenario, &report) {
        AuditVerdict::Diverged { .. } => {}
        other => panic!("a wiped server must not be certified, got {other:?}"),
    }
}
