//! Recovery invariants: a recovered server is bit-identical to the
//! pre-crash server — mid-protocol, across snapshots, and under the one
//! benign crash window (snapshot written, log not yet rotated).

use faust_store::snapshot::{write_snapshot, Snapshot};
use faust_store::testutil::{self, clients, run_op};
use faust_store::{Durability, PersistentServer, StoreConfig, StoreError};
use faust_types::{ClientId, Value};
use faust_ustor::{Server, UstorClient, UstorServer};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn no_sync() -> StoreConfig {
    StoreConfig {
        durability: Durability::Never,
        ..StoreConfig::default()
    }
}

/// Drives traffic into a persistent server, leaving `pending`
/// uncommitted ops in `L`, then "crashes" it. Returns a clone of the
/// exact pre-crash protocol state as the bit-identity reference.
fn crashed_run(
    dir: &std::path::Path,
    config: StoreConfig,
    rounds: u64,
    pending: usize,
) -> (UstorServer, Vec<UstorClient>) {
    let n = 3;
    let mut persistent = PersistentServer::open(dir, n, config).unwrap();
    let mut cs = clients(n, b"recovery-mirror");
    for round in 0..rounds {
        for i in 0..n {
            let submit = cs[i].begin_write(Value::unique(i as u32, round)).unwrap();
            run_op(&mut persistent, &mut cs[i], submit);
        }
    }
    // Leave some submits uncommitted so recovery must rebuild `L` too.
    for i in 0..pending {
        let submit = cs[i].begin_write(Value::unique(i as u32, 999)).unwrap();
        persistent.on_submit(c(i as u32), submit);
    }
    assert_eq!(persistent.server().pending_len(), pending);
    let reference = persistent.server().clone();
    drop(persistent); // the crash
    (reference, cs)
}

#[test]
fn recovery_is_bit_identical_mid_protocol() {
    let dir = testutil::scratch_dir("recovery-identical");
    let (reference, mut cs) = crashed_run(&dir, no_sync(), 3, 2);

    let recovered = PersistentServer::recover(&dir, 3, no_sync()).unwrap();
    assert_eq!(
        *recovered.server(),
        reference,
        "recovered state must be bit-identical"
    );
    assert_eq!(recovered.server().pending_len(), 2);

    // The restarted server keeps serving the *same* clients: the two
    // blocked writers never see their first reply (it died with the old
    // process), but a fresh client op completes without any violation.
    let mut recovered: Box<dyn Server + Send> = Box::new(recovered);
    let submit = cs[2].begin_read(c(0)).unwrap();
    let (_, reply) = recovered.on_submit(c(2), submit).pop().unwrap();
    let (_, done) = cs[2].handle_reply(reply).expect("recovery is invisible");
    // MEM[0] is updated at SUBMIT time (Algorithm 2), so the read sees
    // C0's still-uncommitted round-999 write — proving the recovered
    // server rebuilt MEM from the log's uncommitted suffix too.
    assert_eq!(done.read_value, Some(Some(Value::unique(0, 999))));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_with_fsync_always_matches_too() {
    let dir = testutil::scratch_dir("recovery-fsync");
    let config = StoreConfig::default(); // Durability::Always
    let (reference, _) = crashed_run(&dir, config.clone(), 1, 1);
    let recovered = PersistentServer::recover(&dir, 3, config).unwrap();
    assert_eq!(*recovered.server(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_across_snapshot_compaction() {
    let dir = testutil::scratch_dir("recovery-snapshot");
    let config = StoreConfig {
        durability: Durability::Never,
        snapshot_every: 5, // force several rotations over 18 records
    };
    let (reference, _) = crashed_run(&dir, config.clone(), 3, 0);
    let recovered = PersistentServer::recover(&dir, 3, config).unwrap();
    assert_eq!(*recovered.server(), reference);
    assert_eq!(recovered.next_seq(), 18);
    assert!(
        recovered.wal_records() < 18,
        "snapshots must have compacted the log"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_between_snapshot_and_rotation_is_benign() {
    // The documented ordering: snapshot renamed into place, *then* the
    // log rotated. A crash in between leaves a snapshot whose coverage
    // overlaps the log's early records; recovery verifies but skips them.
    let dir = testutil::scratch_dir("recovery-overlap");
    let n = 3;
    let mut persistent = PersistentServer::open(&dir, n, no_sync()).unwrap();
    let mut cs = clients(n, b"recovery-mirror");
    for i in 0..n {
        let submit = cs[i].begin_write(Value::unique(i as u32, 0)).unwrap();
        run_op(&mut persistent, &mut cs[i], submit);
    }
    let reference = persistent.server().clone();
    // Snapshot covering ALL 6 records, written by hand without rotating
    // the log — exactly the state a crash inside `snapshot()` leaves.
    write_snapshot(
        &dir,
        &Snapshot {
            n,
            next_seq: persistent.next_seq(),
            state: persistent.server().export_state(),
            global_next_seq: None,
        },
        false,
    )
    .unwrap();
    drop(persistent);

    let recovered = PersistentServer::recover(&dir, n, no_sync()).unwrap();
    assert_eq!(*recovered.server(), reference);
    assert_eq!(recovered.next_seq(), 6);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_only_directory_is_flagged_as_rollback_suspect() {
    let dir = testutil::scratch_dir("recovery-missing-wal");
    let config = StoreConfig {
        durability: Durability::Never,
        snapshot_every: 2,
    };
    let (_, _) = crashed_run(&dir, config.clone(), 2, 0);
    std::fs::remove_file(dir.join("wal.bin")).unwrap();
    assert!(matches!(
        PersistentServer::recover(&dir, 3, config).unwrap_err(),
        StoreError::MissingWal
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn log_ending_before_snapshot_coverage_is_refused() {
    // Start from the benign overlap window (snapshot covers to 6, wal
    // still holds records 0..6), then truncate the wal to 4 records.
    // The snapshot alone *could* serve the state — but accepting it
    // would rewind the append counter to 4, and records later logged at
    // seqs 4 and 5 would be silently skipped (as snapshot-covered) by
    // the NEXT recovery. Strict recovery must refuse.
    let dir = testutil::scratch_dir("recovery-short-log");
    let n = 3;
    let mut persistent = PersistentServer::open(&dir, n, no_sync()).unwrap();
    let mut cs = clients(n, b"recovery-mirror");
    for i in 0..n {
        let submit = cs[i].begin_write(Value::unique(i as u32, 0)).unwrap();
        run_op(&mut persistent, &mut cs[i], submit);
    }
    write_snapshot(
        &dir,
        &Snapshot {
            n,
            next_seq: persistent.next_seq(),
            state: persistent.server().export_state(),
            global_next_seq: None,
        },
        false,
    )
    .unwrap();
    drop(persistent);
    assert_eq!(faust_store::truncate_tail_records(&dir, 2).unwrap(), 4);
    assert!(matches!(
        PersistentServer::recover(&dir, n, no_sync()).unwrap_err(),
        StoreError::LogEndsBeforeSnapshot {
            snapshot_next: 6,
            log_next: 4
        }
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// A group-commit config whose thresholds nothing reaches by accident:
/// only explicit `flush(true)` (or `max_records`) releases replies.
fn group_config() -> StoreConfig {
    StoreConfig {
        durability: Durability::Group {
            max_records: 1_000,
            max_wait: std::time::Duration::from_secs(3600),
        },
        snapshot_every: 0,
    }
}

#[test]
fn group_commit_acked_batch_survives_a_crash() {
    // A full batch: appended, ONE fsync, replies released (= acked).
    // Every acked operation must survive the crash bit-identically.
    let dir = testutil::scratch_dir("recovery-group-acked");
    let n = 3;
    let mut server = PersistentServer::open(&dir, n, group_config()).unwrap();
    let mut cs = clients(n, b"recovery-mirror");
    for i in 0..n {
        let submit = cs[i].begin_write(Value::unique(i as u32, 0)).unwrap();
        assert!(server.on_submit(c(i as u32), submit).is_empty());
    }
    let released = server.flush(true);
    assert_eq!(released.len(), n, "one fsync released the whole batch");
    // Feed the replies back and log the commits; flush them too so the
    // entire history is acknowledged state.
    for (to, reply) in released {
        let (commit, _) = cs[to.index()].handle_reply(reply).expect("correct");
        server.on_commit(to, commit.expect("immediate mode"));
    }
    server.flush(true);
    let reference = server.server().clone();
    let acked_seq = server.next_seq();
    drop(server); // the crash — after the fsync, so nothing may be lost

    let recovered = PersistentServer::recover(&dir, n, group_config()).unwrap();
    assert_eq!(
        *recovered.server(),
        reference,
        "acked group-commit state must be bit-identical after recovery"
    );
    assert_eq!(recovered.next_seq(), acked_seq);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_between_append_and_fsync_loses_only_unacked_records() {
    // Records are appended and replies WITHHELD; the machine dies before
    // the batch's fsync. Model the power cut by dropping the unsynced
    // tail from the log: recovery must come back exactly at the acked
    // prefix — no reply a client could have observed refers to a lost
    // record.
    let dir = testutil::scratch_dir("recovery-group-tail");
    let n = 3;
    let mut server = PersistentServer::open(&dir, n, group_config()).unwrap();
    let mut cs = clients(n, b"recovery-mirror");

    // Acked prefix: one write, flushed, reply delivered, commit flushed.
    let submit = cs[0].begin_write(Value::from("acked")).unwrap();
    server.on_submit(c(0), submit);
    let (to, reply) = server.flush(true).pop().unwrap();
    let (commit, _) = cs[to.index()].handle_reply(reply).unwrap();
    server.on_commit(c(0), commit.unwrap());
    server.flush(true);
    let acked_state = server.server().clone();
    let acked_seq = server.next_seq();

    // Unacked mid-batch tail: two appends, fsync never happens.
    let submit = cs[1].begin_write(Value::from("doomed-1")).unwrap();
    assert!(server.on_submit(c(1), submit).is_empty());
    let submit = cs[2].begin_write(Value::from("doomed-2")).unwrap();
    assert!(server.on_submit(c(2), submit).is_empty());
    assert_eq!(server.held_replies(), 2, "nobody saw these replies");
    assert_eq!(server.unsynced_records(), 2);
    drop(server); // crash between append and fsync

    // The power cut takes the unsynced records with it.
    let kept = faust_store::truncate_tail_records(&dir, 2).unwrap();
    assert_eq!(kept as u64, acked_seq);

    let recovered = PersistentServer::recover(&dir, n, group_config()).unwrap();
    assert_eq!(
        *recovered.server(),
        acked_state,
        "recovery lands exactly on the acked prefix"
    );
    assert_eq!(recovered.next_seq(), acked_seq);
    let mut recovered: Box<dyn Server + Send> = Box::new(recovered);
    // C1 is still waiting on its doomed (never-acked) write — a
    // sequential client cannot begin a new op mid-flight, so losing
    // that record strands no acknowledged state.
    assert!(cs[1].begin_read(c(0)).is_err(), "C1 is mid-operation");
    // C0's history is fully acked; it keeps operating without any
    // violation and sees the acked write.
    let submit = cs[0].begin_read(c(0)).unwrap();
    let mut replies = recovered.on_submit(c(0), submit);
    // Group policy on the recovered server again: flush to release.
    if replies.is_empty() {
        replies = recovered.flush(true);
    }
    let (_, reply) = replies.pop().unwrap();
    let (_, done) = cs[0].handle_reply(reply).expect("no violation");
    assert_eq!(done.read_value, Some(Some(Value::from("acked"))));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_unacked_tail_under_group_commit_repairs_cleanly() {
    // A crash mid-`write_all` leaves a torn half-record behind the
    // acked prefix. Strict recovery refuses (no silent prefixes); the
    // explicit torn-tail repair keeps every complete record, and — with
    // group commit — everything it drops was by construction unacked.
    let dir = testutil::scratch_dir("recovery-group-torn");
    let n = 2;
    let mut server = PersistentServer::open(&dir, n, group_config()).unwrap();
    let mut cs = clients(n, b"recovery-mirror");
    let submit = cs[0].begin_write(Value::from("acked")).unwrap();
    server.on_submit(c(0), submit);
    server.flush(true); // acked
    let acked_seq = server.next_seq();
    // One more append the batch never fsyncs...
    let submit = cs[1].begin_write(Value::from("unacked")).unwrap();
    assert!(server.on_submit(c(1), submit).is_empty());
    drop(server);
    // ...and the crash tears some trailing bytes of the file off (a
    // half-flushed page), leaving a torn record.
    let wal_path = dir.join("wal.bin");
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 7]).unwrap();

    let err = PersistentServer::recover(&dir, n, group_config()).unwrap_err();
    assert!(matches!(err, StoreError::TornRecord { .. }), "{err:?}");
    // The documented repair: drop the torn bytes only.
    let kept = faust_store::truncate_tail_records(&dir, 0).unwrap();
    assert_eq!(kept as u64, acked_seq, "every acked record kept");
    let recovered = PersistentServer::recover(&dir, n, group_config()).unwrap();
    assert_eq!(recovered.next_seq(), acked_seq);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn log_starting_after_snapshot_coverage_is_a_gap() {
    // A log whose base_seq jumps past the snapshot's next_seq means
    // records between them vanished.
    let dir = testutil::scratch_dir("recovery-ahead");
    let n = 2;
    let server = PersistentServer::open(&dir, n, no_sync()).unwrap();
    write_snapshot(
        &dir,
        &Snapshot {
            n,
            next_seq: 3,
            state: server.server().export_state(),
            global_next_seq: None,
        },
        false,
    )
    .unwrap();
    drop(server);
    // Rewrite the wal with base_seq far beyond the snapshot.
    faust_store::log::Wal::create(&dir, n, 10, false).unwrap();
    assert!(matches!(
        PersistentServer::recover(&dir, n, no_sync()).unwrap_err(),
        StoreError::SnapshotAheadOfLog {
            snapshot_next: 3,
            base_seq: 10
        }
    ));
    std::fs::remove_dir_all(&dir).ok();
}
