//! A lock-step fork-linearizable storage protocol (SUNDR-style), used as
//! the baseline USTOR is compared against.
//!
//! Every operation must observe and extend one globally agreed, signed
//! state; the server therefore serves operations strictly one at a time —
//! a client's operation holds a virtual lock from the server's GRANT until
//! the client's COMMIT. This is the standard structure of
//! fork-linearizable storage (SUNDR; the lock-step protocol of the paper's §2),
//! and it exhibits precisely the blocking the paper proves unavoidable:
//! *no fork-linearizable protocol is wait-free* — a reader must wait for a
//! concurrent writer, and a crashed client wedges everyone behind it.
//!
//! The state is a sequence number, a per-client operation-count vector,
//! and a vector of register value hashes, signed as a unit by the client
//! that produced it. Clients verify on every GRANT that the state extends
//! what they last saw and agrees with their own operation count, then
//! install, sign, and commit the successor state.

use faust_crypto::sha256::sha256;
use faust_crypto::sig::{Keypair, SigContext, Signature, Signer, Verifier, VerifierRegistry};
use faust_crypto::Digest;
use faust_types::{ClientId, OpKind, TimestampVec, Value};
use std::collections::VecDeque;
use std::fmt;

/// The signed global state of the lock-step protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedState {
    /// Total number of operations applied.
    pub seq: u64,
    /// Per-client operation counts.
    pub counts: TimestampVec,
    /// Hash of each register's current value (`None` = `⊥`).
    pub value_hashes: Vec<Option<Digest>>,
    /// The client that produced this state (meaningless for `seq == 0`).
    pub author: ClientId,
    /// Signature by `author` over the state (absent only for `seq == 0`).
    pub sig: Option<Signature>,
}

impl SignedState {
    /// The initial, unsigned state for `n` clients.
    pub fn initial(n: usize) -> Self {
        SignedState {
            seq: 0,
            counts: TimestampVec::zeros(n),
            value_hashes: vec![None; n],
            author: ClientId::new(0),
            sig: None,
        }
    }

    /// Canonical bytes covered by the state signature.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.value_hashes.len() * 40);
        out.extend_from_slice(b"lockstep:");
        out.extend_from_slice(&self.seq.to_be_bytes());
        for &t in self.counts.as_slice() {
            out.extend_from_slice(&t.to_be_bytes());
        }
        for h in &self.value_hashes {
            match h {
                None => out.push(0),
                Some(d) => {
                    out.push(1);
                    out.extend_from_slice(d.as_bytes());
                }
            }
        }
        out
    }
}

/// Client → server: request to perform an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsSubmit {
    /// Read or write.
    pub kind: OpKind,
    /// Target register.
    pub register: ClientId,
    /// Value to write (writes only).
    pub value: Option<Value>,
}

/// Server → client: the lock is granted; the operation may proceed on
/// this state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsGrant {
    /// The current signed state.
    pub state: SignedState,
    /// Current value of the requested register (reads only).
    pub value: Option<Value>,
}

/// Client → server: the new signed state; releases the lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsCommit {
    /// The successor state produced by the client's operation.
    pub state: SignedState,
    /// The value written, for the server to store (writes only).
    pub value: Option<Value>,
}

/// Misbehaviour detected by a lock-step client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsFault {
    /// Invalid signature on the granted state.
    BadStateSignature,
    /// The granted state regresses what the client previously saw.
    StateRegression,
    /// The granted state disagrees with the client's own operation count.
    OwnCountMismatch,
    /// The returned register value does not match the state's hash.
    ValueHashMismatch,
    /// A grant arrived with no operation in flight.
    UnsolicitedGrant,
    /// Structurally invalid message.
    Malformed(&'static str),
}

impl fmt::Display for LsFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsFault::BadStateSignature => f.write_str("invalid state signature"),
            LsFault::StateRegression => f.write_str("granted state regresses history"),
            LsFault::OwnCountMismatch => f.write_str("state disagrees on own op count"),
            LsFault::ValueHashMismatch => f.write_str("value does not match state hash"),
            LsFault::UnsolicitedGrant => f.write_str("grant with no operation in flight"),
            LsFault::Malformed(why) => write!(f, "malformed grant: {why}"),
        }
    }
}

impl std::error::Error for LsFault {}

/// Completion of a lock-step operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsCompletion {
    /// Read or write.
    pub kind: OpKind,
    /// Target register.
    pub target: ClientId,
    /// Value returned (reads; `None` = `⊥`).
    pub read_value: Option<Option<Value>>,
    /// Global sequence number of the operation.
    pub seq: u64,
}

/// The lock-step client.
#[derive(Debug, Clone)]
pub struct LockStepClient {
    id: ClientId,
    n: usize,
    keypair: Keypair,
    registry: VerifierRegistry,
    /// The last state this client observed.
    last_seen: SignedState,
    /// Own completed-operation count.
    own_count: u64,
    pending: Option<LsSubmit>,
    halted: Option<LsFault>,
}

impl LockStepClient {
    /// Creates the client protocol state for client `id` of `n`.
    ///
    /// # Panics
    ///
    /// Panics if the keypair does not match `id` or `id ≥ n`.
    pub fn new(id: ClientId, n: usize, keypair: Keypair, registry: VerifierRegistry) -> Self {
        assert_eq!(keypair.signer_index(), id.as_u32());
        assert!(id.index() < n);
        LockStepClient {
            id,
            n,
            keypair,
            registry,
            last_seen: SignedState::initial(n),
            own_count: 0,
            pending: None,
            halted: None,
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The fault that halted this client, if any.
    pub fn fault(&self) -> Option<&LsFault> {
        self.halted.as_ref()
    }

    /// Whether an operation is in flight.
    pub fn is_busy(&self) -> bool {
        self.pending.is_some()
    }

    /// Starts a write of the client's own register.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight or the client halted.
    pub fn begin_write(&mut self, value: Value) -> LsSubmit {
        assert!(self.pending.is_none() && self.halted.is_none());
        let msg = LsSubmit {
            kind: OpKind::Write,
            register: self.id,
            value: Some(value),
        };
        self.pending = Some(msg.clone());
        msg
    }

    /// Starts a read of `register`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight or the client halted.
    pub fn begin_read(&mut self, register: ClientId) -> LsSubmit {
        assert!(self.pending.is_none() && self.halted.is_none());
        let msg = LsSubmit {
            kind: OpKind::Read,
            register,
            value: None,
        };
        self.pending = Some(msg.clone());
        msg
    }

    /// Processes the server's GRANT: verifies the state, produces the
    /// successor state and the operation's completion.
    ///
    /// # Errors
    ///
    /// Returns the detected [`LsFault`]; the client halts permanently.
    pub fn handle_grant(&mut self, grant: LsGrant) -> Result<(LsCommit, LsCompletion), LsFault> {
        match self.try_handle(grant) {
            Ok(v) => Ok(v),
            Err(fault) => {
                self.halted = Some(fault.clone());
                self.pending = None;
                Err(fault)
            }
        }
    }

    fn try_handle(&mut self, grant: LsGrant) -> Result<(LsCommit, LsCompletion), LsFault> {
        if let Some(f) = &self.halted {
            return Err(f.clone());
        }
        let op = self.pending.clone().ok_or(LsFault::UnsolicitedGrant)?;
        let state = &grant.state;
        if state.counts.len() != self.n || state.value_hashes.len() != self.n {
            return Err(LsFault::Malformed("state arity"));
        }
        if state.author.index() >= self.n {
            return Err(LsFault::Malformed("author out of range"));
        }
        // Signature check (initial state exempt).
        if state.seq != 0 {
            let ok = state.sig.as_ref().is_some_and(|sig| {
                self.registry.verify(
                    state.author.as_u32(),
                    SigContext::Commit,
                    &state.signing_bytes(),
                    sig,
                )
            });
            if !ok {
                return Err(LsFault::BadStateSignature);
            }
        }
        // Monotonicity and own-count agreement.
        if !self.last_seen.counts.le(&state.counts) || state.seq < self.last_seen.seq {
            return Err(LsFault::StateRegression);
        }
        if state.counts.get(self.id) != self.own_count {
            return Err(LsFault::OwnCountMismatch);
        }
        // For reads: the returned value must match the state's hash.
        let read_value = if op.kind == OpKind::Read {
            let expect = state.value_hashes[op.register.index()];
            let got = grant.value.as_ref().map(|v| sha256(v.as_bytes()));
            if expect != got {
                return Err(LsFault::ValueHashMismatch);
            }
            Some(grant.value.clone())
        } else {
            None
        };

        // Build, sign, and commit the successor state.
        let mut next = state.clone();
        next.seq += 1;
        next.counts.increment(self.id);
        if op.kind == OpKind::Write {
            let value = op.value.as_ref().expect("writes carry a value");
            next.value_hashes[self.id.index()] = Some(sha256(value.as_bytes()));
        }
        next.author = self.id;
        next.sig = None;
        let sig = self.keypair.sign(SigContext::Commit, &next.signing_bytes());
        next.sig = Some(sig);

        self.own_count += 1;
        self.last_seen = next.clone();
        self.pending = None;
        Ok((
            LsCommit {
                state: next.clone(),
                value: op.value.clone(),
            },
            LsCompletion {
                kind: op.kind,
                target: op.register,
                read_value,
                seq: next.seq,
            },
        ))
    }
}

/// The lock-step server: grants the (single, global) lock to one
/// operation at a time.
#[derive(Debug, Clone)]
pub struct LockStepServer {
    state: SignedState,
    values: Vec<Option<Value>>,
    /// Queue of submitted operations waiting for the lock.
    queue: VecDeque<(ClientId, LsSubmit)>,
    /// The client currently holding the lock.
    in_service: Option<ClientId>,
}

impl LockStepServer {
    /// Creates a server for `n` clients with all registers `⊥`.
    pub fn new(n: usize) -> Self {
        LockStepServer {
            state: SignedState::initial(n),
            values: vec![None; n],
            queue: VecDeque::new(),
            in_service: None,
        }
    }

    /// Number of operations waiting for the lock (diagnostics; this is
    /// the queue that makes the protocol blocking).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The client currently holding the lock, if any.
    pub fn lock_holder(&self) -> Option<ClientId> {
        self.in_service
    }

    /// Handles a SUBMIT: queues it, and grants the lock if free.
    pub fn on_submit(&mut self, client: ClientId, msg: LsSubmit) -> Vec<(ClientId, LsGrant)> {
        self.queue.push_back((client, msg));
        self.grant_if_free()
    }

    /// Handles a COMMIT: installs the new state, releases the lock, and
    /// grants it to the next queued operation.
    pub fn on_commit(&mut self, client: ClientId, msg: LsCommit) -> Vec<(ClientId, LsGrant)> {
        if self.in_service != Some(client) {
            return Vec::new(); // stray commit; a correct client never does this
        }
        self.state = msg.state;
        if let Some(v) = msg.value {
            self.values[client.index()] = Some(v);
        }
        self.in_service = None;
        self.grant_if_free()
    }

    fn grant_if_free(&mut self) -> Vec<(ClientId, LsGrant)> {
        if self.in_service.is_some() {
            return Vec::new();
        }
        let Some((client, op)) = self.queue.pop_front() else {
            return Vec::new();
        };
        self.in_service = Some(client);
        let value = (op.kind == OpKind::Read)
            .then(|| self.values[op.register.index()].clone())
            .flatten();
        vec![(
            client,
            LsGrant {
                state: self.state.clone(),
                value,
            },
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::sig::KeySet;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    fn setup(n: usize) -> (LockStepServer, Vec<LockStepClient>) {
        let keys = KeySet::generate(n, b"lockstep");
        let clients = (0..n)
            .map(|i| {
                LockStepClient::new(
                    c(i as u32),
                    n,
                    keys.keypair(i as u32).unwrap().clone(),
                    keys.registry(),
                )
            })
            .collect();
        (LockStepServer::new(n), clients)
    }

    fn run_op(
        server: &mut LockStepServer,
        clients: &mut [LockStepClient],
        who: usize,
        submit: LsSubmit,
    ) -> LsCompletion {
        let grants = server.on_submit(c(who as u32), submit);
        assert_eq!(grants.len(), 1, "lock must be free");
        let (commit, done) = clients[who].handle_grant(grants[0].1.clone()).unwrap();
        let next = server.on_commit(c(who as u32), commit);
        assert!(next.is_empty(), "no queued ops in sequential test");
        done
    }

    #[test]
    fn write_then_read() {
        let (mut s, mut cs) = setup(2);
        let w = cs[0].begin_write(Value::from("x"));
        run_op(&mut s, &mut cs, 0, w);
        let r = cs[1].begin_read(c(0));
        let done = run_op(&mut s, &mut cs, 1, r);
        assert_eq!(done.read_value, Some(Some(Value::from("x"))));
    }

    #[test]
    fn read_of_unwritten_register_returns_bottom() {
        let (mut s, mut cs) = setup(2);
        let r = cs[1].begin_read(c(0));
        let done = run_op(&mut s, &mut cs, 1, r);
        assert_eq!(done.read_value, Some(None));
    }

    #[test]
    fn concurrent_op_waits_for_lock() {
        let (mut s, mut cs) = setup(2);
        // C0 submits and receives the grant but does not commit yet.
        let w = cs[0].begin_write(Value::from("x"));
        let grants = s.on_submit(c(0), w);
        assert_eq!(grants.len(), 1);
        // C1 submits: no grant — it is blocked behind C0.
        let r = cs[1].begin_read(c(0));
        let blocked = s.on_submit(c(1), r);
        assert!(blocked.is_empty(), "reader must block behind the writer");
        assert_eq!(s.queue_len(), 1);
        // C0 commits; the lock passes to C1.
        let (commit, _) = cs[0].handle_grant(grants[0].1.clone()).unwrap();
        let next = s.on_commit(c(0), commit);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].0, c(1));
        let (_, done) = cs[1].handle_grant(next[0].1.clone()).unwrap();
        assert_eq!(done.read_value, Some(Some(Value::from("x"))));
    }

    #[test]
    fn crashed_lock_holder_wedges_everyone() {
        let (mut s, mut cs) = setup(3);
        let w = cs[0].begin_write(Value::from("x"));
        let _grant_never_answered = s.on_submit(c(0), w);
        // C0 "crashes" (never commits). C1 and C2 can never proceed.
        let r1 = cs[1].begin_read(c(0));
        let r2 = cs[2].begin_read(c(0));
        assert!(s.on_submit(c(1), r1).is_empty());
        assert!(s.on_submit(c(2), r2).is_empty());
        assert_eq!(s.queue_len(), 2);
        assert_eq!(s.lock_holder(), Some(c(0)));
    }

    #[test]
    fn tampered_value_detected() {
        let (mut s, mut cs) = setup(2);
        let w = cs[0].begin_write(Value::from("x"));
        run_op(&mut s, &mut cs, 0, w);
        let r = cs[1].begin_read(c(0));
        let grants = s.on_submit(c(1), r);
        let mut grant = grants[0].1.clone();
        grant.value = Some(Value::from("tampered"));
        assert_eq!(cs[1].handle_grant(grant), Err(LsFault::ValueHashMismatch));
    }

    #[test]
    fn regressed_state_detected() {
        let (mut s, mut cs) = setup(2);
        let w1 = cs[0].begin_write(Value::from("x1"));
        run_op(&mut s, &mut cs, 0, w1);
        let w2 = cs[0].begin_write(Value::from("x2"));
        run_op(&mut s, &mut cs, 0, w2);
        // Serve C0 the initial state again.
        let r = cs[0].begin_read(c(0));
        let grants = s.on_submit(c(0), r);
        let mut grant = grants[0].1.clone();
        grant.state = SignedState::initial(2);
        grant.value = None;
        let err = cs[0].handle_grant(grant).unwrap_err();
        assert!(
            matches!(err, LsFault::StateRegression | LsFault::OwnCountMismatch),
            "got {err:?}"
        );
    }

    #[test]
    fn forged_signature_detected() {
        let (mut s, mut cs) = setup(2);
        let w = cs[0].begin_write(Value::from("x"));
        run_op(&mut s, &mut cs, 0, w);
        let r = cs[1].begin_read(c(0));
        let grants = s.on_submit(c(1), r);
        let mut grant = grants[0].1.clone();
        grant.state.sig = Some(Signature::garbage());
        assert_eq!(cs[1].handle_grant(grant), Err(LsFault::BadStateSignature));
    }
}
