//! Quickstart: three clients collaborate through an untrusted server —
//! driven entirely through the public client API.
//!
//! A live deployment in one process: the server engine serves the
//! in-process channel transport on its own thread, and three
//! [`faust::client::FaustHandle`] sessions write, read, and react to the
//! typed fail-awareness event stream (completions with timestamps,
//! stability cuts). Swap the channel transport for
//! `FaustHandle::connect_tcp` and this same code runs against a remote
//! `faust serve` process.
//!
//! Run with: `cargo run --example quickstart`

use faust::client::{Event, FaustHandle, HandleConfig, OfflineLink, SessionCore};
use faust::core::runtime::spawn_engine;
use faust::core::FaustConfig;
use faust::types::{ClientId, Value};
use faust::ustor::UstorServer;
use std::time::Duration;

fn main() {
    let n = 3;

    // Server side: the engine over the channel transport, on its own
    // thread — exactly what `faust serve` does behind TCP.
    let (transport, conns) = faust::net::channel::pair(n);
    let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);

    // Client side: one handle per client, sharing the offline mesh (the
    // paper's client-to-client medium) and one key seed.
    let config = HandleConfig {
        faust: FaustConfig {
            // Quiet variant for readable output: stability spreads
            // through the explicit reads and offline probes alone (no
            // background dummy reads).
            probe_period: 40,
            dummy_reads: false,
            ..FaustConfig::default()
        },
        tick_interval: Duration::from_millis(5),
        ..HandleConfig::default()
    };
    let mut links: Vec<OfflineLink> = faust::client::offline_mesh(n);
    let mut handles: Vec<FaustHandle> = conns
        .into_iter()
        .enumerate()
        .map(|(i, conn)| {
            FaustHandle::new(
                ClientId::new(i as u32),
                n,
                b"quickstart",
                &config,
                Box::new(conn),
            )
            .with_offline(links.remove(0))
        })
        .collect();

    let wait = Duration::from_secs(5);

    // Client 0 publishes two document revisions — pipelined: both
    // tickets are issued before either completes.
    let _draft = handles[0].write(Value::from("draft: hello"));
    let fin = handles[0].write(Value::from("final: hello, world"));
    handles[0].wait(fin, wait).expect("writes complete");

    // Clients 1 and 2 read the document.
    let r1 = handles[1].read(ClientId::new(0));
    let d1 = handles[1].wait(r1, wait).expect("read completes");
    let r2 = handles[2].read(ClientId::new(0));
    let d2 = handles[2].wait(r2, wait).expect("read completes");
    println!(
        "C1 read X0 -> {:?}   C2 read X0 -> {:?}\n",
        d1.read_value.clone().flatten().expect("written"),
        d2.read_value.clone().flatten().expect("written"),
    );

    // Let the probe machinery spread stability for a moment, pumping
    // every handle (each probes silent peers and answers with its
    // maximal version).
    let mut events: Vec<Vec<(u64, Event)>> = vec![Vec::new(); n];
    for _ in 0..30 {
        for (i, handle) in handles.iter_mut().enumerate() {
            events[i].extend(handle.run_for(Duration::from_millis(10)));
        }
    }

    for (i, handle) in handles.iter_mut().enumerate() {
        events[i].extend(handle.poll());
        println!("── client C{i} ──");
        for (t, event) in &events[i] {
            match event {
                Event::Completed { ticket, completion } => {
                    let what = match &completion.read_value {
                        Some(Some(v)) => format!("read X{} -> {v}", completion.target.index()),
                        Some(None) => format!("read X{} -> ⊥", completion.target.index()),
                        None => format!("write X{}", completion.target.index()),
                    };
                    println!(
                        "  t={t:>5}  {ticket} (timestamp {}): {what}",
                        completion.timestamp
                    );
                }
                Event::Stable { cut } => println!("  t={t:>5}  stable{cut}"),
                Event::Violation { reason } => println!("  t={t:>5}  VIOLATION: {reason}"),
                Event::Disconnected { reason } => println!("  t={t:>5}  disconnected ({reason})"),
                Event::Reconnecting { attempt, .. } => {
                    println!("  t={t:>5}  reconnecting (attempt {attempt})");
                }
                Event::Resumed => println!("  t={t:>5}  resumed"),
            }
        }
        assert!(
            handle.failure().is_none(),
            "correct server: no violations ever"
        );
    }

    // C0's two revisions became stable with respect to everyone: each
    // peer's entry in C0's cut reached timestamp 2.
    let cut = handles[0].stability_cut();
    assert!(
        cut.w.iter().all(|&w| w >= 2),
        "expected full stability, got {cut}"
    );
    println!("\nfinal cut at C0: stable{cut} — both revisions stable w.r.t. everyone");

    // Clean shutdown: every handle disconnects, the engine drains and
    // exits, and its counters confirm the traffic.
    let mut cores: Vec<SessionCore> = Vec::new();
    for handle in handles {
        let (core, _clock) = handle.into_core();
        cores.push(core);
    }
    let stats = engine.join().expect("engine thread");
    println!(
        "server is correct: no failure notifications, as guaranteed.\n\
         traffic: {} submits, {} commits, {} frames out in {} writes",
        stats.submits, stats.commits, stats.frames_out, stats.flushes,
    );
}
