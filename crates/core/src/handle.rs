//! The first-class fail-aware client API: live [`FaustHandle`] sessions
//! with pipelined operations and a typed [`Event`] stream.
//!
//! Everything the paper promises an *application* — completion
//! timestamps, stability cuts, and accurate violation alerts — surfaces
//! here as ordered, typed events instead of post-hoc report fields:
//!
//! * [`FaustHandle::write`] / [`FaustHandle::read`] are **non-blocking**:
//!   they return an [`OpTicket`] immediately. Up to
//!   [`FaustConfig::pipeline`] operations travel concurrently; the rest
//!   queue behind them.
//! * [`FaustHandle::poll`] drives the session without blocking;
//!   [`FaustHandle::wait`] blocks until one ticket's completion;
//!   [`FaustHandle::run_for`] runs the event loop for a fixed duration
//!   (probes and dummy reads run off the handle's internal protocol
//!   clock either way, and group-commit servers that hold replies back
//!   are simply waited out).
//! * Fail-awareness arrives as [`Event::Stable`] and [`Event::Violation`];
//!   transport loss as [`Event::Disconnected`].
//!
//! The sans-io half of the handle is [`SessionCore`]: the ticket/event
//! bookkeeping over a [`FaustClient`], with no clock and no transport.
//! The deterministic simulation driver ([`crate::FaustDriver`]) drives a
//! `SessionCore` per client inside virtual time; [`FaustHandle`] wraps
//! one around a real [`ClientTransport`] and an [`Instant`]-based clock.
//! Both therefore run the *identical* protocol and event semantics.
//!
//! # Event ordering guarantees
//!
//! Events are delivered in the order the protocol produced them:
//!
//! * [`Event::Completed`] events appear in ticket order — operations are
//!   scheduled and answered FIFO per client, pipelined or not.
//! * An [`Event::Stable`] cut never moves backwards: each cut dominates
//!   every cut delivered before it.
//! * After an [`Event::Violation`] the session is halted: no further
//!   `Completed` or `Stable` events will ever be delivered.
//!
//! # Lifecycle
//!
//! A handle owns exactly one [`ClientTransport`] connection. If the
//! transport fails, the session state (version vectors, stability
//! machinery, queued work) survives: [`Event::Disconnected`] is emitted
//! once, unsent messages are retained, and [`FaustHandle::reconnect`]
//! resumes against a new connection — e.g. a restarted server. An
//! operation whose SUBMIT was already on the wire when the connection
//! died can never complete (its reply died with the socket); disconnect
//! at quiescence, as an operator draining traffic would. Clean shutdown
//! is [`FaustHandle::disconnect`] or dropping the handle.

use crate::client::{Actions, FaustClient, FaustConfig, UserOp};
use crate::events::{FailReason, FaustCompletion, Notification, StabilityCut};
use crate::offline::OfflineMsg;
use faust_crypto::sig::{KeySet, SigScheme};
use faust_net::{ClientTransport, TransportClosed};
use faust_types::{ClientId, ReplyMsg, UstorMsg, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

/// Identifies one submitted user operation of a [`FaustHandle`] /
/// [`SessionCore`]. Tickets are issued in submission order and complete
/// in the same order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpTicket(u64);

impl OpTicket {
    /// The ticket's sequence number (0-based submission order).
    pub fn index(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for OpTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// A typed, ordered event from a fail-aware session — the application's
/// view of Definition 5 (see the module docs for ordering guarantees).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A user operation completed, with its fail-aware timestamp.
    Completed {
        /// The ticket returned when the operation was submitted.
        ticket: OpTicket,
        /// Timestamp, kind, and (for reads) the value.
        completion: FaustCompletion,
    },
    /// `stable_i(W)`: the stability cut advanced.
    Stable {
        /// The new cut; dominates every previously delivered cut.
        cut: StabilityCut,
    },
    /// `fail_i`: proof of server misbehaviour. The session has halted —
    /// this is the last protocol event it will ever deliver.
    Violation {
        /// Why the server stands convicted.
        reason: FailReason,
    },
    /// The transport to the server failed. Session state is intact;
    /// [`FaustHandle::reconnect`] resumes it.
    Disconnected,
}

/// Why [`FaustHandle::wait`] gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitError {
    /// The timeout elapsed before the operation completed.
    Timeout,
    /// The transport failed (and the operation had not completed).
    Disconnected,
    /// The session detected a server violation and halted.
    Violation(FailReason),
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::Timeout => f.write_str("timed out waiting for the operation"),
            WaitError::Disconnected => {
                f.write_str("transport failed before the operation completed")
            }
            WaitError::Violation(reason) => write!(f, "session halted: {reason}"),
        }
    }
}

impl std::error::Error for WaitError {}

/// What a [`SessionCore`] entry point asks its embedding to transmit:
/// messages for the storage server and messages for the offline
/// client-to-client medium. (Events are *not* here — they accumulate in
/// the core and are drained with [`SessionCore::take_events`].)
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SessionOutput {
    /// Messages for the storage server, in order.
    pub to_server: Vec<UstorMsg>,
    /// Offline messages for other clients.
    pub offline: Vec<(ClientId, OfflineMsg)>,
}

/// The sans-io half of a fail-aware session: ticket and event bookkeeping
/// over a [`FaustClient`], with no clock and no transport.
///
/// Every entry point takes the current protocol time (milliseconds) and
/// returns the [`SessionOutput`] the embedding must transmit; events
/// accumulate internally, stamped with that time. [`FaustHandle`] drives
/// one against wall-clock time; [`crate::FaustDriver`] drives one per
/// simulated client inside virtual time — same code, same semantics.
#[derive(Debug)]
pub struct SessionCore {
    proto: FaustClient,
    next_ticket: u64,
    /// Tickets of submitted-but-uncompleted user operations, oldest
    /// first (the protocol completes user operations FIFO).
    pending_tickets: VecDeque<OpTicket>,
    events: VecDeque<(u64, Event)>,
    results: HashMap<u64, FaustCompletion>,
}

impl SessionCore {
    /// Wraps an existing protocol client (e.g. one resumed from a
    /// previous server incarnation).
    pub fn new(proto: FaustClient) -> Self {
        SessionCore {
            proto,
            next_ticket: 0,
            pending_tickets: VecDeque::new(),
            events: VecDeque::new(),
            results: HashMap::new(),
        }
    }

    /// This session's client id.
    pub fn id(&self) -> ClientId {
        self.proto.id()
    }

    /// Number of clients in the deployment.
    pub fn num_clients(&self) -> usize {
        self.proto.num_clients()
    }

    /// Read access to the protocol state (diagnostics and tests).
    pub fn client(&self) -> &FaustClient {
        &self.proto
    }

    /// Consumes the core, returning the protocol client (for resumption
    /// against another server incarnation).
    pub fn into_client(self) -> FaustClient {
        self.proto
    }

    /// The violation that halted this session, if any.
    pub fn failure(&self) -> Option<&FailReason> {
        self.proto.failure()
    }

    /// The current stability cut `W_i`.
    pub fn stability_cut(&self) -> StabilityCut {
        self.proto.stability_cut()
    }

    /// Submitted-but-uncompleted user operations.
    pub fn backlog(&self) -> usize {
        self.pending_tickets.len()
    }

    /// Submits a user operation; it enters the pipeline window
    /// immediately if there is room, and queues otherwise.
    pub fn submit(&mut self, op: UserOp, now: u64) -> (OpTicket, SessionOutput) {
        let ticket = OpTicket(self.next_ticket);
        self.next_ticket += 1;
        self.pending_tickets.push_back(ticket);
        let actions = self.proto.invoke(op, now);
        (ticket, self.absorb(actions, now))
    }

    /// Processes a REPLY from the server.
    pub fn handle_reply(&mut self, reply: ReplyMsg, now: u64) -> SessionOutput {
        let actions = self.proto.handle_reply(reply, now);
        self.absorb(actions, now)
    }

    /// Processes an offline message from another client.
    pub fn handle_offline(&mut self, msg: OfflineMsg, now: u64) -> SessionOutput {
        let actions = self.proto.handle_offline(msg, now);
        self.absorb(actions, now)
    }

    /// Periodic protocol tick: probes silent clients, issues dummy reads
    /// when idle, starts queued work.
    pub fn tick(&mut self, now: u64) -> SessionOutput {
        let actions = self.proto.on_tick(now);
        self.absorb(actions, now)
    }

    /// Records a transport failure as an [`Event::Disconnected`].
    pub fn note_disconnected(&mut self, now: u64) {
        self.events.push_back((now, Event::Disconnected));
    }

    /// When the session is idle in piggyback commit mode, the COMMIT of
    /// the last operation is still waiting for a SUBMIT to ride on; this
    /// returns it (at most once) so the embedding can send it explicitly
    /// and the server can garbage-collect its pending list.
    pub fn flush_commit(&mut self) -> Option<UstorMsg> {
        if self.proto.is_idle() {
            self.proto.take_held_commit().map(UstorMsg::Commit)
        } else {
            None
        }
    }

    /// Takes the completion of `ticket` if it has arrived (each result
    /// can be taken once; the [`Event::Completed`] stream is unaffected).
    pub fn take_result(&mut self, ticket: OpTicket) -> Option<FaustCompletion> {
        self.results.remove(&ticket.0)
    }

    /// Whether `ticket` has completed (without consuming the result).
    pub fn is_complete(&self, ticket: OpTicket) -> bool {
        self.results.contains_key(&ticket.0)
    }

    /// Drains every accumulated event, oldest first, each stamped with
    /// the protocol time at which it occurred.
    pub fn take_events(&mut self) -> Vec<(u64, Event)> {
        self.events.drain(..).collect()
    }

    /// Next accumulated event, if any.
    pub fn poll_event(&mut self) -> Option<(u64, Event)> {
        self.events.pop_front()
    }

    /// Converts the protocol's notifications into events (in order) and
    /// strips them off the transmission half.
    fn absorb(&mut self, actions: Actions, now: u64) -> SessionOutput {
        for note in actions.notifications {
            let event = match note {
                Notification::Completed(completion) => {
                    let ticket = self
                        .pending_tickets
                        .pop_front()
                        .expect("a completion without a submitted user op");
                    self.results.insert(ticket.0, completion.clone());
                    Event::Completed { ticket, completion }
                }
                Notification::Stable(cut) => Event::Stable { cut },
                Notification::Failed(reason) => Event::Violation { reason },
            };
            self.events.push_back((now, event));
        }
        SessionOutput {
            to_server: actions.to_server,
            offline: actions.offline,
        }
    }
}

/// One client's endpoint on an in-process offline medium (the paper's
/// client-to-client communication method): senders to every peer plus an
/// inbox. Build a full mesh with [`offline_mesh`]. Deployments without a
/// side channel (e.g. the CLI across real hosts) run without one — the
/// probe machinery then idles and stability spreads through reads alone.
pub struct OfflineLink {
    peers: Vec<Sender<OfflineMsg>>,
    inbox: Receiver<OfflineMsg>,
}

impl OfflineLink {
    /// Sends `msg` to `to` (best-effort: a departed peer is silence, not
    /// an error — exactly the paper's asynchronous offline medium).
    pub fn send(&self, to: ClientId, msg: OfflineMsg) {
        if let Some(tx) = self.peers.get(to.index()) {
            let _ = tx.send(msg);
        }
    }

    /// A message from a peer, if one is waiting.
    pub fn try_recv(&self) -> Option<OfflineMsg> {
        self.inbox.try_recv().ok()
    }
}

/// Builds the full offline mesh for `n` clients: link `i` belongs to
/// client `i`.
pub fn offline_mesh(n: usize) -> Vec<OfflineLink> {
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .map(|inbox| OfflineLink {
            peers: txs.clone(),
            inbox,
        })
        .collect()
}

/// Configuration of a live [`FaustHandle`].
#[derive(Debug, Clone, Copy)]
pub struct HandleConfig {
    /// FAUST protocol tuning; `probe_period` is wall milliseconds here.
    pub faust: FaustConfig,
    /// How often the internal protocol clock ticks (probes, dummy reads,
    /// queued-work starts).
    pub tick_interval: Duration,
    /// Signature scheme for keys derived from the session's key seed.
    pub scheme: SigScheme,
}

impl Default for HandleConfig {
    fn default() -> Self {
        HandleConfig {
            faust: FaustConfig::default(),
            tick_interval: Duration::from_millis(10),
            scheme: SigScheme::Hmac,
        }
    }
}

/// A live fail-aware session: one client of a FAUST deployment, bound to
/// one [`ClientTransport`] connection. See the module docs.
///
/// # Example
///
/// ```
/// use faust_core::handle::{Event, FaustHandle, HandleConfig};
/// use faust_core::runtime::spawn_engine;
/// use faust_types::{ClientId, Value};
/// use faust_ustor::UstorServer;
/// use std::time::Duration;
///
/// // A one-client deployment over the in-process channel transport.
/// let (transport, mut conns) = faust_net::channel::pair(1);
/// let engine = spawn_engine(1, Box::new(UstorServer::new(1)), transport);
/// let mut handle = FaustHandle::new(
///     ClientId::new(0),
///     1,
///     b"doc-example",
///     &HandleConfig::default(),
///     Box::new(conns.remove(0)),
/// );
/// let ticket = handle.write(Value::from("hello"));
/// let done = handle.wait(ticket, Duration::from_secs(5)).unwrap();
/// assert_eq!(done.timestamp, 1);
/// handle.disconnect();
/// engine.join().unwrap();
/// ```
pub struct FaustHandle {
    core: SessionCore,
    transport: Option<Box<dyn ClientTransport>>,
    offline: Option<OfflineLink>,
    /// Wall-clock anchor of the protocol clock.
    epoch: Instant,
    /// Protocol time at `epoch` (continues across reconnects and, for
    /// resumed sessions, across handles).
    clock_base: u64,
    tick_interval: Duration,
    next_tick: Instant,
    /// Server-bound messages not yet on the wire (transport down).
    outbox: VecDeque<UstorMsg>,
}

impl FaustHandle {
    /// Builds a fresh session for client `id` of `n` over `transport`,
    /// with keys derived from `key_seed` under `config.scheme` (every
    /// client of the deployment must derive from the same seed).
    ///
    /// # Panics
    ///
    /// Panics if `id ≥ n` or `n` is zero.
    pub fn new(
        id: ClientId,
        n: usize,
        key_seed: &[u8],
        config: &HandleConfig,
        transport: Box<dyn ClientTransport>,
    ) -> Self {
        let keys = KeySet::generate_with(config.scheme, n, key_seed);
        let proto = FaustClient::new(
            id,
            n,
            keys.keypair(id.as_u32()).expect("generated").clone(),
            keys.registry(),
            config.faust,
        );
        Self::from_core(SessionCore::new(proto), config.tick_interval, 0, transport)
    }

    /// Connects to a `faust serve` (or any [`faust_net::TcpServerTransport`])
    /// endpoint and builds the session over it.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from connecting.
    ///
    /// # Panics
    ///
    /// Panics if `id ≥ n` or `n` is zero.
    pub fn connect_tcp(
        addr: std::net::SocketAddr,
        id: ClientId,
        n: usize,
        key_seed: &[u8],
        config: &HandleConfig,
    ) -> std::io::Result<Self> {
        let conn = faust_net::tcp::connect(addr, id)?;
        Ok(Self::new(id, n, key_seed, config, Box::new(conn)))
    }

    /// Wraps an existing [`SessionCore`] (e.g. resumed from a previous
    /// server incarnation) around a transport. `clock_base` is the
    /// protocol time the session has already lived through — time never
    /// rewinds for a resumed session.
    pub fn from_core(
        core: SessionCore,
        tick_interval: Duration,
        clock_base: u64,
        transport: Box<dyn ClientTransport>,
    ) -> Self {
        let now = Instant::now();
        FaustHandle {
            core,
            transport: Some(transport),
            offline: None,
            epoch: now,
            clock_base,
            tick_interval,
            next_tick: now + tick_interval,
            outbox: VecDeque::new(),
        }
    }

    /// Attaches an offline client-to-client link (builder style).
    #[must_use]
    pub fn with_offline(mut self, link: OfflineLink) -> Self {
        self.offline = Some(link);
        self
    }

    /// This session's client id.
    pub fn id(&self) -> ClientId {
        self.core.id()
    }

    /// The session's protocol clock, in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.clock_base + self.epoch.elapsed().as_millis() as u64
    }

    /// The violation that halted this session, if any.
    pub fn failure(&self) -> Option<&FailReason> {
        self.core.failure()
    }

    /// The current stability cut `W_i`.
    pub fn stability_cut(&self) -> StabilityCut {
        self.core.stability_cut()
    }

    /// Submitted-but-uncompleted user operations.
    pub fn backlog(&self) -> usize {
        self.core.backlog()
    }

    /// Whether the transport is currently attached and alive.
    pub fn is_connected(&self) -> bool {
        self.transport.is_some()
    }

    /// Submits a write of this client's register. Non-blocking: the
    /// operation pipelines behind any in-flight ones.
    pub fn write(&mut self, value: Value) -> OpTicket {
        let now = self.now_ms();
        let (ticket, out) = self.core.submit(UserOp::Write(value), now);
        self.dispatch(out);
        ticket
    }

    /// Submits a read of `register`. Non-blocking.
    pub fn read(&mut self, register: ClientId) -> OpTicket {
        let now = self.now_ms();
        let (ticket, out) = self.core.submit(UserOp::Read(register), now);
        self.dispatch(out);
        ticket
    }

    /// Drives the session without blocking — delivers whatever input has
    /// already arrived, runs any due protocol tick — and returns the
    /// events produced since the last drain, each stamped with the
    /// protocol time (ms) at which it occurred.
    pub fn poll(&mut self) -> Vec<(u64, Event)> {
        self.step(Duration::ZERO);
        self.core.take_events()
    }

    /// Blocks until `ticket` completes, the session halts, the transport
    /// fails, or `timeout` elapses. Events produced while waiting stay
    /// queued for [`FaustHandle::poll`] / [`FaustHandle::run_for`]
    /// consumers; the returned completion itself is consumed.
    ///
    /// # Errors
    ///
    /// [`WaitError::Timeout`], [`WaitError::Disconnected`], or
    /// [`WaitError::Violation`] with the detected reason.
    pub fn wait(
        &mut self,
        ticket: OpTicket,
        timeout: Duration,
    ) -> Result<FaustCompletion, WaitError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(done) = self.core.take_result(ticket) {
                return Ok(done);
            }
            if let Some(reason) = self.core.failure() {
                return Err(WaitError::Violation(reason.clone()));
            }
            if self.transport.is_none() {
                return Err(WaitError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(WaitError::Timeout);
            }
            self.step(deadline - now);
        }
    }

    /// Runs the event loop for `duration` (ticking, probing, delivering)
    /// and returns every event produced.
    pub fn run_for(&mut self, duration: Duration) -> Vec<(u64, Event)> {
        let deadline = Instant::now() + duration;
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.step(deadline - now);
        }
        self.core.take_events()
    }

    /// Resumes the session over a new connection after a transport
    /// failure (or an explicit [`FaustHandle::disconnect`]): messages
    /// that never made it onto the old wire are sent first.
    pub fn reconnect(&mut self, transport: Box<dyn ClientTransport>) {
        self.transport = Some(transport);
        self.flush_outbox();
    }

    /// Detaches from the server (the connection closes; a `faust serve`
    /// process counts this client as departed). Session state is kept —
    /// [`FaustHandle::reconnect`] resumes it. If the session is idle in
    /// piggyback commit mode, the final COMMIT is sent first so the
    /// server can garbage-collect.
    pub fn disconnect(&mut self) {
        if let Some(commit) = self.core.flush_commit() {
            self.outbox.push_back(commit);
        }
        self.flush_outbox();
        self.transport = None;
    }

    /// Tears the session down, returning the [`SessionCore`] (protocol
    /// state, queued events) and the protocol clock for a later
    /// [`FaustHandle::from_core`] resumption.
    pub fn into_core(mut self) -> (SessionCore, u64) {
        let clock = self.now_ms();
        self.disconnect();
        (self.core, clock)
    }

    /// One scheduling step: deliver available input, run due ticks, wait
    /// at most `budget` for something to happen.
    fn step(&mut self, budget: Duration) {
        self.drain_offline();
        self.run_due_tick();
        // Wait for server traffic, but never past the next tick.
        let until_tick = self.next_tick.saturating_duration_since(Instant::now());
        let wait = budget.min(until_tick);
        match &self.transport {
            Some(transport) => match transport.recv_timeout(wait) {
                Ok(Some(msg)) => {
                    self.deliver(msg);
                    // Greedily drain whatever else already arrived (a
                    // group-commit flush releases replies in bursts).
                    while let Some(transport) = &self.transport {
                        match transport.recv_timeout(Duration::ZERO) {
                            Ok(Some(msg)) => self.deliver(msg),
                            Ok(None) => break,
                            Err(TransportClosed) => {
                                self.mark_disconnected();
                                break;
                            }
                        }
                    }
                }
                Ok(None) => {}
                Err(TransportClosed) => self.mark_disconnected(),
            },
            None => {
                // Disconnected: there is nothing to wait on but time.
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
            }
        }
        self.drain_offline();
        self.run_due_tick();
    }

    fn run_due_tick(&mut self) {
        if Instant::now() < self.next_tick {
            return;
        }
        let now = self.now_ms();
        let out = self.core.tick(now);
        self.dispatch(out);
        self.next_tick = Instant::now() + self.tick_interval;
    }

    fn deliver(&mut self, msg: UstorMsg) {
        let UstorMsg::Reply(reply) = msg else {
            return; // the engine sends only replies
        };
        let now = self.now_ms();
        let out = self.core.handle_reply(reply, now);
        self.dispatch(out);
    }

    fn drain_offline(&mut self) {
        loop {
            let Some(link) = &self.offline else { return };
            let Some(msg) = link.try_recv() else { return };
            let now = self.now_ms();
            let out = self.core.handle_offline(msg, now);
            self.dispatch(out);
        }
    }

    fn dispatch(&mut self, out: SessionOutput) {
        self.outbox.extend(out.to_server);
        self.flush_outbox();
        if let Some(link) = &self.offline {
            for (to, msg) in out.offline {
                link.send(to, msg);
            }
        }
    }

    fn flush_outbox(&mut self) {
        while let Some(msg) = self.outbox.front() {
            let Some(transport) = &self.transport else {
                return;
            };
            if transport.send(msg).is_err() {
                self.mark_disconnected();
                return;
            }
            self.outbox.pop_front();
        }
    }

    fn mark_disconnected(&mut self) {
        if self.transport.take().is_some() {
            let now = self.now_ms();
            self.core.note_disconnected(now);
        }
    }
}

impl std::fmt::Debug for FaustHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaustHandle")
            .field("id", &self.id())
            .field("connected", &self.is_connected())
            .field("backlog", &self.backlog())
            .field("clock_ms", &self.now_ms())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::spawn_engine;
    use faust_net::channel;
    use faust_ustor::UstorServer;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    fn quiet_config(pipeline: usize) -> HandleConfig {
        HandleConfig {
            faust: FaustConfig {
                probe_period: 1_000_000,
                dummy_reads: false,
                pipeline,
                ..FaustConfig::default()
            },
            tick_interval: Duration::from_millis(2),
            ..HandleConfig::default()
        }
    }

    #[test]
    fn pipelined_tickets_complete_in_order_with_events() {
        let n = 1;
        let (transport, mut conns) = channel::pair(n);
        let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
        let mut h = FaustHandle::new(
            c(0),
            n,
            b"handle-test",
            &quiet_config(3),
            Box::new(conns.remove(0)),
        );
        let tickets: Vec<OpTicket> = (0..5).map(|k| h.write(Value::unique(0, k))).collect();
        // Waiting on the *last* ticket waits out the whole FIFO.
        let done = h
            .wait(tickets[4], Duration::from_secs(5))
            .expect("completes");
        assert_eq!(done.timestamp, 5);
        // The event stream saw every completion, in ticket order, plus
        // self-stability cuts.
        let events = h.poll();
        let completed: Vec<u64> = events
            .iter()
            .filter_map(|(_, e)| match e {
                Event::Completed { ticket, .. } => Some(ticket.index()),
                _ => None,
            })
            .collect();
        assert_eq!(completed, vec![0, 1, 2, 3, 4]);
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, Event::Stable { .. })));
        assert!(h.failure().is_none());
        h.disconnect();
        engine.join().unwrap();
    }

    #[test]
    fn wait_on_an_early_ticket_returns_its_own_completion() {
        let n = 1;
        let (transport, mut conns) = channel::pair(n);
        let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
        let mut h = FaustHandle::new(
            c(0),
            n,
            b"handle-early",
            &quiet_config(2),
            Box::new(conns.remove(0)),
        );
        let t0 = h.write(Value::from("first"));
        let t1 = h.read(c(0));
        let d0 = h.wait(t0, Duration::from_secs(5)).unwrap();
        assert_eq!(d0.timestamp, 1);
        let d1 = h.wait(t1, Duration::from_secs(5)).unwrap();
        assert_eq!(d1.read_value, Some(Some(Value::from("first"))));
        h.disconnect();
        engine.join().unwrap();
    }

    #[test]
    fn server_hangup_surfaces_as_disconnected_event() {
        let n = 1;
        let (transport, mut conns) = channel::pair(n);
        // No engine: dropping the server half closes the transport.
        drop(transport);
        let mut h = FaustHandle::new(
            c(0),
            n,
            b"handle-drop",
            &quiet_config(1),
            Box::new(conns.remove(0)),
        );
        let t0 = h.write(Value::from("lost"));
        assert_eq!(
            h.wait(t0, Duration::from_millis(200)),
            Err(WaitError::Disconnected)
        );
        let events = h.poll();
        assert_eq!(
            events
                .iter()
                .filter(|(_, e)| matches!(e, Event::Disconnected))
                .count(),
            1,
            "exactly one Disconnected event: {events:?}"
        );
        // The unsent message is retained for a reconnect.
        assert!(!h.is_connected());
        assert_eq!(h.backlog(), 1);
    }

    #[test]
    fn reconnect_resumes_with_retained_messages() {
        let n = 1;
        // First transport dies before the submit can be delivered.
        let (transport, mut conns) = channel::pair(n);
        drop(transport);
        let mut h = FaustHandle::new(
            c(0),
            n,
            b"handle-reconnect",
            &quiet_config(1),
            Box::new(conns.remove(0)),
        );
        let t0 = h.write(Value::from("retry"));
        assert_eq!(
            h.wait(t0, Duration::from_millis(100)),
            Err(WaitError::Disconnected)
        );
        // A fresh incarnation appears; the handle resumes and the
        // retained SUBMIT completes.
        let (transport, mut conns) = channel::pair(n);
        let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
        h.reconnect(Box::new(conns.remove(0)));
        let done = h.wait(t0, Duration::from_secs(5)).expect("resumed");
        assert_eq!(done.timestamp, 1);
        h.disconnect();
        engine.join().unwrap();
    }
}
