//! The `FAUSTHIS` on-disk session-history container.
//!
//! A session history is everything an auditor needs to re-derive the
//! server's behaviour offline: the base state the log starts from, the
//! accepted protocol messages in schedule order (the WAL records), the
//! final commit chain the exporter claims, and optionally the client-side
//! view of the run. The container is *self-authenticating at the
//! integrity level* — every byte is covered by a checksum, so accidental
//! corruption is reported with the exact failing offset — while
//! *authenticity* rests on the protocol signatures carried inside the
//! records (see `docs/audit.md` for the threat model: the container
//! itself is untrusted input).
//!
//! ## Layout
//!
//! ```text
//! "FAUSTHIS" | version: u32
//! manifest_len: u32 | sha256(manifest) | manifest
//! [base-state section]      (present iff manifest says so)
//! [records section]
//! [client-history section]  (present iff manifest says so)
//! ```
//!
//! The manifest describes each section by length and SHA-256 digest and
//! carries the claimed final commit chain. The records section reuses the
//! WAL's per-record framing (`len | sha256(payload) | payload`, payload =
//! `seq ‖ LogRecord`) so a flipped bit in one record is pinned to that
//! record's offset rather than to the section as a whole.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use faust_crypto::{sha256, Digest, SigScheme, Signature};
use faust_store::LogRecord;
use faust_types::{History, SignedVersion, Wire, WireError};
use faust_ustor::ServerState;

/// Magic bytes opening every history file.
pub const HISTORY_MAGIC: &[u8; 8] = b"FAUSTHIS";
/// Current container version.
pub const HISTORY_VERSION: u32 = 1;
/// Upper bound on a single framed record, matching the WAL's bound.
const MAX_RECORD_LEN: u32 = 1 << 26;
/// Upper bound on the manifest frame.
const MAX_MANIFEST_LEN: u32 = 1 << 26;
/// Bytes of framing around each record payload: `len: u32` + digest.
const RECORD_OVERHEAD: usize = 4 + 32;

/// Which section of the container an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// The Wire-encoded [`ServerState`] the log starts from.
    BaseState,
    /// The framed [`LogRecord`] stream.
    Records,
    /// The Wire-encoded client-side [`History`].
    ClientHistory,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Section::BaseState => write!(f, "base-state"),
            Section::Records => write!(f, "records"),
            Section::ClientHistory => write!(f, "client-history"),
        }
    }
}

/// Typed rejection of a malformed history file. Every variant that can
/// point at bytes carries the absolute file offset where parsing failed,
/// so `faust audit` can report exactly which region is damaged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryFileError {
    /// The file is shorter than the fixed preamble.
    TruncatedPreamble {
        /// Actual file length.
        len: usize,
    },
    /// The first eight bytes are not `FAUSTHIS`.
    BadMagic,
    /// The container version is newer than this reader.
    UnsupportedVersion {
        /// Version found in the preamble.
        version: u32,
    },
    /// The file ends inside the manifest frame.
    ManifestTruncated {
        /// Offset at which more bytes were expected.
        offset: usize,
    },
    /// The manifest frame declares an implausibly large length.
    ImplausibleManifestLength {
        /// Declared length.
        len: u32,
    },
    /// The manifest bytes do not match their recorded digest.
    ManifestChecksum {
        /// Offset of the manifest bytes.
        offset: usize,
    },
    /// The manifest bytes do not decode as a manifest.
    ManifestCorrupt {
        /// Underlying decode error.
        error: WireError,
    },
    /// A cross-field size constraint inside the manifest is violated
    /// (e.g. the claimed chain does not have one entry per client).
    DimensionMismatch {
        /// Which constraint failed.
        what: &'static str,
        /// Expected count.
        expected: u64,
        /// Count found.
        found: u64,
    },
    /// The file ends before a section the manifest describes.
    SectionTruncated {
        /// The truncated section.
        section: Section,
        /// Offset at which more bytes were expected.
        offset: usize,
    },
    /// A section's bytes do not match the digest in the manifest.
    SectionChecksum {
        /// The damaged section.
        section: Section,
        /// Absolute offset of the section's first byte.
        offset: usize,
    },
    /// The records section ends inside a record frame.
    RecordTorn {
        /// Index of the torn record within the section.
        index: u64,
        /// Absolute offset of the record's frame.
        offset: usize,
    },
    /// A record frame declares an implausibly large length.
    ImplausibleRecordLength {
        /// Index of the record within the section.
        index: u64,
        /// Absolute offset of the record's frame.
        offset: usize,
        /// Declared payload length.
        len: u32,
    },
    /// A record payload does not match its per-record checksum.
    RecordChecksum {
        /// Index of the damaged record within the section.
        index: u64,
        /// Absolute offset of the record's frame.
        offset: usize,
    },
    /// A record payload does not decode as `seq ‖ LogRecord`.
    RecordCorrupt {
        /// Index of the undecodable record within the section.
        index: u64,
        /// Absolute offset of the record's frame.
        offset: usize,
        /// Underlying decode error.
        error: WireError,
    },
    /// Record sequence numbers are not consecutive from `base_seq`.
    RecordSequence {
        /// Index of the out-of-order record within the section.
        index: u64,
        /// Absolute offset of the record's frame.
        offset: usize,
        /// Sequence number expected at this position.
        expected: u64,
        /// Sequence number found.
        found: u64,
    },
    /// The records section holds a different number of records than the
    /// manifest declares.
    RecordCountMismatch {
        /// Count declared by the manifest.
        expected: u64,
        /// Records actually present.
        found: u64,
    },
    /// The base-state section does not decode as a [`ServerState`].
    StateCorrupt {
        /// Underlying decode error.
        error: WireError,
    },
    /// The client-history section does not decode as a [`History`].
    HistoryCorrupt {
        /// Underlying decode error.
        error: WireError,
    },
    /// The manifest names an unknown signature scheme.
    BadScheme {
        /// The unrecognised scheme tag.
        tag: u8,
    },
    /// Bytes remain after the last declared section.
    TrailingBytes {
        /// Offset of the first unexpected byte.
        offset: usize,
    },
}

impl fmt::Display for HistoryFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryFileError::TruncatedPreamble { len } => {
                write!(f, "file too short for the FAUSTHIS preamble ({len} bytes)")
            }
            HistoryFileError::BadMagic => write!(f, "not a FAUSTHIS file (bad magic)"),
            HistoryFileError::UnsupportedVersion { version } => {
                write!(f, "unsupported container version {version}")
            }
            HistoryFileError::ManifestTruncated { offset } => {
                write!(f, "file ends inside the manifest (offset {offset})")
            }
            HistoryFileError::ImplausibleManifestLength { len } => {
                write!(f, "implausible manifest length {len}")
            }
            HistoryFileError::ManifestChecksum { offset } => {
                write!(
                    f,
                    "manifest checksum mismatch (manifest at offset {offset})"
                )
            }
            HistoryFileError::ManifestCorrupt { error } => {
                write!(f, "manifest does not decode: {error:?}")
            }
            HistoryFileError::DimensionMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what}: expected {expected}, found {found}"),
            HistoryFileError::SectionTruncated { section, offset } => {
                write!(
                    f,
                    "file ends inside the {section} section (offset {offset})"
                )
            }
            HistoryFileError::SectionChecksum { section, offset } => write!(
                f,
                "{section} section checksum mismatch (section at offset {offset})"
            ),
            HistoryFileError::RecordTorn { index, offset } => {
                write!(f, "record {index} torn at offset {offset}")
            }
            HistoryFileError::ImplausibleRecordLength { index, offset, len } => write!(
                f,
                "record {index} at offset {offset} declares implausible length {len}"
            ),
            HistoryFileError::RecordChecksum { index, offset } => {
                write!(f, "record {index} checksum mismatch at offset {offset}")
            }
            HistoryFileError::RecordCorrupt {
                index,
                offset,
                error,
            } => write!(
                f,
                "record {index} at offset {offset} does not decode: {error:?}"
            ),
            HistoryFileError::RecordSequence {
                index,
                offset,
                expected,
                found,
            } => write!(
                f,
                "record {index} at offset {offset} has sequence {found}, expected {expected}"
            ),
            HistoryFileError::RecordCountMismatch { expected, found } => write!(
                f,
                "manifest declares {expected} records but the section holds {found}"
            ),
            HistoryFileError::StateCorrupt { error } => {
                write!(f, "base state does not decode: {error:?}")
            }
            HistoryFileError::HistoryCorrupt { error } => {
                write!(f, "client history does not decode: {error:?}")
            }
            HistoryFileError::BadScheme { tag } => {
                write!(f, "unknown signature scheme tag {tag}")
            }
            HistoryFileError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after the last section (offset {offset})")
            }
        }
    }
}

impl std::error::Error for HistoryFileError {}

/// Length + digest of one section, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SectionDesc {
    len: u32,
    digest: Digest,
}

impl Wire for SectionDesc {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.len.encode_into(out);
        self.digest.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SectionDesc {
            len: u32::decode_from(input)?,
            digest: Digest::decode_from(input)?,
        })
    }
}

/// The checksummed manifest binding the sections together.
struct Manifest {
    n: u32,
    scheme: u8,
    base_seq: u64,
    record_count: u64,
    base_state: Option<SectionDesc>,
    records: SectionDesc,
    client_history: Option<SectionDesc>,
    claimed_chain: Vec<SignedVersion>,
    claimed_proofs: Vec<Option<Signature>>,
}

impl Wire for Manifest {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.n.encode_into(out);
        self.scheme.encode_into(out);
        self.base_seq.encode_into(out);
        self.record_count.encode_into(out);
        self.base_state.encode_into(out);
        self.records.encode_into(out);
        self.client_history.encode_into(out);
        self.claimed_chain.encode_into(out);
        self.claimed_proofs.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Manifest {
            n: u32::decode_from(input)?,
            scheme: u8::decode_from(input)?,
            base_seq: u64::decode_from(input)?,
            record_count: u64::decode_from(input)?,
            base_state: Option::<SectionDesc>::decode_from(input)?,
            records: SectionDesc::decode_from(input)?,
            client_history: Option::<SectionDesc>::decode_from(input)?,
            claimed_chain: Vec::<SignedVersion>::decode_from(input)?,
            claimed_proofs: Vec::<Option<Signature>>::decode_from(input)?,
        })
    }
}

fn scheme_tag(scheme: SigScheme) -> u8 {
    match scheme {
        SigScheme::Hmac => 0,
        SigScheme::Ed25519 => 1,
    }
}

fn scheme_from_tag(tag: u8) -> Option<SigScheme> {
    match tag {
        0 => Some(SigScheme::Hmac),
        1 => Some(SigScheme::Ed25519),
        _ => None,
    }
}

/// A parsed session history: one server session's worth of evidence,
/// ready for [`crate::audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionHistory {
    /// Number of clients the session is for.
    pub n: usize,
    /// Signature scheme the session's keys use.
    pub scheme: SigScheme,
    /// Sequence number of the first record; records before it are folded
    /// into [`SessionHistory::base_state`].
    pub base_seq: u64,
    /// Server state the records apply on top of (`None` = fresh server).
    pub base_state: Option<ServerState>,
    /// The accepted protocol messages in schedule order, with their
    /// global sequence numbers (consecutive from `base_seq`).
    pub records: Vec<(u64, LogRecord)>,
    /// The client-side view of the run, if the exporter had one.
    pub client_history: Option<History>,
    /// The exporter's claim of the final `SVER` vector; the auditor
    /// replays the records and rejects the file if they disagree.
    pub claimed_chain: Vec<SignedVersion>,
    /// The exporter's claim of the final PROOF-signature vector.
    pub claimed_proofs: Vec<Option<Signature>>,
}

impl SessionHistory {
    /// Serializes the history into the `FAUSTHIS` container format.
    pub fn encode(&self) -> Vec<u8> {
        let base_bytes = self.base_state.as_ref().map(|state| {
            let mut out = Vec::new();
            faust_store::codec::encode_state(state, &mut out);
            out
        });
        let mut records_bytes = Vec::new();
        for (seq, record) in &self.records {
            let mut payload = Vec::with_capacity(8 + record.encoded_len());
            seq.encode_into(&mut payload);
            record.encode_into(&mut payload);
            (payload.len() as u32).encode_into(&mut records_bytes);
            sha256(&payload).encode_into(&mut records_bytes);
            records_bytes.extend_from_slice(&payload);
        }
        let history_bytes = self.client_history.as_ref().map(|history| history.encode());

        let describe = |bytes: &Vec<u8>| SectionDesc {
            len: bytes.len() as u32,
            digest: sha256(bytes),
        };
        let manifest = Manifest {
            n: self.n as u32,
            scheme: scheme_tag(self.scheme),
            base_seq: self.base_seq,
            record_count: self.records.len() as u64,
            base_state: base_bytes.as_ref().map(describe),
            records: describe(&records_bytes),
            client_history: history_bytes.as_ref().map(describe),
            claimed_chain: self.claimed_chain.clone(),
            claimed_proofs: self.claimed_proofs.clone(),
        };
        let manifest_bytes = manifest.encode();

        let mut out = Vec::new();
        out.extend_from_slice(HISTORY_MAGIC);
        HISTORY_VERSION.encode_into(&mut out);
        (manifest_bytes.len() as u32).encode_into(&mut out);
        sha256(&manifest_bytes).encode_into(&mut out);
        out.extend_from_slice(&manifest_bytes);
        if let Some(bytes) = &base_bytes {
            out.extend_from_slice(bytes);
        }
        out.extend_from_slice(&records_bytes);
        if let Some(bytes) = &history_bytes {
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Parses a `FAUSTHIS` container, rejecting any malformed input with
    /// a typed error pointing at the failing offset. Never panics.
    pub fn decode(bytes: &[u8]) -> Result<Self, HistoryFileError> {
        // Preamble.
        if bytes.len() < 12 {
            return Err(HistoryFileError::TruncatedPreamble { len: bytes.len() });
        }
        if &bytes[..8] != HISTORY_MAGIC {
            return Err(HistoryFileError::BadMagic);
        }
        let version = u32::from_be_bytes(bytes[8..12].try_into().expect("fixed length"));
        if version != HISTORY_VERSION {
            return Err(HistoryFileError::UnsupportedVersion { version });
        }

        // Manifest frame.
        let mut pos = 12usize;
        if bytes.len() < pos + 36 {
            return Err(HistoryFileError::ManifestTruncated {
                offset: bytes.len(),
            });
        }
        let manifest_len =
            u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("fixed length"));
        if manifest_len > MAX_MANIFEST_LEN {
            return Err(HistoryFileError::ImplausibleManifestLength { len: manifest_len });
        }
        let manifest_digest = &bytes[pos + 4..pos + 36];
        pos += 36;
        let manifest_end = pos
            .checked_add(manifest_len as usize)
            .filter(|&end| end <= bytes.len())
            .ok_or(HistoryFileError::ManifestTruncated {
                offset: bytes.len(),
            })?;
        let manifest_bytes = &bytes[pos..manifest_end];
        if sha256(manifest_bytes).as_bytes() != manifest_digest {
            return Err(HistoryFileError::ManifestChecksum { offset: pos });
        }
        let manifest = {
            let mut input = manifest_bytes;
            let manifest = Manifest::decode_from(&mut input)
                .map_err(|error| HistoryFileError::ManifestCorrupt { error })?;
            if !input.is_empty() {
                return Err(HistoryFileError::ManifestCorrupt {
                    error: WireError::TrailingBytes(0),
                });
            }
            manifest
        };
        pos = manifest_end;

        let scheme = scheme_from_tag(manifest.scheme).ok_or(HistoryFileError::BadScheme {
            tag: manifest.scheme,
        })?;
        let n = manifest.n as u64;
        if manifest.claimed_chain.len() as u64 != n {
            return Err(HistoryFileError::DimensionMismatch {
                what: "claimed chain entries per client",
                expected: n,
                found: manifest.claimed_chain.len() as u64,
            });
        }
        if manifest.claimed_proofs.len() as u64 != n {
            return Err(HistoryFileError::DimensionMismatch {
                what: "claimed proof entries per client",
                expected: n,
                found: manifest.claimed_proofs.len() as u64,
            });
        }

        // Sections: slice out by declared length, verify digests.
        let mut take_section =
            |desc: &SectionDesc, section: Section| -> Result<(usize, &[u8]), HistoryFileError> {
                let start = pos;
                let end = start
                    .checked_add(desc.len as usize)
                    .filter(|&end| end <= bytes.len())
                    .ok_or(HistoryFileError::SectionTruncated {
                        section,
                        offset: bytes.len(),
                    })?;
                pos = end;
                Ok((start, &bytes[start..end]))
            };
        let base_slice = match &manifest.base_state {
            Some(desc) => Some((desc, take_section(desc, Section::BaseState)?)),
            None => None,
        };
        let records_slice = (
            &manifest.records,
            take_section(&manifest.records, Section::Records)?,
        );
        let history_slice = match &manifest.client_history {
            Some(desc) => Some((desc, take_section(desc, Section::ClientHistory)?)),
            None => None,
        };
        if pos != bytes.len() {
            return Err(HistoryFileError::TrailingBytes { offset: pos });
        }

        // Base state.
        let base_state = match base_slice {
            Some((desc, (offset, slice))) => {
                if sha256(slice) != desc.digest {
                    return Err(HistoryFileError::SectionChecksum {
                        section: Section::BaseState,
                        offset,
                    });
                }
                let mut input = slice;
                let state = faust_store::codec::decode_state(&mut input)
                    .map_err(|error| HistoryFileError::StateCorrupt { error })?;
                if !input.is_empty() {
                    return Err(HistoryFileError::StateCorrupt {
                        error: WireError::TrailingBytes(0),
                    });
                }
                if state.mem.len() as u64 != n {
                    return Err(HistoryFileError::DimensionMismatch {
                        what: "base state registers per client",
                        expected: n,
                        found: state.mem.len() as u64,
                    });
                }
                Some(state)
            }
            None => None,
        };

        // Records: per-record framing first, so damage pins to one
        // record; the section digest is checked afterwards as a belt
        // against framing-consistent corruption.
        let (records_offset, records_bytes) = records_slice.1;
        let mut records = Vec::new();
        let mut rec_pos = 0usize;
        let mut index = 0u64;
        while rec_pos < records_bytes.len() {
            let offset = records_offset + rec_pos;
            if records_bytes.len() - rec_pos < RECORD_OVERHEAD {
                return Err(HistoryFileError::RecordTorn { index, offset });
            }
            let len = u32::from_be_bytes(
                records_bytes[rec_pos..rec_pos + 4]
                    .try_into()
                    .expect("fixed length"),
            );
            if len > MAX_RECORD_LEN {
                return Err(HistoryFileError::ImplausibleRecordLength { index, offset, len });
            }
            let payload_start = rec_pos + RECORD_OVERHEAD;
            let payload_end = payload_start
                .checked_add(len as usize)
                .filter(|&end| end <= records_bytes.len())
                .ok_or(HistoryFileError::RecordTorn { index, offset })?;
            let digest = &records_bytes[rec_pos + 4..rec_pos + 36];
            let payload = &records_bytes[payload_start..payload_end];
            if sha256(payload).as_bytes() != digest {
                return Err(HistoryFileError::RecordChecksum { index, offset });
            }
            let mut input = payload;
            let seq =
                u64::decode_from(&mut input).map_err(|error| HistoryFileError::RecordCorrupt {
                    index,
                    offset,
                    error,
                })?;
            let record = LogRecord::decode_from(&mut input).map_err(|error| {
                HistoryFileError::RecordCorrupt {
                    index,
                    offset,
                    error,
                }
            })?;
            if !input.is_empty() {
                return Err(HistoryFileError::RecordCorrupt {
                    index,
                    offset,
                    error: WireError::TrailingBytes(0),
                });
            }
            let expected = manifest.base_seq + index;
            if seq != expected {
                return Err(HistoryFileError::RecordSequence {
                    index,
                    offset,
                    expected,
                    found: seq,
                });
            }
            records.push((seq, record));
            rec_pos = payload_end;
            index += 1;
        }
        if index != manifest.record_count {
            return Err(HistoryFileError::RecordCountMismatch {
                expected: manifest.record_count,
                found: index,
            });
        }
        if sha256(records_bytes) != manifest.records.digest {
            return Err(HistoryFileError::SectionChecksum {
                section: Section::Records,
                offset: records_offset,
            });
        }

        // Client history.
        let client_history = match history_slice {
            Some((desc, (offset, slice))) => {
                if sha256(slice) != desc.digest {
                    return Err(HistoryFileError::SectionChecksum {
                        section: Section::ClientHistory,
                        offset,
                    });
                }
                let mut input = slice;
                let history = History::decode_from(&mut input)
                    .map_err(|error| HistoryFileError::HistoryCorrupt { error })?;
                if !input.is_empty() {
                    return Err(HistoryFileError::HistoryCorrupt {
                        error: WireError::TrailingBytes(0),
                    });
                }
                Some(history)
            }
            None => None,
        };

        Ok(SessionHistory {
            n: manifest.n as usize,
            scheme,
            base_seq: manifest.base_seq,
            base_state,
            records,
            client_history,
            claimed_chain: manifest.claimed_chain,
            claimed_proofs: manifest.claimed_proofs,
        })
    }

    /// Writes the encoded container to `path` atomically (temp file in
    /// the same directory, then rename).
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let bytes = self.encode();
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)
    }

    /// Reads and parses a container from `path`.
    pub fn read_from(path: &Path) -> Result<Self, HistoryReadError> {
        let bytes = fs::read(path).map_err(HistoryReadError::Io)?;
        SessionHistory::decode(&bytes).map_err(HistoryReadError::Format)
    }
}

/// Error reading a history file from disk.
#[derive(Debug)]
pub enum HistoryReadError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The bytes are not a valid container.
    Format(HistoryFileError),
}

impl fmt::Display for HistoryReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryReadError::Io(err) => write!(f, "cannot read history file: {err}"),
            HistoryReadError::Format(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for HistoryReadError {}
