//! Quickstart: three clients collaborate through an untrusted server.
//!
//! Spins up the full FAUST stack in deterministic simulation — clients,
//! server, FIFO links, offline channel — runs a few reads and writes, and
//! prints the completions and stability notifications each client
//! observes.
//!
//! Run with: `cargo run --example quickstart`

use faust::core::{FaustConfig, FaustDriver, FaustDriverConfig, FaustWorkloadOp, Notification};
use faust::types::{ClientId, Value};
use faust::ustor::UstorServer;

fn main() {
    let n = 3;
    let mut driver = FaustDriver::new(
        n,
        Box::new(UstorServer::new(n)),
        FaustDriverConfig {
            faust: FaustConfig {
                // Quiet variant for readable output: stability spreads
                // through offline probes alone (no background dummy
                // reads). See `collaboration.rs` for the full mechanism.
                probe_period: 150,
                dummy_reads: false,
                commit_mode: faust::ustor::CommitMode::Immediate,
            },
            ..FaustDriverConfig::default()
        },
        b"quickstart",
    );

    // Client 0 writes two document revisions; the others read them.
    driver.push_ops(
        ClientId::new(0),
        vec![
            FaustWorkloadOp::Write(Value::from("draft: hello")),
            FaustWorkloadOp::Write(Value::from("final: hello, world")),
        ],
    );
    driver.push_ops(
        ClientId::new(1),
        vec![
            FaustWorkloadOp::Pause(40),
            FaustWorkloadOp::Read(ClientId::new(0)),
        ],
    );
    driver.push_ops(
        ClientId::new(2),
        vec![
            FaustWorkloadOp::Pause(60),
            FaustWorkloadOp::Read(ClientId::new(0)),
        ],
    );

    let result = driver.run_until(1_500);

    for i in 0..n {
        let id = ClientId::new(i as u32);
        println!("── client C{i} ──");
        for (time, note) in &result.notifications[id.index()] {
            match note {
                Notification::Completed(c) => {
                    let what = match &c.read_value {
                        Some(Some(v)) => format!("read X{} -> {v}", c.target.index()),
                        Some(None) => format!("read X{} -> ⊥", c.target.index()),
                        None => format!("write X{}", c.target.index()),
                    };
                    println!("  t={time:>5}  op (timestamp {}): {what}", c.timestamp);
                }
                Notification::Stable(cut) => {
                    println!("  t={time:>5}  stable{cut}");
                }
                Notification::Failed(reason) => {
                    println!("  t={time:>5}  FAIL: {reason}");
                }
            }
        }
    }

    assert!(result.failures.is_empty(), "correct server: no failures");
    println!("\nserver is correct: no failure notifications, as guaranteed.");
    println!(
        "traffic: {} link messages ({} bytes), {} offline messages",
        result.metrics.link_messages_sent,
        result.metrics.link_bytes_sent,
        result.metrics.offline_messages_sent,
    );
}
