//! Experiment harness for the FAUST reproduction.
//!
//! Each public function regenerates one experiment of DESIGN.md's index
//! (E5–E9): it produces the data series whose *shape* the paper asserts —
//! one round per operation, `O(n)` bits of overhead, wait-freedom vs.
//! blocking, eventual failure detection, eventual stability. The
//! `experiments` binary prints them as tables; the Criterion benches in
//! `benches/` measure the raw computational costs (E10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use faust_baseline::{LsDriver, LsWorkloadOp};
use faust_core::{FaustConfig, FaustDriver, FaustDriverConfig, FaustWorkloadOp};
use faust_crypto::sig::KeySet;
use faust_sim::{DelayModel, SimConfig};
use faust_types::{ClientId, Value, Wire};
use faust_ustor::adversary::SplitBrainServer;
use faust_ustor::{Driver, Server, UstorClient, UstorServer, WorkloadOp};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

/// Builds `n` USTOR clients and a correct server with every client having
/// committed one write (steady state: all proof signatures present).
pub fn steady_state(n: usize, value_len: usize) -> (UstorServer, Vec<UstorClient>) {
    let keys = KeySet::generate(n, b"bench-steady");
    let mut server = UstorServer::new(n);
    let mut clients: Vec<UstorClient> = (0..n)
        .map(|i| {
            UstorClient::new(
                c(i as u32),
                n,
                keys.keypair(i as u32).expect("generated").clone(),
                keys.registry(),
            )
        })
        .collect();
    for i in 0..n {
        let value = Value::new(vec![i as u8; value_len]);
        let submit = clients[i].begin_write(value).expect("idle");
        let (_, reply) = server.on_submit(c(i as u32), submit).pop().expect("reply");
        let (commit, _) = clients[i].handle_reply(reply).expect("correct server");
        server.on_commit(c(i as u32), commit.expect("immediate mode"));
    }
    (server, clients)
}

/// One row of the message-size experiment (E6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeRow {
    /// Number of clients.
    pub n: usize,
    /// SUBMIT size for a write carrying a `value_len`-byte value.
    pub submit_write: usize,
    /// REPLY size for that write.
    pub reply_write: usize,
    /// COMMIT size.
    pub commit: usize,
    /// REPLY size for a read of a register holding `value_len` bytes.
    pub reply_read: usize,
}

/// Measures exact wire sizes of every message type as a function of `n`
/// (experiment E6: the paper claims `O(n)` bits of overhead per request).
pub fn message_size_sweep(ns: &[usize], value_len: usize) -> Vec<SizeRow> {
    ns.iter()
        .map(|&n| {
            let (mut server, mut clients) = steady_state(n, value_len);
            // A steady-state write by C0.
            let submit = clients[0]
                .begin_write(Value::new(vec![0xA5; value_len]))
                .expect("idle");
            let submit_write = submit.encoded_len();
            let (_, reply) = server.on_submit(c(0), submit).pop().expect("reply");
            let reply_write = reply.encoded_len();
            let (commit, _) = clients[0].handle_reply(reply).expect("correct server");
            let commit = commit.expect("immediate mode");
            let commit_len = commit.encoded_len();
            server.on_commit(c(0), commit);
            // A steady-state read by C1 of C0's register.
            let submit = clients[1].begin_read(c(0)).expect("idle");
            let (_, reply) = server.on_submit(c(1), submit).pop().expect("reply");
            let reply_read = reply.encoded_len();
            let (commit, _) = clients[1].handle_reply(reply).expect("correct server");
            server.on_commit(c(1), commit.expect("immediate mode"));
            SizeRow {
                n,
                submit_write,
                reply_write,
                commit: commit_len,
                reply_read,
            }
        })
        .collect()
}

/// One row of the rounds/messages-per-operation experiment (E5).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundsRow {
    /// Number of clients.
    pub n: usize,
    /// Total operations executed.
    pub ops: usize,
    /// Link messages per operation (SUBMIT + REPLY + COMMIT = 3).
    pub messages_per_op: f64,
    /// Synchronous round trips per operation (the paper: exactly 1).
    pub rounds_per_op: f64,
    /// Link bytes per operation.
    pub bytes_per_op: f64,
}

/// Counts messages and rounds per operation through the simulated driver
/// (experiment E5: one round of message exchange per operation).
pub fn rounds_per_op(n: usize, ops_per_client: usize) -> RoundsRow {
    let mut driver = Driver::new(
        n,
        Box::new(UstorServer::new(n)),
        SimConfig::default(),
        b"bench-rounds",
    );
    for (i, w) in faust_ustor::random_workloads(n, ops_per_client, 0.5, 7)
        .into_iter()
        .enumerate()
    {
        driver.push_ops(c(i as u32), w);
    }
    let result = driver.run();
    let ops = result.history.len();
    assert_eq!(result.incomplete_ops, 0);
    let msgs = result.metrics.link_messages_sent as f64;
    RoundsRow {
        n,
        ops,
        messages_per_op: msgs / ops as f64,
        // A round = the client waiting for the server: SUBMIT→REPLY. The
        // COMMIT is asynchronous (the client returns before it is
        // processed), so rounds/op = (messages/op − 1 commit) / 2.
        rounds_per_op: (msgs / ops as f64 - 1.0) / 2.0,
        bytes_per_op: result.metrics.link_bytes_sent as f64 / ops as f64,
    }
}

/// Ablation of the Section 5 commit-piggybacking optimization (E5b).
#[derive(Debug, Clone, PartialEq)]
pub struct CommitModeRow {
    /// Number of clients.
    pub n: usize,
    /// Messages/op with immediate commits.
    pub immediate_msgs_per_op: f64,
    /// Bytes/op with immediate commits.
    pub immediate_bytes_per_op: f64,
    /// Messages/op with piggybacked commits.
    pub piggyback_msgs_per_op: f64,
    /// Bytes/op with piggybacked commits.
    pub piggyback_bytes_per_op: f64,
}

/// Compares immediate vs. piggybacked COMMIT transmission on identical
/// workloads (the paper: "this message can be eliminated by piggybacking
/// its contents on the SUBMIT message of the next operation").
pub fn commit_mode_ablation(ns: &[usize], ops_per_client: usize) -> Vec<CommitModeRow> {
    ns.iter()
        .map(|&n| {
            let run = |mode| {
                let mut driver = Driver::new(
                    n,
                    Box::new(UstorServer::new(n)),
                    SimConfig::default(),
                    b"bench-ablation",
                );
                driver.set_commit_mode(mode);
                for (i, w) in faust_ustor::random_workloads(n, ops_per_client, 0.5, 11)
                    .into_iter()
                    .enumerate()
                {
                    driver.push_ops(c(i as u32), w);
                }
                let r = driver.run();
                assert_eq!(r.incomplete_ops, 0);
                assert!(!r.detected_fault());
                let ops = r.history.len() as f64;
                (
                    r.metrics.link_messages_sent as f64 / ops,
                    r.metrics.link_bytes_sent as f64 / ops,
                )
            };
            let (im, ib) = run(faust_ustor::CommitMode::Immediate);
            let (pm, pb) = run(faust_ustor::CommitMode::Piggyback);
            CommitModeRow {
                n,
                immediate_msgs_per_op: im,
                immediate_bytes_per_op: ib,
                piggyback_msgs_per_op: pm,
                piggyback_bytes_per_op: pb,
            }
        })
        .collect()
}

/// One row of the concurrency (wait-freedom) experiment, E7 part 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurrencyRow {
    /// Number of concurrently active clients.
    pub clients: usize,
    /// Virtual completion time of USTOR.
    pub ustor_time: u64,
    /// Virtual completion time of the lock-step baseline.
    pub lockstep_time: u64,
}

/// Sweeps concurrency: every client issues `ops` writes simultaneously;
/// USTOR's completion time stays flat while the lock-step baseline grows
/// linearly (experiment E7).
pub fn concurrency_sweep(ns: &[usize], ops: u64, link_delay: u64) -> Vec<ConcurrencyRow> {
    let sim = |seed| SimConfig {
        seed,
        link_delay: DelayModel::Fixed(link_delay),
        offline_delay: DelayModel::Fixed(50),
    };
    ns.iter()
        .map(|&n| {
            let mut ustor = Driver::new(n, Box::new(UstorServer::new(n)), sim(1), b"bench-cc");
            for i in 0..n {
                for s in 0..ops {
                    ustor.push_op(c(i as u32), WorkloadOp::Write(Value::unique(i as u32, s)));
                }
            }
            let u = ustor.run();
            assert_eq!(u.incomplete_ops, 0);

            let mut lockstep = LsDriver::new(n, sim(1), b"bench-cc");
            for i in 0..n {
                for s in 0..ops {
                    lockstep.push_op(c(i as u32), LsWorkloadOp::Write(Value::unique(i as u32, s)));
                }
            }
            let l = lockstep.run();
            assert_eq!(l.incomplete_ops, 0);
            ConcurrencyRow {
                clients: n,
                ustor_time: u.final_time,
                lockstep_time: l.final_time,
            }
        })
        .collect()
}

/// Outcome of the crash-blocking experiment, E7 part 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashRow {
    /// Total ops attempted by the surviving clients.
    pub survivor_ops: usize,
    /// Ops the survivors completed under USTOR.
    pub ustor_completed: usize,
    /// Ops the survivors completed under the lock-step baseline.
    pub lockstep_completed: usize,
}

/// A client crashes mid-operation; measures how many operations the
/// surviving clients still complete (experiment E7: wait-freedom vs. a
/// wedged lock).
pub fn crash_blocking(n: usize, ops: u64) -> CrashRow {
    let sim = SimConfig {
        seed: 3,
        link_delay: DelayModel::Fixed(10),
        offline_delay: DelayModel::Fixed(50),
    };
    let mut ustor = Driver::new(n, Box::new(UstorServer::new(n)), sim, b"bench-crash");
    ustor.push_ops(
        c(0),
        vec![WorkloadOp::Write(Value::from("w")), WorkloadOp::Crash],
    );
    for i in 1..n {
        for s in 0..ops {
            ustor.push_op(c(i as u32), WorkloadOp::Write(Value::unique(i as u32, s)));
        }
    }
    let u = ustor.run();

    let mut lockstep = LsDriver::new(n, sim, b"bench-crash");
    lockstep.push_op(c(0), LsWorkloadOp::Write(Value::from("w")));
    for i in 1..n {
        for s in 0..ops {
            lockstep.push_op(c(i as u32), LsWorkloadOp::Write(Value::unique(i as u32, s)));
        }
    }
    lockstep.crash_at(c(0), 15);
    let l = lockstep.run();

    CrashRow {
        survivor_ops: (n - 1) * ops as usize,
        ustor_completed: (1..n).map(|i| u.completions[i].len()).sum(),
        lockstep_completed: (1..n).map(|i| l.completions[i].len()).sum(),
    }
}

/// One row of the failure-detection-latency experiment (E8).
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionRow {
    /// The probe period `Δ`.
    pub probe_period: u64,
    /// Virtual time from the fork until the *last* correct client emitted
    /// `fail`, averaged over seeds.
    pub mean_detection_time: f64,
    /// Fraction of runs in which all clients detected the failure.
    pub detection_rate: f64,
}

/// Sweeps the probe period `Δ` against a split-brain server that forks
/// the clients from the start; measures when all clients emit `fail`
/// (experiment E8, Definition 5 property 7).
pub fn detection_latency_sweep(probe_periods: &[u64], seeds: u64, n: usize) -> Vec<DetectionRow> {
    probe_periods
        .iter()
        .map(|&probe_period| {
            let mut total = 0.0;
            let mut detected = 0u64;
            for seed in 0..seeds {
                let groups = vec![
                    (0..n / 2).map(|i| c(i as u32)).collect::<Vec<_>>(),
                    (n / 2..n).map(|i| c(i as u32)).collect::<Vec<_>>(),
                ];
                let server = SplitBrainServer::new(n, groups, 0);
                let mut driver = FaustDriver::new(
                    n,
                    Box::new(server),
                    FaustDriverConfig {
                        sim: SimConfig {
                            seed,
                            link_delay: DelayModel::Uniform(1, 5),
                            offline_delay: DelayModel::Uniform(10, 50),
                        },
                        faust: FaustConfig {
                            probe_period,
                            dummy_reads: true,
                            commit_mode: faust_ustor::CommitMode::Immediate,
                            pipeline: 1,
                        },
                        tick_period: 25,
                    },
                    b"bench-detect",
                );
                for i in 0..n {
                    driver.push_op(
                        c(i as u32),
                        FaustWorkloadOp::Write(Value::unique(i as u32, seed)),
                    );
                }
                let deadline = 100 * probe_period + 10_000;
                let result = driver.run_until(deadline);
                let all_failed = (0..n).all(|i| result.failure_time(c(i as u32)).is_some());
                if all_failed {
                    detected += 1;
                    let last = (0..n)
                        .filter_map(|i| result.failure_time(c(i as u32)))
                        .max()
                        .expect("all failed");
                    total += last as f64;
                }
            }
            DetectionRow {
                probe_period,
                mean_detection_time: if detected > 0 {
                    total / detected as f64
                } else {
                    f64::NAN
                },
                detection_rate: detected as f64 / seeds as f64,
            }
        })
        .collect()
}

/// One row of the stability-latency experiment (E9).
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityRow {
    /// Dummy-read tick period.
    pub tick_period: u64,
    /// Probe period `Δ`.
    pub probe_period: u64,
    /// Virtual time from an operation's completion until it is stable
    /// w.r.t. every client, averaged over seeds.
    pub mean_stability_time: f64,
}

/// Measures how long a completed write takes to become globally stable as
/// a function of the dummy-read and probe periods (experiment E9).
pub fn stability_latency_sweep(configs: &[(u64, u64)], seeds: u64, n: usize) -> Vec<StabilityRow> {
    configs
        .iter()
        .map(|&(tick_period, probe_period)| {
            let mut total = 0.0;
            let mut count = 0u64;
            for seed in 0..seeds {
                let mut driver = FaustDriver::new(
                    n,
                    Box::new(UstorServer::new(n)),
                    FaustDriverConfig {
                        sim: SimConfig {
                            seed,
                            link_delay: DelayModel::Uniform(1, 5),
                            offline_delay: DelayModel::Uniform(10, 50),
                        },
                        faust: FaustConfig {
                            probe_period,
                            dummy_reads: true,
                            commit_mode: faust_ustor::CommitMode::Immediate,
                            pipeline: 1,
                        },
                        tick_period,
                    },
                    b"bench-stability",
                );
                driver.push_op(c(0), FaustWorkloadOp::Write(Value::unique(0, seed)));
                let result = driver.run_until(100 * probe_period + 10_000);
                let completed_at =
                    result.notifications[0]
                        .iter()
                        .find_map(|(t, note)| match note {
                            faust_core::Notification::Completed(_) => Some(*t),
                            _ => None,
                        });
                let stable_at = (0..n)
                    .map(|j| result.stability_time(c(0), c(j as u32), 1))
                    .collect::<Option<Vec<_>>>()
                    .map(|ts| ts.into_iter().max().expect("nonempty"));
                if let (Some(done), Some(stable)) = (completed_at, stable_at) {
                    total += stable.saturating_sub(done) as f64;
                    count += 1;
                }
            }
            StabilityRow {
                tick_period,
                probe_period,
                mean_stability_time: if count > 0 {
                    total / count as f64
                } else {
                    f64::NAN
                },
            }
        })
        .collect()
}

/// Pre-signs a pipelined burst of `count` write SUBMITs by client `id`
/// (timestamps `1..=count`, each DATA-signature covering its own value's
/// hash) — the load generator for the egress-coalescing benches.
///
/// [`UstorClient`] is deliberately sequential (one op in flight, as in
/// the paper), but nothing in the *protocol* stops a client from
/// pipelining: every SUBMIT's signatures depend only on the client's own
/// op counter and values, never on the server's replies. Pre-signing a
/// burst therefore produces exactly the wire traffic a future pipelined
/// client would send, which is what batched ingress verification and
/// coalesced egress need to show their worth.
pub fn pipelined_writes(
    keys: &KeySet,
    id: ClientId,
    count: u64,
    value_len: usize,
) -> Vec<faust_types::SubmitMsg> {
    use faust_crypto::sha256::sha256;
    use faust_crypto::sig::{SigContext, Signer};
    use faust_types::op::{data_signing_bytes, submit_signing_bytes, InvocationTuple};
    use faust_types::OpKind;

    let keypair = keys.keypair(id.as_u32()).expect("client key");
    (1..=count)
        .map(|t| {
            let mut bytes = vec![0xB6u8; value_len];
            bytes[..8.min(value_len)].copy_from_slice(&t.to_be_bytes()[..8.min(value_len)]);
            let value = Value::new(bytes);
            let xbar = Some(sha256(value.as_bytes()));
            faust_types::SubmitMsg {
                timestamp: t,
                tuple: InvocationTuple {
                    client: id,
                    kind: OpKind::Write,
                    register: id,
                    sig: keypair.sign(
                        SigContext::Submit,
                        &submit_signing_bytes(OpKind::Write, id, t),
                    ),
                },
                value: Some(value),
                data_sig: keypair.sign(SigContext::Data, &data_signing_bytes(t, xbar)),
                piggyback: None,
            }
        })
        .collect()
}

/// One group-commit round of a full protocol op per client: every
/// client's submit is appended (reply withheld), ONE forced flush
/// releases the whole batch, then the commits are logged (their appends
/// ride the next round's fsync). Shared by the `store` bench and
/// `bench_smoke`, so both measure the identical round protocol.
///
/// The server must run `Durability::Group` with thresholds the round
/// cannot reach on its own — the explicit flush is the batch boundary.
pub fn group_commit_round(
    server: &mut faust_store::PersistentServer,
    cs: &mut [UstorClient],
    round: u64,
) {
    for (i, client) in cs.iter_mut().enumerate() {
        let submit = client.begin_write(Value::unique(i as u32, round)).unwrap();
        let eager = server.on_submit(client.id(), submit);
        assert!(eager.is_empty(), "replies must wait for the batch fsync");
    }
    let replies = server.flush(true);
    assert_eq!(replies.len(), cs.len(), "one fsync released the batch");
    for (to, reply) in replies {
        let (commit, _) = cs[to.index()].handle_reply(reply).expect("correct");
        server.on_commit(to, commit.expect("immediate mode"));
    }
}

/// Runs `clients × pipeline` pre-signed write SUBMITs ([`pipelined_writes`])
/// over real loopback TCP against a fresh `PersistentServer` with the
/// given durability, waiting for every reply. Returns the loaded-phase
/// wall time and the engine's final stats — the shared core of the
/// `e2e_tcp` bench and the `bench_smoke` e2e data point.
pub fn tcp_pipelined_run(
    clients: usize,
    pipeline: u64,
    value_len: usize,
    durability: faust_store::Durability,
) -> (std::time::Duration, faust_ustor::EngineStats) {
    use faust_store::{testutil, PersistentBackend, StoreConfig};
    use faust_types::UstorMsg;

    let dir = testutil::scratch_dir("bench-e2e-tcp");
    let backend = PersistentBackend::new(
        &dir,
        StoreConfig {
            durability,
            snapshot_every: 0,
        },
    );
    let transport =
        faust_net::TcpServerTransport::bind("127.0.0.1:0", clients).expect("bind loopback");
    let addr = transport.local_addr();
    let server = faust_ustor::ServerBackend::build(&backend, clients).expect("fresh store");
    let engine_thread = faust_core::runtime::spawn_engine(clients, server, transport);

    let keys = KeySet::generate(clients, b"bench-e2e-tcp");
    let start = std::time::Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let id = c(i as u32);
            let burst = pipelined_writes(&keys, id, pipeline, value_len);
            std::thread::spawn(move || {
                let conn = faust_net::tcp::connect(addr, id).expect("connect");
                for submit in &burst {
                    conn.send(&UstorMsg::Submit(submit.clone())).expect("send");
                }
                let mut replies = 0u64;
                while replies < pipeline {
                    match conn.recv().expect("reply stream") {
                        UstorMsg::Reply(_) => replies += 1,
                        _ => panic!("server sends only replies"),
                    }
                }
                replies
            })
        })
        .collect();
    for worker in workers {
        assert_eq!(worker.join().expect("client thread"), pipeline);
    }
    let elapsed = start.elapsed();
    let stats = engine_thread.join().expect("engine thread");
    std::fs::remove_dir_all(&dir).ok();
    (elapsed, stats)
}

/// The [`tcp_pipelined_run`] load shape driven through the *public*
/// client API instead of pre-signed frames: `clients` live
/// [`faust_core::FaustHandle`] sessions over loopback TCP, each
/// submitting `ops` writes into a pipeline window of `depth` and waiting
/// for the last ticket. Piggybacked commits keep the wire profile at one
/// inbound frame and one logged record per op — the same as the raw
/// path — so the delta between the two is exactly the cost of the full
/// fail-aware client (signing, reply verification, version folding,
/// stability tracking).
pub fn tcp_handle_run(
    clients: usize,
    ops: u64,
    depth: usize,
    value_len: usize,
    durability: faust_store::Durability,
) -> (std::time::Duration, faust_ustor::EngineStats) {
    use faust_core::handle::{FaustHandle, HandleConfig};
    use faust_core::FaustConfig;
    use faust_store::{testutil, PersistentBackend, StoreConfig};
    use std::time::Duration;

    let dir = testutil::scratch_dir("bench-handle-tcp");
    let backend = PersistentBackend::new(
        &dir,
        StoreConfig {
            durability,
            snapshot_every: 0,
        },
    );
    let transport =
        faust_net::TcpServerTransport::bind("127.0.0.1:0", clients).expect("bind loopback");
    let addr = transport.local_addr();
    let server = faust_ustor::ServerBackend::build(&backend, clients).expect("fresh store");
    let engine_thread = faust_core::runtime::spawn_engine(clients, server, transport);

    let config = HandleConfig {
        faust: FaustConfig {
            // No offline medium, no idle machinery: pure op throughput.
            probe_period: u64::MAX / 2,
            dummy_reads: false,
            commit_mode: faust_ustor::CommitMode::Piggyback,
            pipeline: depth.max(1),
        },
        tick_interval: Duration::from_millis(2),
        scheme: faust_crypto::SigScheme::Hmac,
    };
    let start = std::time::Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let id = c(i as u32);
            std::thread::spawn(move || {
                let mut handle =
                    FaustHandle::connect_tcp(addr, id, clients, b"bench-handle-tcp", &config)
                        .expect("connect");
                let mut last = None;
                for k in 0..ops {
                    let mut bytes = vec![0xB6u8; value_len.max(8)];
                    bytes[..8].copy_from_slice(&k.to_be_bytes());
                    last = Some(handle.write(Value::new(bytes)));
                }
                handle
                    .wait(last.expect("ops >= 1"), Duration::from_secs(120))
                    .expect("pipelined run completes");
                assert!(handle.failure().is_none());
                handle.disconnect();
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    let stats = engine_thread.join().expect("engine thread");
    std::fs::remove_dir_all(&dir).ok();
    (elapsed, stats)
}

/// The [`tcp_pipelined_run`] load shape against a *sharded* deployment:
/// `shards` worker-threaded server shards, each with its own `shard-<i>/`
/// store directory, behind the global-order router. Clients spread their
/// pre-signed bursts exactly as in the unsharded run (each client's
/// register is homed on `register % shards`), so at `shards == 1` this
/// measures pure router overhead and at `shards > 1` the available
/// fsync/apply parallelism. Returns the loaded-phase wall time and the
/// *merged* engine stats.
pub fn tcp_sharded_run(
    clients: usize,
    pipeline: u64,
    value_len: usize,
    durability: faust_store::Durability,
    shards: usize,
) -> (std::time::Duration, faust_ustor::EngineStats) {
    use faust_store::{testutil, ShardedBackend, StoreConfig};
    use faust_types::UstorMsg;

    let dir = testutil::scratch_dir("bench-e2e-sharded");
    let backend = ShardedBackend::new(
        &dir,
        StoreConfig {
            durability,
            snapshot_every: 0,
        },
        shards,
        true,
    );
    let transport =
        faust_net::TcpServerTransport::bind("127.0.0.1:0", clients).expect("bind loopback");
    let addr = transport.local_addr();
    let server = faust_ustor::ServerBackend::build(&backend, clients).expect("fresh store");
    let engine_thread = faust_core::runtime::spawn_engine(clients, server, transport);

    let keys = KeySet::generate(clients, b"bench-e2e-sharded");
    let start = std::time::Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let id = c(i as u32);
            let burst = pipelined_writes(&keys, id, pipeline, value_len);
            std::thread::spawn(move || {
                let conn = faust_net::tcp::connect(addr, id).expect("connect");
                for submit in &burst {
                    conn.send(&UstorMsg::Submit(submit.clone())).expect("send");
                }
                let mut replies = 0u64;
                while replies < pipeline {
                    match conn.recv().expect("reply stream") {
                        UstorMsg::Reply(_) => replies += 1,
                        _ => panic!("server sends only replies"),
                    }
                }
                replies
            })
        })
        .collect();
    for worker in workers {
        assert_eq!(worker.join().expect("client thread"), pipeline);
    }
    let elapsed = start.elapsed();
    let stats = engine_thread.join().expect("engine thread");
    std::fs::remove_dir_all(&dir).ok();
    (elapsed, stats)
}

/// The many-connection reactor run: `conns` sequential protocol clients
/// multiplexed over blocking loopback sockets from ONE driver thread,
/// against a server whose transport is the single-threaded
/// [`faust_net::ReactorTransport`] — connections ≫ threads on *both*
/// sides, so the measurement scales to counts where thread-per-connection
/// would need hundreds of stacks. Each client performs `ops` full write
/// operations (submit → reply → commit, commits pruning the pending
/// list, exactly the paper's sequential client). Returns the loaded-phase
/// wall time, the engine's stats, and the reactor's counters.
#[cfg(unix)]
pub fn tcp_reactor_run(
    conns: usize,
    ops: u64,
    value_len: usize,
    durability: faust_store::Durability,
) -> (
    std::time::Duration,
    faust_ustor::EngineStats,
    faust_net::ReactorStats,
) {
    use faust_store::{testutil, PersistentBackend, StoreConfig};
    use faust_types::frame::{read_frame, write_frame};
    use faust_types::UstorMsg;
    use faust_ustor::{serve, ServerEngine};

    let dir = testutil::scratch_dir("bench-e2e-reactor");
    let backend = PersistentBackend::new(
        &dir,
        StoreConfig {
            durability,
            snapshot_every: 0,
        },
    );
    let mut transport =
        faust_net::ReactorTransport::bind("127.0.0.1:0", conns).expect("bind loopback");
    let addr = transport.local_addr();
    let server = faust_ustor::ServerBackend::build(&backend, conns).expect("fresh store");
    // `spawn_engine` only hands back engine stats; run the loop by hand
    // so the reactor's counters survive the serve.
    let engine_thread = std::thread::spawn(move || {
        let mut engine = ServerEngine::new(conns, server);
        serve(&mut engine, &mut transport);
        (engine.stats().clone(), transport.stats().clone())
    });

    let keys = KeySet::generate(conns, b"bench-e2e-reactor");
    let mut sessions: Vec<UstorClient> = (0..conns)
        .map(|i| {
            UstorClient::new(
                c(i as u32),
                conns,
                keys.keypair(i as u32).expect("generated").clone(),
                keys.registry(),
            )
        })
        .collect();
    let mut socks: Vec<std::net::TcpStream> = (0..conns)
        .map(|i| {
            let mut s = std::net::TcpStream::connect(addr).expect("connect");
            s.set_nodelay(true).ok();
            write_frame(&mut s, &c(i as u32)).expect("hello");
            s
        })
        .collect();

    let start = std::time::Instant::now();
    for k in 0..ops {
        // Breadth-first: all submits out, then all replies in — at any
        // moment every connection has (at most) one op in flight, which
        // is the wire shape of `conns` concurrent sequential clients.
        for i in 0..conns {
            let mut bytes = vec![0xB6u8; value_len.max(8)];
            bytes[..8].copy_from_slice(&k.to_be_bytes());
            let submit = sessions[i]
                .begin_write(Value::new(bytes))
                .expect("sequential client is idle between ops");
            write_frame(&mut socks[i], &UstorMsg::Submit(submit)).expect("submit");
        }
        for i in 0..conns {
            let reply = match read_frame::<_, UstorMsg>(&mut socks[i])
                .expect("reply stream")
                .expect("server stays up")
            {
                UstorMsg::Reply(r) => r,
                _ => panic!("server sends only replies"),
            };
            let (commit, _) = sessions[i].handle_reply(reply).expect("correct server");
            write_frame(
                &mut socks[i],
                &UstorMsg::Commit(commit.expect("immediate mode")),
            )
            .expect("commit");
        }
    }
    let elapsed = start.elapsed();
    drop(socks);
    let (engine_stats, reactor_stats) = engine_thread.join().expect("engine thread");
    std::fs::remove_dir_all(&dir).ok();
    (elapsed, engine_stats, reactor_stats)
}

/// Runs a full operation (submit → reply → commit) through client and
/// server state machines, for the protocol-throughput benches (E10).
pub fn run_one_write(
    server: &mut UstorServer,
    client: &mut UstorClient,
    value: Value,
) -> faust_ustor::OpCompletion {
    let id = client.id();
    let submit = client.begin_write(value).expect("idle");
    let (_, reply) = server.on_submit(id, submit).pop().expect("reply");
    let (commit, done) = client.handle_reply(reply).expect("correct server");
    server.on_commit(id, commit.expect("immediate mode"));
    done
}

/// Read counterpart of [`run_one_write`].
pub fn run_one_read(
    server: &mut UstorServer,
    client: &mut UstorClient,
    register: ClientId,
) -> faust_ustor::OpCompletion {
    let id = client.id();
    let submit = client.begin_read(register).expect("idle");
    let (_, reply) = server.on_submit(id, submit).pop().expect("reply");
    let (commit, done) = client.handle_reply(reply).expect("correct server");
    server.on_commit(id, commit.expect("immediate mode"));
    done
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes_grow_linearly() {
        let rows = message_size_sweep(&[4, 8, 16, 32], 64);
        // Linearity: doubling n roughly doubles the size increments.
        let d1 = rows[1].reply_write - rows[0].reply_write;
        let d2 = rows[2].reply_write - rows[1].reply_write;
        let d3 = rows[3].reply_write - rows[2].reply_write;
        assert_eq!(d2, 2 * d1, "{rows:?}");
        assert_eq!(d3, 2 * d2, "{rows:?}");
        // SUBMIT is O(1) in n.
        assert_eq!(rows[0].submit_write, rows[3].submit_write);
    }

    #[test]
    fn exactly_one_round_per_op() {
        let row = rounds_per_op(4, 10);
        assert!((row.rounds_per_op - 1.0).abs() < 1e-9, "{row:?}");
        assert!((row.messages_per_op - 3.0).abs() < 1e-9, "{row:?}");
    }

    #[test]
    fn piggybacking_saves_a_message_per_op() {
        let rows = commit_mode_ablation(&[3], 8);
        assert!((rows[0].immediate_msgs_per_op - 3.0).abs() < 1e-9);
        assert!((rows[0].piggyback_msgs_per_op - 2.0).abs() < 0.1);
        // Section 5 claims only that the COMMIT *message* can be
        // eliminated ("this message can be eliminated by piggybacking its
        // contents on the SUBMIT message of the next operation") — the
        // commit's *contents* still travel, and the longer pending list
        // `L` makes REPLYs slightly bigger, so total bytes are merely
        // comparable, not strictly smaller. The earlier `<` assertion
        // over-claimed and held only for one particular workload.
        assert!(
            rows[0].piggyback_bytes_per_op < rows[0].immediate_bytes_per_op * 1.05,
            "piggyback bytes should stay comparable: {rows:?}"
        );
    }

    #[test]
    fn lockstep_slows_down_with_concurrency_ustor_does_not() {
        let rows = concurrency_sweep(&[2, 8], 3, 10);
        let ustor_growth = rows[1].ustor_time as f64 / rows[0].ustor_time as f64;
        let ls_growth = rows[1].lockstep_time as f64 / rows[0].lockstep_time as f64;
        assert!(
            ls_growth > 2.0 * ustor_growth,
            "lock-step must degrade: {rows:?}"
        );
    }

    #[test]
    fn crash_wedges_lockstep_only() {
        let row = crash_blocking(3, 4);
        assert_eq!(row.ustor_completed, row.survivor_ops);
        assert_eq!(row.lockstep_completed, 0);
    }

    #[test]
    fn detection_always_succeeds_and_speeds_up_with_probing() {
        let rows = detection_latency_sweep(&[100, 1_000], 3, 2);
        for row in &rows {
            assert_eq!(row.detection_rate, 1.0, "{row:?}");
        }
        assert!(
            rows[0].mean_detection_time < rows[1].mean_detection_time,
            "faster probing must detect sooner: {rows:?}"
        );
    }

    #[test]
    fn stability_reached_with_correct_server() {
        let rows = stability_latency_sweep(&[(25, 200)], 2, 2);
        assert!(rows[0].mean_stability_time.is_finite(), "{rows:?}");
    }
}
