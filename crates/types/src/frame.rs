//! Length-prefixed stream framing for [`Wire`] messages.
//!
//! The [`wire`](crate::wire) module defines the exact encoding of each
//! protocol message; this module turns those encodings into a *stream*
//! format usable over byte-oriented transports (TCP): every message is
//! prefixed with its big-endian `u32` length. A length prefix of more than
//! [`MAX_FRAME_LEN`] bytes is rejected before any allocation, so a hostile
//! peer cannot make a receiver balloon its memory.
//!
//! Two consumption styles are provided:
//!
//! * [`read_frame`] / [`write_frame`] — blocking `std::io` helpers for
//!   threads that own a socket;
//! * [`FrameDecoder`] — an incremental, `ReadBuf`-style decoder: feed it
//!   arbitrary byte chunks as they arrive ([`FrameDecoder::extend`]) and
//!   pull complete messages out ([`FrameDecoder::next_frame`]). Frames may
//!   be split at any byte boundary across chunks.

use crate::wire::{Wire, WireError};
use std::io::{self, Read, Write};

/// Upper bound on the payload length of a single frame (16 MiB).
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Errors produced while decoding a framed stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// A frame header announced an implausible length.
    Oversized(u32),
    /// A complete frame arrived but its payload was not a valid message.
    Malformed(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Malformed(e)
    }
}

/// Encodes `msg` as one frame: 4-byte big-endian length, then the payload.
pub fn frame_bytes<T: Wire>(msg: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + msg.encoded_len());
    frame_into(&mut out, msg);
    out
}

/// Appends one frame to `out` without allocating a fresh buffer — the
/// building block for coalesced sends: encode many frames back to back
/// into one reused buffer, then hand the whole thing to a single
/// `write_all`.
pub fn frame_into<T: Wire>(out: &mut Vec<u8>, msg: &T) {
    let start = out.len();
    out.extend_from_slice(&[0; 4]);
    msg.encode_into(out);
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_be_bytes());
}

/// Writes one framed message to `w` and flushes.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame<W: Write, T: Wire>(w: &mut W, msg: &T) -> io::Result<()> {
    w.write_all(&frame_bytes(msg))?;
    w.flush()
}

/// Reads one framed message from `r`.
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary); EOF in the middle of a frame is an error.
///
/// # Errors
///
/// Returns a [`FrameError`] on I/O failure, an oversized header, or a
/// payload that does not decode.
pub fn read_frame<R: Read, T: Wire>(r: &mut R) -> Result<Option<T>, FrameError> {
    let mut header = [0u8; 4];
    // Distinguish clean EOF (no header at all) from a truncated header.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                )))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(T::decode(&payload)?))
}

/// Incremental frame decoder: accumulates arbitrarily split byte chunks and
/// yields complete messages.
///
/// # Example
///
/// ```
/// use faust_types::frame::{frame_bytes, FrameDecoder};
/// use faust_types::Wire;
///
/// let encoded = frame_bytes(&7u64);
/// let mut dec: FrameDecoder = FrameDecoder::new();
/// // Feed the frame one byte at a time.
/// for b in &encoded {
///     dec.extend(std::slice::from_ref(b));
/// }
/// let got: Option<u64> = dec.next_frame().unwrap();
/// assert_eq!(got, Some(7));
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted lazily.
    start: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        // Compact once the consumed prefix dominates, keeping the buffer
        // bounded by the data actually in flight.
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Attempts to decode the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] on an oversized header or a payload that
    /// does not decode; the decoder is poisoned afterwards in the sense
    /// that the stream position is undefined, so callers should drop the
    /// connection (exactly what the transports do).
    pub fn next_frame<T: Wire>(&mut self) -> Result<Option<T>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(avail[..4].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(len));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[4..total];
        let msg = T::decode(payload)?;
        self.start += total;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_reader_writer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &42u64).unwrap();
        write_frame(&mut buf, &7u32).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame::<_, u64>(&mut r).unwrap(), Some(42));
        assert_eq!(read_frame::<_, u32>(&mut r).unwrap(), Some(7));
        assert_eq!(read_frame::<_, u64>(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn eof_inside_header_is_an_error() {
        let bytes = frame_bytes(&1u64);
        let mut r = io::Cursor::new(&bytes[..2]);
        assert!(read_frame::<_, u64>(&mut r).is_err());
    }

    #[test]
    fn eof_inside_payload_is_an_error() {
        let bytes = frame_bytes(&1u64);
        let mut r = io::Cursor::new(&bytes[..bytes.len() - 1]);
        assert!(read_frame::<_, u64>(&mut r).is_err());
    }

    #[test]
    fn oversized_header_rejected_without_allocation() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        let mut r = io::Cursor::new(bytes);
        assert!(matches!(
            read_frame::<_, u64>(&mut r),
            Err(FrameError::Oversized(_))
        ));
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME_LEN + 1).to_be_bytes());
        assert!(matches!(
            dec.next_frame::<u64>(),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn decoder_handles_partial_and_concatenated_frames() {
        let mut stream = Vec::new();
        for i in 0..5u64 {
            stream.extend_from_slice(&frame_bytes(&i));
        }
        // Feed in two lopsided chunks.
        let mut dec = FrameDecoder::new();
        dec.extend(&stream[..7]);
        assert_eq!(dec.next_frame::<u64>().unwrap(), None);
        dec.extend(&stream[7..]);
        for i in 0..5u64 {
            assert_eq!(dec.next_frame::<u64>().unwrap(), Some(i));
        }
        assert_eq!(dec.next_frame::<u64>().unwrap(), None);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn frame_into_coalesces_frames_decodably() {
        // Several frames appended to one reused buffer decode exactly as
        // if they had been written one `write_frame` at a time.
        let mut buf = Vec::new();
        for i in 0..4u64 {
            frame_into(&mut buf, &i);
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&buf);
        for i in 0..4u64 {
            assert_eq!(dec.next_frame::<u64>().unwrap(), Some(i));
        }
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn malformed_payload_is_reported() {
        // A frame whose payload is one byte short for a u64.
        let mut bytes = 7u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0; 7]);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        assert!(matches!(
            dec.next_frame::<u64>(),
            Err(FrameError::Malformed(_))
        ));
    }
}
