//! The twisted Edwards curve −x² + y² = 1 + d·x²y² over GF(2²⁵⁵ − 19),
//! i.e. edwards25519 (RFC 8032 §5.1).
//!
//! Points are held in extended homogeneous coordinates (X : Y : Z : T)
//! with x = X/Z, y = Y/Z, T = XY/Z, using the unified addition and
//! doubling formulas of Hisil–Wong–Carter–Dawson 2008 specialized to
//! a = −1. All curve constants (d, 2d, √−1, the base point) are *derived*
//! at first use from their defining equations rather than transcribed,
//! and pinned by the RFC 8032 test vectors in `ed25519::tests`.
//!
//! Scalar multiplication is variable-time: fine for verification (public
//! data); signing additionally uses a precomputed base-point table whose
//! lookups are secret-indexed — see the crate docs for the side-channel
//! caveat.

use super::field::Fe;
use std::sync::OnceLock;

/// A point on edwards25519 in extended coordinates.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

/// d = −121665/121666.
fn d() -> Fe {
    *D.get_or_init(|| {
        Fe::from_u64(121665)
            .neg()
            .mul(Fe::from_u64(121666).invert())
    })
}

/// 2d, the constant of the a = −1 unified addition formulas.
fn d2() -> Fe {
    *D2.get_or_init(|| d().add(d()))
}

static D: OnceLock<Fe> = OnceLock::new();
static D2: OnceLock<Fe> = OnceLock::new();
static BASE: OnceLock<Point> = OnceLock::new();
static BASE_TABLE: OnceLock<Vec<[Point; 15]>> = OnceLock::new();

impl Point {
    pub(crate) const IDENTITY: Point = Point {
        x: Fe::ZERO,
        y: Fe::ONE,
        z: Fe::ONE,
        t: Fe::ZERO,
    };

    /// The standard base point B: the unique point with y = 4/5 and
    /// even x (RFC 8032 §5.1).
    pub(crate) fn base() -> Point {
        *BASE.get_or_init(|| {
            let y = Fe::from_u64(4).mul(Fe::from_u64(5).invert());
            let mut enc = y.to_bytes();
            enc[31] &= 0x7f; // sign bit 0: the even-x square root
            Point::decompress(&enc).expect("4/5 is on the curve")
        })
    }

    /// Unified point addition (add-2008-hwcd-3, a = −1, k = 2d).
    pub(crate) fn add(&self, q: &Point) -> Point {
        let a = self.y.sub(self.x).mul(q.y.sub(q.x));
        let b = self.y.add(self.x).mul(q.y.add(q.x));
        let c = self.t.mul(d2()).mul(q.t);
        let dd = self.z.add(self.z).mul(q.z);
        let e = b.sub(a);
        let f = dd.sub(c);
        let g = dd.add(c);
        let h = b.add(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Point doubling (dbl-2008-hwcd, a = −1).
    pub(crate) fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(self.z.square());
        let d_ = a.neg(); // a·X² with a = −1
        let e = self.x.add(self.y).square().sub(a).sub(b);
        let g = d_.add(b);
        let f = g.sub(c);
        let h = d_.sub(b);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    pub(crate) fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Projective equality: X₁Z₂ = X₂Z₁ ∧ Y₁Z₂ = Y₂Z₁.
    pub(crate) fn eq_vartime(&self, q: &Point) -> bool {
        self.x.mul(q.z).ct_eq_vartime(q.x.mul(self.z))
            && self.y.mul(q.z).ct_eq_vartime(q.y.mul(self.z))
    }

    pub(crate) fn is_identity(&self) -> bool {
        self.eq_vartime(&Point::IDENTITY)
    }

    /// Multiplies by the cofactor 8.
    pub(crate) fn mul_by_cofactor(&self) -> Point {
        self.double().double().double()
    }

    /// The canonical 32-byte compressed encoding: little-endian y with
    /// the sign of x in bit 255.
    pub(crate) fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let mut out = y.to_bytes();
        out[31] |= (x.is_negative() as u8) << 7;
        out
    }

    /// Decodes a compressed point, strictly: the y coordinate must be
    /// canonical (< p), y must be on the curve, and the encoding of −0 is
    /// rejected (RFC 8032 §5.1.3).
    pub(crate) fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let sign = bytes[31] >> 7 == 1;
        let mut y_bytes = *bytes;
        y_bytes[31] &= 0x7f;
        if !Fe::bytes_are_canonical(&y_bytes) {
            return None;
        }
        let y = Fe::from_bytes(&y_bytes);
        // x² = (y² − 1)/(d·y² + 1) = u/v.
        let yy = y.square();
        let u = yy.sub(Fe::ONE);
        let v = d().mul(yy).add(Fe::ONE);
        // Candidate root x = u·v³·(u·v⁷)^((p−5)/8).
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut x = u.mul(v3).mul(u.mul(v7).pow_p58());
        let vxx = v.mul(x.square());
        if !vxx.ct_eq_vartime(u) {
            if vxx.ct_eq_vartime(u.neg()) {
                x = x.mul(Fe::sqrt_m1());
            } else {
                return None; // not a square: y is not on the curve
            }
        }
        if x.is_zero() && sign {
            return None; // "negative zero" encoding
        }
        if x.is_negative() != sign {
            x = x.neg();
        }
        Some(Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }

    /// Variable-time scalar multiplication by a 256-bit little-endian
    /// scalar (MSB-first double-and-add). The reference implementation
    /// the windowed paths are tested against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn mul_scalar(&self, scalar: &[u8; 32]) -> Point {
        let mut acc = Point::IDENTITY;
        let mut started = false;
        for byte_idx in (0..32).rev() {
            for bit in (0..8).rev() {
                if started {
                    acc = acc.double();
                }
                if (scalar[byte_idx] >> bit) & 1 == 1 {
                    acc = acc.add(self);
                    started = true;
                }
            }
        }
        acc
    }
}

/// Radix-16 window table of the base point: `table[w][d−1] = d·16ʷ·B`
/// for w ∈ 0..64, d ∈ 1..=15. Built once (≈ 1000 additions) and reused by
/// every signature.
fn base_table() -> &'static [[Point; 15]] {
    BASE_TABLE.get_or_init(|| {
        let mut table = Vec::with_capacity(64);
        let mut window_base = Point::base(); // 16ʷ·B
        for _ in 0..64 {
            let mut row = [Point::IDENTITY; 15];
            row[0] = window_base;
            for di in 1..15 {
                row[di] = row[di - 1].add(&window_base);
            }
            // 16·16ʷ·B = 15·16ʷ·B + 16ʷ·B.
            window_base = row[14].add(&window_base);
            table.push(row);
        }
        table
    })
}

/// `scalar·B` via the fixed radix-16 table: 63 additions, no doublings.
pub(crate) fn mul_base(scalar: &[u8; 32]) -> Point {
    let table = base_table();
    let mut acc = Point::IDENTITY;
    for (w, row) in table.iter().enumerate() {
        let byte = scalar[w / 2];
        let nibble = if w % 2 == 0 { byte & 0x0f } else { byte >> 4 };
        if nibble != 0 {
            acc = acc.add(&row[nibble as usize - 1]);
        }
    }
    acc
}

/// The multiples 1·P … 15·P of one point (the per-point Straus table).
fn multiples(p: &Point) -> [Point; 15] {
    let mut row = [Point::IDENTITY; 15];
    row[0] = *p;
    for di in 1..15 {
        row[di] = row[di - 1].add(p);
    }
    row
}

/// 1·B … 15·B, cached: verification needs B's multiples on every call.
fn base_multiples() -> &'static [Point; 15] {
    BASE_MULTIPLES.get_or_init(|| multiples(&Point::base()))
}

static BASE_MULTIPLES: OnceLock<[Point; 15]> = OnceLock::new();

/// Straus's interleaved radix-16 loop over prebuilt multiples tables:
/// the ~252 doublings are shared across all points, which is the whole
/// economy of the multi-scalar paths.
fn straus_loop(scalars: &[[u8; 32]], tables: &[&[Point; 15]]) -> Point {
    debug_assert_eq!(scalars.len(), tables.len());
    let mut acc = Point::IDENTITY;
    let mut started = false;
    for w in (0..64).rev() {
        if started {
            acc = acc.double().double().double().double();
        }
        for (scalar, table) in scalars.iter().zip(tables) {
            let byte = scalar[w / 2];
            let nibble = if w % 2 == 0 { byte & 0x0f } else { byte >> 4 };
            if nibble != 0 {
                acc = acc.add(&table[nibble as usize - 1]);
                started = true;
            }
        }
    }
    acc
}

/// Variable-time multi-scalar multiplication Σᵢ sᵢ·Pᵢ.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub(crate) fn vartime_multiscalar_mul(scalars: &[[u8; 32]], points: &[Point]) -> Point {
    assert_eq!(scalars.len(), points.len(), "one scalar per point");
    let tables: Vec<[Point; 15]> = points.iter().map(multiples).collect();
    let refs: Vec<&[Point; 15]> = tables.iter().collect();
    straus_loop(scalars, &refs)
}

/// `s·B + t·Q` — the single-signature verification shape, using the
/// cached table of B's multiples so per-message verification builds a
/// table only for Q.
pub(crate) fn vartime_double_scalar_mul_base(s: &[u8; 32], t: &[u8; 32], q: &Point) -> Point {
    let q_table = multiples(q);
    straus_loop(&[*s, *t], &[base_multiples(), &q_table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_point_is_on_curve() {
        // −x² + y² = 1 + d·x²y², affine check via z = 1 decompression.
        let b = Point::base();
        let x2 = b.x.square();
        let y2 = b.y.square();
        let lhs = y2.sub(x2);
        let rhs = Fe::ONE.add(d().mul(x2).mul(y2));
        assert!(lhs.ct_eq_vartime(rhs));
    }

    #[test]
    fn base_point_matches_rfc8032() {
        // RFC 8032: B compresses to 0x58666666…66 (y = 4/5, x even).
        let enc = Point::base().compress();
        assert_eq!(enc[0], 0x58);
        assert!(enc[1..31].iter().all(|&b| b == 0x66));
        assert_eq!(enc[31], 0x66);
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let mut p = Point::base();
        for _ in 0..8 {
            let enc = p.compress();
            let q = Point::decompress(&enc).expect("valid encoding");
            assert!(p.eq_vartime(&q));
            p = p.double().add(&Point::base());
        }
    }

    #[test]
    fn identity_behaves() {
        let b = Point::base();
        assert!(b.add(&Point::IDENTITY).eq_vartime(&b));
        assert!(b.add(&b.neg()).is_identity());
        assert!(Point::IDENTITY.double().is_identity());
    }

    #[test]
    fn doubling_agrees_with_addition() {
        let b = Point::base();
        assert!(b.double().eq_vartime(&b.add(&b)));
        let p = b.double().add(&b); // 3B
        assert!(p.double().eq_vartime(&p.add(&p)));
    }

    #[test]
    fn base_has_order_l() {
        // L·B = identity and (L−1)·B = −B.
        let l_bytes: [u8; 32] = {
            let mut b = [0u8; 32];
            b[..8].copy_from_slice(&0x5812631a5cf5d3ed_u64.to_le_bytes());
            b[8..16].copy_from_slice(&0x14def9dea2f79cd6_u64.to_le_bytes());
            b[24..32].copy_from_slice(&0x1000000000000000_u64.to_le_bytes());
            b
        };
        assert!(Point::base().mul_scalar(&l_bytes).is_identity());
        let mut l_minus_1 = l_bytes;
        l_minus_1[0] -= 1;
        assert!(Point::base()
            .mul_scalar(&l_minus_1)
            .eq_vartime(&Point::base().neg()));
    }

    #[test]
    fn table_mul_base_agrees_with_generic() {
        for v in [1u64, 2, 7, 0xdeadbeefcafe] {
            let mut s = [0u8; 32];
            s[..8].copy_from_slice(&v.to_le_bytes());
            assert!(
                mul_base(&s).eq_vartime(&Point::base().mul_scalar(&s)),
                "v={v}"
            );
        }
        // A full-width scalar too.
        let mut s = [0xA7u8; 32];
        s[31] = 0x0f;
        assert!(mul_base(&s).eq_vartime(&Point::base().mul_scalar(&s)));
    }

    #[test]
    fn double_scalar_mul_base_agrees_with_generic() {
        let q = Point::base().double().add(&Point::base()); // 3B
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&0xfeed_beef_u64.to_le_bytes());
        let mut t = [0u8; 32];
        t[..8].copy_from_slice(&0x1234_5678_9abc_u64.to_le_bytes());
        let want = vartime_multiscalar_mul(&[s, t], &[Point::base(), q]);
        assert!(vartime_double_scalar_mul_base(&s, &t, &q).eq_vartime(&want));
    }

    #[test]
    fn multiscalar_agrees_with_naive_sum() {
        let b = Point::base();
        let p2 = b.double();
        let p3 = p2.add(&b);
        let mut s1 = [0u8; 32];
        s1[..8].copy_from_slice(&123456789u64.to_le_bytes());
        let mut s2 = [0u8; 32];
        s2[..8].copy_from_slice(&987654321u64.to_le_bytes());
        let mut s3 = [0u8; 32];
        s3[0] = 0; // zero scalar contributes nothing
        let want = b.mul_scalar(&s1).add(&p2.mul_scalar(&s2));
        let got = vartime_multiscalar_mul(&[s1, s2, s3], &[b, p2, p3]);
        assert!(got.eq_vartime(&want));
    }

    #[test]
    fn decompress_rejects_off_curve_and_noncanonical() {
        // y = 2 is not on the curve (x² would be a non-square).
        let mut off = [0u8; 32];
        off[0] = 2;
        assert!(Point::decompress(&off).is_none());
        // Non-canonical y (= p + 1) rejected even though p + 1 ≡ 1 is a
        // fine y value when encoded canonically.
        let mut noncanon = [0xffu8; 32];
        noncanon[0] = 0xee;
        noncanon[31] = 0x7f;
        assert!(Point::decompress(&noncanon).is_none());
        let mut canon_one = [0u8; 32];
        canon_one[0] = 1;
        assert!(Point::decompress(&canon_one).is_some(), "y = 1 (identity)");
        // x = 0 with sign bit set: "negative zero".
        let mut neg_zero = canon_one;
        neg_zero[31] |= 0x80;
        assert!(Point::decompress(&neg_zero).is_none());
    }

    #[test]
    fn cofactor_kills_small_order_points() {
        // y = −1 gives a point of order ≤ 4 ((0, −1) has order 2).
        let minus_one = Fe::ONE.neg().to_bytes();
        let p = Point::decompress(&minus_one).expect("(0, −1) decodes");
        assert!(!p.is_identity());
        assert!(p.mul_by_cofactor().is_identity());
    }
}
