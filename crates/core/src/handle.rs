//! The first-class fail-aware client API: live [`FaustHandle`] sessions
//! with pipelined operations and a typed [`Event`] stream.
//!
//! Everything the paper promises an *application* — completion
//! timestamps, stability cuts, and accurate violation alerts — surfaces
//! here as ordered, typed events instead of post-hoc report fields:
//!
//! * [`FaustHandle::write`] / [`FaustHandle::read`] are **non-blocking**:
//!   they return an [`OpTicket`] immediately. Up to
//!   [`FaustConfig::pipeline`] operations travel concurrently; the rest
//!   queue behind them.
//! * [`FaustHandle::poll`] drives the session without blocking;
//!   [`FaustHandle::wait`] blocks until one ticket's completion;
//!   [`FaustHandle::run_for`] runs the event loop for a fixed duration
//!   (probes and dummy reads run off the handle's internal protocol
//!   clock either way, and group-commit servers that hold replies back
//!   are simply waited out).
//! * Fail-awareness arrives as [`Event::Stable`] and [`Event::Violation`];
//!   transport loss as [`Event::Disconnected`].
//!
//! The sans-io half of the handle is [`SessionCore`]: the ticket/event
//! bookkeeping over a [`FaustClient`], with no clock and no transport.
//! The deterministic simulation driver ([`crate::FaustDriver`]) drives a
//! `SessionCore` per client inside virtual time; [`FaustHandle`] wraps
//! one around a real [`ClientTransport`] and an [`Instant`]-based clock.
//! Both therefore run the *identical* protocol and event semantics.
//!
//! # Event ordering guarantees
//!
//! Events are delivered in the order the protocol produced them:
//!
//! * [`Event::Completed`] events appear in ticket order — operations are
//!   scheduled and answered FIFO per client, pipelined or not.
//! * An [`Event::Stable`] cut never moves backwards: each cut dominates
//!   every cut delivered before it.
//! * After an [`Event::Violation`] the session is halted: no further
//!   `Completed` or `Stable` events will ever be delivered.
//!
//! # Lifecycle
//!
//! A handle owns exactly one [`ClientTransport`] connection at a time.
//! If the transport fails, the session state (version vectors, stability
//! machinery, queued work) survives: [`Event::Disconnected`] is emitted
//! once with a typed [`DisconnectCause`], and the session retains every
//! signed-but-unacknowledged SUBMIT — plus the latest COMMIT, whose
//! PROOF-signature other clients need to anchor this client's next
//! pending operation — in its **resend window**. On
//! [`FaustHandle::reconnect`] — manual, or automatic through a
//! [`faust_net::ClientDialer`] installed with
//! [`FaustHandle::with_auto_reconnect`] — the window is replayed first,
//! byte-identically; the server treats a SUBMIT whose timestamp it has
//! already processed as a duplicate and re-issues the original REPLY, so
//! every operation completes exactly once even when the ack was lost
//! with the socket. Auto-reconnect redials under a [`ReconnectPolicy`]
//! (capped exponential backoff with seeded jitter), emitting
//! [`Event::Reconnecting`] per scheduled attempt and [`Event::Resumed`]
//! when a dial succeeds. Clean shutdown is [`FaustHandle::disconnect`]
//! or dropping the handle.

use crate::client::{Actions, FaustClient, FaustClientState, FaustConfig, UserOp};
use crate::events::{FailReason, FaustCompletion, Notification, StabilityCut};
use crate::offline::OfflineMsg;
use faust_crypto::sig::{KeySet, Keypair, SigScheme, VerifierRegistry};
use faust_net::{ClientDialer, ClientTransport, TransportClosed};
use faust_sim::SmallRng;
use faust_types::{ClientId, ReplyMsg, UstorMsg, Value, Wire, WireError};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

/// Identifies one submitted user operation of a [`FaustHandle`] /
/// [`SessionCore`]. Tickets are issued in submission order and complete
/// in the same order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpTicket(u64);

impl OpTicket {
    /// The ticket's sequence number (0-based submission order).
    pub fn index(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for OpTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// A typed, ordered event from a fail-aware session — the application's
/// view of Definition 5 (see the module docs for ordering guarantees).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A user operation completed, with its fail-aware timestamp.
    Completed {
        /// The ticket returned when the operation was submitted.
        ticket: OpTicket,
        /// Timestamp, kind, and (for reads) the value.
        completion: FaustCompletion,
    },
    /// `stable_i(W)`: the stability cut advanced.
    Stable {
        /// The new cut; dominates every previously delivered cut.
        cut: StabilityCut,
    },
    /// `fail_i`: proof of server misbehaviour. The session has halted —
    /// this is the last protocol event it will ever deliver.
    Violation {
        /// Why the server stands convicted.
        reason: FailReason,
    },
    /// The transport to the server failed. Session state is intact;
    /// [`FaustHandle::reconnect`] (or auto-reconnect) resumes it.
    Disconnected {
        /// What the loss looked like from this side of the wire.
        reason: DisconnectCause,
    },
    /// Auto-reconnect scheduled its next dial attempt.
    Reconnecting {
        /// 1-based attempt number since the last confirmed resume.
        attempt: u32,
        /// How long the session waits before this attempt dials.
        backoff: Duration,
    },
    /// Auto-reconnect (re-)established a connection; the resend window
    /// has been queued for replay.
    Resumed,
}

/// The client-side classification of a transport loss.
///
/// The wire cannot carry the server's typed
/// [`faust_net::reactor::DisconnectReason`](crate::handle) to a peer it
/// just hung up on, so the handle classifies by shape: a connection that
/// dies **before any message arrives on it** looks exactly like the
/// reactor's shed-on-accept (admission control accepts, then closes) and
/// is reported as [`DisconnectCause::Overloaded`]; a connection that had
/// been exchanging traffic is [`DisconnectCause::TransportLoss`]. The
/// [`ReconnectPolicy`] backs off harder on `Overloaded` — hammering an
/// overloaded server with immediate redials is how clients turn load
/// into collapse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectCause {
    /// The connection died after carrying traffic: a crash, restart, or
    /// network fault.
    TransportLoss,
    /// The connection was closed before any message arrived — the
    /// shed-on-accept shape of a server refusing new load.
    Overloaded,
}

impl std::fmt::Display for DisconnectCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DisconnectCause::TransportLoss => f.write_str("transport loss"),
            DisconnectCause::Overloaded => f.write_str("shed by an overloaded server"),
        }
    }
}

/// Backoff schedule of an auto-reconnecting [`FaustHandle`]: capped
/// exponential with seeded jitter, a per-attempt connect timeout, and an
/// attempt budget.
///
/// The delay before attempt `k` (1-based) is drawn uniformly from
/// `[base/2, base]` where `base = initial_backoff · 2^(k-1)` (plus
/// [`ReconnectPolicy::overload_penalty`] extra doublings when the last
/// disconnect was [`DisconnectCause::Overloaded`]), capped at
/// [`ReconnectPolicy::max_backoff`]. Jitter comes from a [`SmallRng`]
/// seeded with `jitter_seed ^ client id`, so a fleet of clients sharing
/// a config still spreads its redials instead of stampeding in sync —
/// deterministically per seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Backoff before the first retry (pre-jitter).
    pub initial_backoff: Duration,
    /// Upper bound on any single backoff (pre-jitter).
    pub max_backoff: Duration,
    /// Attempts allowed since the last confirmed resume; once exhausted
    /// the handle stays disconnected (manual [`FaustHandle::reconnect`]
    /// still works and re-arms the budget).
    pub max_attempts: u32,
    /// Hard bound on each dial attempt ([`ClientDialer::dial`]).
    pub connect_timeout: Duration,
    /// Seed for the jitter stream (mixed with the client id).
    pub jitter_seed: u64,
    /// Extra backoff doublings applied when the previous disconnect was
    /// [`DisconnectCause::Overloaded`].
    pub overload_penalty: u32,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
            max_attempts: u32::MAX,
            connect_timeout: Duration::from_secs(2),
            jitter_seed: 0,
            overload_penalty: 2,
        }
    }
}

impl ReconnectPolicy {
    /// The jittered delay before `attempt` (1-based), given how the last
    /// connection ended.
    fn backoff(&self, attempt: u32, cause: DisconnectCause, rng: &mut SmallRng) -> Duration {
        let doublings = (attempt - 1).saturating_add(match cause {
            DisconnectCause::Overloaded => self.overload_penalty,
            DisconnectCause::TransportLoss => 0,
        });
        let base_ms = (self.initial_backoff.as_millis() as u64)
            .max(1)
            .checked_shl(doublings.min(32))
            .unwrap_or(u64::MAX)
            .min(self.max_backoff.as_millis() as u64)
            .max(1);
        Duration::from_millis(rng.gen_range_inclusive(base_ms / 2, base_ms))
    }
}

/// Resilience counters of a [`FaustHandle`] — what the session's
/// transport lifecycle actually did (exported by the chaos e2e as its CI
/// artifact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandleStats {
    /// Transport losses observed ([`Event::Disconnected`] emissions).
    pub disconnects: u64,
    /// Losses classified as [`DisconnectCause::Overloaded`].
    pub overload_sheds: u64,
    /// Dial attempts made by auto-reconnect.
    pub dial_attempts: u64,
    /// Successful redials (auto or manual [`FaustHandle::reconnect`]).
    pub resumes: u64,
    /// SUBMITs replayed from the resend window that had already been on
    /// a previous wire (exactly-once resends, not first sends).
    pub resent_submits: u64,
}

/// Why [`FaustHandle::wait`] gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitError {
    /// The timeout elapsed before the operation completed.
    Timeout,
    /// The transport failed (and the operation had not completed).
    Disconnected,
    /// The session detected a server violation and halted.
    Violation(FailReason),
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::Timeout => f.write_str("timed out waiting for the operation"),
            WaitError::Disconnected => {
                f.write_str("transport failed before the operation completed")
            }
            WaitError::Violation(reason) => write!(f, "session halted: {reason}"),
        }
    }
}

impl std::error::Error for WaitError {}

/// What a [`SessionCore`] entry point asks its embedding to transmit:
/// messages for the storage server and messages for the offline
/// client-to-client medium. (Events are *not* here — they accumulate in
/// the core and are drained with [`SessionCore::take_events`].)
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SessionOutput {
    /// Messages for the storage server, in order.
    pub to_server: Vec<UstorMsg>,
    /// Offline messages for other clients.
    pub offline: Vec<(ClientId, OfflineMsg)>,
}

/// Serializable snapshot of a [`SessionCore`]'s resumable state (keys
/// excluded — the caller re-supplies the keypair and registry on
/// restore). Produced by [`SessionCore::export_state`], consumed by
/// [`SessionCore::from_state`]; `faust-store`'s session-file container
/// persists its wire encoding with a checksum.
///
/// Undelivered events and untaken results are deliberately *not* part of
/// the state: they are addressed to the embedding that was running when
/// they fired, and a process that saves its session has already drained
/// what it cared about. Tickets, the resend window, and every protocol
/// invariant survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionState {
    /// The protocol client's resumable state.
    pub proto: FaustClientState,
    /// The session's protocol clock (milliseconds) at export time. A
    /// resuming embedding continues its clock from here, so probe
    /// periods and event stamps stay monotone across the restart.
    pub clock: u64,
    /// The next [`OpTicket`] sequence number to issue.
    pub next_ticket: u64,
    /// Tickets of submitted-but-uncompleted user operations, oldest
    /// first.
    pub pending_tickets: Vec<u64>,
    /// The resend window: signed-but-unacknowledged SUBMITs plus the
    /// latest COMMIT, in wire order, byte-identical to what went on the
    /// wire.
    pub resend_window: Vec<UstorMsg>,
}

impl Wire for SessionState {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.proto.encode_into(out);
        self.clock.encode_into(out);
        self.next_ticket.encode_into(out);
        self.pending_tickets.encode_into(out);
        self.resend_window.encode_into(out);
    }

    fn decode_from(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SessionState {
            proto: FaustClientState::decode_from(buf)?,
            clock: u64::decode_from(buf)?,
            next_ticket: u64::decode_from(buf)?,
            pending_tickets: Vec::<u64>::decode_from(buf)?,
            resend_window: Vec::<UstorMsg>::decode_from(buf)?,
        })
    }
}

/// The sans-io half of a fail-aware session: ticket and event bookkeeping
/// over a [`FaustClient`], with no clock and no transport.
///
/// Every entry point takes the current protocol time (milliseconds) and
/// returns the [`SessionOutput`] the embedding must transmit; events
/// accumulate internally, stamped with that time. [`FaustHandle`] drives
/// one against wall-clock time; [`crate::FaustDriver`] drives one per
/// simulated client inside virtual time — same code, same semantics.
#[derive(Debug)]
pub struct SessionCore {
    proto: FaustClient,
    next_ticket: u64,
    /// Tickets of submitted-but-uncompleted user operations, oldest
    /// first (the protocol completes user operations FIFO).
    pending_tickets: VecDeque<OpTicket>,
    /// The **resend window**: every signed SUBMIT (user ops and dummy
    /// reads alike) whose REPLY has not yet been processed, plus the
    /// latest COMMIT, in wire order, byte-identical to what went on the
    /// wire. Replies consume the window FIFO (a reply proves FIFO
    /// delivery of everything sent before the SUBMIT it answers); on a
    /// reconnect the embedding replays it so a frame lost with the
    /// socket cannot strand an operation. Bounded by the pipeline depth
    /// plus one COMMIT.
    ///
    /// The COMMIT **must** be retained: it carries the PROOF-signature
    /// anchoring this client's last completed digest, which peers need
    /// to validate its next pending SUBMIT (Algorithm 1, line 41). A
    /// COMMIT lost with a dead connection and never replayed makes an
    /// honest server look Byzantine to every sequential peer
    /// (`BadProofSignature`). Only the newest COMMIT is kept — a newer
    /// one (standalone or piggybacked on a later SUBMIT) subsumes it,
    /// and replaying a subsumed COMMIT after the server stored a newer
    /// one would regress the server's record of this client's version.
    resend_window: VecDeque<UstorMsg>,
    events: VecDeque<(u64, Event)>,
    results: HashMap<u64, FaustCompletion>,
}

impl SessionCore {
    /// Wraps an existing protocol client (e.g. one resumed from a
    /// previous server incarnation).
    pub fn new(proto: FaustClient) -> Self {
        SessionCore {
            proto,
            next_ticket: 0,
            pending_tickets: VecDeque::new(),
            resend_window: VecDeque::new(),
            events: VecDeque::new(),
            results: HashMap::new(),
        }
    }

    /// Snapshots the resumable state (keys excluded; see
    /// [`SessionState`]). `now` is the current protocol time — it is
    /// stored so the resuming embedding can continue its clock
    /// monotonically. Returns `None` when the session has halted on a
    /// violation: a failed session must not be resumed (its halt is the
    /// fail-aware guarantee), so there is nothing to persist.
    pub fn export_state(&self, now: u64) -> Option<SessionState> {
        if self.proto.failure().is_some() {
            return None;
        }
        Some(SessionState {
            proto: self.proto.export_state(),
            clock: now,
            next_ticket: self.next_ticket,
            pending_tickets: self.pending_tickets.iter().map(|t| t.0).collect(),
            resend_window: self.resend_window.iter().cloned().collect(),
        })
    }

    /// Rebuilds a session from a state snapshot plus its (externally
    /// kept) key material, returning the core and the protocol clock at
    /// which it was exported (resume your clock from there). The
    /// restored protocol client has its stale guard armed — see
    /// [`FaustClient::from_state`] — and the resend window is replayed
    /// by the embedding exactly as after a reconnect. Call
    /// [`SessionCore::probe_resume`] once connected so a rolled-back
    /// snapshot is detected promptly.
    ///
    /// # Panics
    ///
    /// Panics if the keypair does not match the snapshot's client id.
    pub fn from_state(
        keypair: Keypair,
        registry: VerifierRegistry,
        state: SessionState,
    ) -> (Self, u64) {
        let proto = FaustClient::from_state(keypair, registry, state.proto);
        let core = SessionCore {
            proto,
            next_ticket: state.next_ticket,
            pending_tickets: state.pending_tickets.into_iter().map(OpTicket).collect(),
            resend_window: state.resend_window.into(),
            events: VecDeque::new(),
            results: HashMap::new(),
        };
        (core, state.clock)
    }

    /// Issues a non-user read of the session's own register, if nothing
    /// is in flight (see [`FaustClient::probe_resume`]): after restoring
    /// from a snapshot, this round-trips the restored version against
    /// the live server so a rolled-back state file surfaces as
    /// [`Event::Violation`] with `Fault::StaleClientState` at connect
    /// time.
    pub fn probe_resume(&mut self, now: u64) -> SessionOutput {
        let actions = self.proto.probe_resume(now);
        self.absorb(actions, now)
    }

    /// This session's client id.
    pub fn id(&self) -> ClientId {
        self.proto.id()
    }

    /// Number of clients in the deployment.
    pub fn num_clients(&self) -> usize {
        self.proto.num_clients()
    }

    /// Read access to the protocol state (diagnostics and tests).
    pub fn client(&self) -> &FaustClient {
        &self.proto
    }

    /// Consumes the core, returning the protocol client (for resumption
    /// against another server incarnation).
    pub fn into_client(self) -> FaustClient {
        self.proto
    }

    /// The violation that halted this session, if any.
    pub fn failure(&self) -> Option<&FailReason> {
        self.proto.failure()
    }

    /// The current stability cut `W_i`.
    pub fn stability_cut(&self) -> StabilityCut {
        self.proto.stability_cut()
    }

    /// Submitted-but-uncompleted user operations.
    pub fn backlog(&self) -> usize {
        self.pending_tickets.len()
    }

    /// Submits a user operation; it enters the pipeline window
    /// immediately if there is room, and queues otherwise.
    pub fn submit(&mut self, op: UserOp, now: u64) -> (OpTicket, SessionOutput) {
        let ticket = OpTicket(self.next_ticket);
        self.next_ticket += 1;
        self.pending_tickets.push_back(ticket);
        let actions = self.proto.invoke(op, now);
        (ticket, self.absorb(actions, now))
    }

    /// Processes a REPLY from the server.
    pub fn handle_reply(&mut self, reply: ReplyMsg, now: u64) -> SessionOutput {
        let actions = self.proto.handle_reply(reply, now);
        if self.proto.failure().is_none() {
            // The reply answered the oldest in-flight SUBMIT: its resend
            // obligation is discharged, and FIFO delivery means every
            // window entry sent before it (a retained COMMIT included)
            // reached the server too. (Pop before absorb, which may
            // append freshly started SUBMITs to the window.)
            while let Some(front) = self.resend_window.pop_front() {
                if matches!(front, UstorMsg::Submit(_)) {
                    break;
                }
            }
        } else {
            self.resend_window.clear(); // halted: nothing will be resent
        }
        self.absorb(actions, now)
    }

    /// Processes an offline message from another client.
    pub fn handle_offline(&mut self, msg: OfflineMsg, now: u64) -> SessionOutput {
        let actions = self.proto.handle_offline(msg, now);
        self.absorb(actions, now)
    }

    /// Periodic protocol tick: probes silent clients, issues dummy reads
    /// when idle, starts queued work.
    pub fn tick(&mut self, now: u64) -> SessionOutput {
        let actions = self.proto.on_tick(now);
        self.absorb(actions, now)
    }

    /// Records a transport failure as an [`Event::Disconnected`].
    pub fn note_disconnected(&mut self, reason: DisconnectCause, now: u64) {
        self.events.push_back((now, Event::Disconnected { reason }));
    }

    /// Signed-but-unacknowledged SUBMITs plus the latest retained
    /// COMMIT, in wire order — byte-identical clones of what went (or
    /// was about to go) on the wire. This is what a reconnect must
    /// replay before anything else.
    pub fn resend_messages(&self) -> Vec<UstorMsg> {
        self.resend_window.iter().cloned().collect()
    }

    /// Number of SUBMITs currently awaiting a reply (at most the
    /// pipeline depth; a retained COMMIT is not counted).
    pub fn unacked_submits(&self) -> usize {
        self.resend_window
            .iter()
            .filter(|m| matches!(m, UstorMsg::Submit(_)))
            .count()
    }

    /// When the session is idle in piggyback commit mode, the COMMIT of
    /// the last operation is still waiting for a SUBMIT to ride on; this
    /// returns it (at most once) so the embedding can send it explicitly
    /// and the server can garbage-collect its pending list. The COMMIT
    /// also enters the resend window, replacing any older one.
    pub fn flush_commit(&mut self) -> Option<UstorMsg> {
        if self.proto.is_idle() {
            let msg = self.proto.take_held_commit().map(UstorMsg::Commit)?;
            self.retain_for_resend(&msg);
            Some(msg)
        } else {
            None
        }
    }

    /// Takes the completion of `ticket` if it has arrived (each result
    /// can be taken once; the [`Event::Completed`] stream is unaffected).
    pub fn take_result(&mut self, ticket: OpTicket) -> Option<FaustCompletion> {
        self.results.remove(&ticket.0)
    }

    /// Whether `ticket` has completed (without consuming the result).
    pub fn is_complete(&self, ticket: OpTicket) -> bool {
        self.results.contains_key(&ticket.0)
    }

    /// Drains every accumulated event, oldest first, each stamped with
    /// the protocol time at which it occurred.
    pub fn take_events(&mut self) -> Vec<(u64, Event)> {
        self.events.drain(..).collect()
    }

    /// Next accumulated event, if any.
    pub fn poll_event(&mut self) -> Option<(u64, Event)> {
        self.events.pop_front()
    }

    /// Converts the protocol's notifications into events (in order) and
    /// strips them off the transmission half.
    fn absorb(&mut self, actions: Actions, now: u64) -> SessionOutput {
        for note in actions.notifications {
            let event = match note {
                Notification::Completed(completion) => {
                    let ticket = self
                        .pending_tickets
                        .pop_front()
                        .expect("a completion without a submitted user op");
                    self.results.insert(ticket.0, completion.clone());
                    Event::Completed { ticket, completion }
                }
                Notification::Stable(cut) => Event::Stable { cut },
                Notification::Failed(reason) => Event::Violation { reason },
            };
            self.events.push_back((now, event));
        }
        // Every server-bound SUBMIT and COMMIT enters the resend window
        // here — the one funnel all entry points share — so the window
        // is complete regardless of which embedding (handle, driver,
        // simulator) drives the core.
        for msg in &actions.to_server {
            self.retain_for_resend(msg);
        }
        SessionOutput {
            to_server: actions.to_server,
            offline: actions.offline,
        }
    }

    /// Appends one outgoing message to the resend window, keeping the
    /// window's COMMIT invariant: at most one COMMIT is retained, and a
    /// newer commitment — standalone, or piggybacked on a SUBMIT —
    /// evicts the older one (replaying a subsumed COMMIT after the
    /// server stored a newer one would regress its record of this
    /// client's version).
    fn retain_for_resend(&mut self, msg: &UstorMsg) {
        match msg {
            UstorMsg::Submit(submit) => {
                if submit.piggyback.is_some() {
                    self.resend_window
                        .retain(|w| !matches!(w, UstorMsg::Commit(_)));
                }
                self.resend_window.push_back(msg.clone());
            }
            UstorMsg::Commit(_) => {
                self.resend_window
                    .retain(|w| !matches!(w, UstorMsg::Commit(_)));
                self.resend_window.push_back(msg.clone());
            }
            UstorMsg::Reply(_) => {}
        }
    }
}

/// One client's endpoint on an in-process offline medium (the paper's
/// client-to-client communication method): senders to every peer plus an
/// inbox. Build a full mesh with [`offline_mesh`]. Deployments without a
/// side channel (e.g. the CLI across real hosts) run without one — the
/// probe machinery then idles and stability spreads through reads alone.
pub struct OfflineLink {
    peers: Vec<Sender<OfflineMsg>>,
    inbox: Receiver<OfflineMsg>,
}

impl OfflineLink {
    /// Sends `msg` to `to` (best-effort: a departed peer is silence, not
    /// an error — exactly the paper's asynchronous offline medium).
    pub fn send(&self, to: ClientId, msg: OfflineMsg) {
        if let Some(tx) = self.peers.get(to.index()) {
            let _ = tx.send(msg);
        }
    }

    /// A message from a peer, if one is waiting.
    pub fn try_recv(&self) -> Option<OfflineMsg> {
        self.inbox.try_recv().ok()
    }
}

/// Builds the full offline mesh for `n` clients: link `i` belongs to
/// client `i`.
pub fn offline_mesh(n: usize) -> Vec<OfflineLink> {
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .map(|inbox| OfflineLink {
            peers: txs.clone(),
            inbox,
        })
        .collect()
}

/// Configuration of a live [`FaustHandle`].
#[derive(Debug, Clone, Copy)]
pub struct HandleConfig {
    /// FAUST protocol tuning; `probe_period` is wall milliseconds here.
    pub faust: FaustConfig,
    /// How often the internal protocol clock ticks (probes, dummy reads,
    /// queued-work starts).
    pub tick_interval: Duration,
    /// Signature scheme for keys derived from the session's key seed.
    pub scheme: SigScheme,
}

impl Default for HandleConfig {
    fn default() -> Self {
        HandleConfig {
            faust: FaustConfig::default(),
            tick_interval: Duration::from_millis(10),
            scheme: SigScheme::Hmac,
        }
    }
}

/// A live fail-aware session: one client of a FAUST deployment, bound to
/// one [`ClientTransport`] connection. See the module docs.
///
/// # Example
///
/// ```
/// use faust_core::handle::{Event, FaustHandle, HandleConfig};
/// use faust_core::runtime::spawn_engine;
/// use faust_types::{ClientId, Value};
/// use faust_ustor::UstorServer;
/// use std::time::Duration;
///
/// // A one-client deployment over the in-process channel transport.
/// let (transport, mut conns) = faust_net::channel::pair(1);
/// let engine = spawn_engine(1, Box::new(UstorServer::new(1)), transport);
/// let mut handle = FaustHandle::new(
///     ClientId::new(0),
///     1,
///     b"doc-example",
///     &HandleConfig::default(),
///     Box::new(conns.remove(0)),
/// );
/// let ticket = handle.write(Value::from("hello"));
/// let done = handle.wait(ticket, Duration::from_secs(5)).unwrap();
/// assert_eq!(done.timestamp, 1);
/// handle.disconnect();
/// engine.join().unwrap();
/// ```
pub struct FaustHandle {
    core: SessionCore,
    transport: Option<Box<dyn ClientTransport>>,
    offline: Option<OfflineLink>,
    /// Wall-clock anchor of the protocol clock.
    epoch: Instant,
    /// Protocol time at `epoch` (continues across reconnects and, for
    /// resumed sessions, across handles).
    clock_base: u64,
    tick_interval: Duration,
    next_tick: Instant,
    /// Server-bound messages not yet on the wire (transport down).
    outbox: VecDeque<UstorMsg>,
    /// Auto-reconnect: the connection factory, if armed.
    dialer: Option<Box<dyn ClientDialer>>,
    policy: ReconnectPolicy,
    /// Jitter stream (seeded `jitter_seed ^ client id`).
    rng: SmallRng,
    /// Dial attempts since the last *confirmed* resume (one that carried
    /// at least one server message).
    attempt: u32,
    /// When the next auto-reconnect dial is due; `None` when idle,
    /// exhausted, or connected.
    next_attempt_at: Option<Instant>,
    /// How the last connection ended (drives the backoff penalty).
    last_cause: DisconnectCause,
    /// Whether the current connection has delivered any server message —
    /// the classification bit behind [`DisconnectCause::Overloaded`].
    got_msg_since_attach: bool,
    /// A resume happened but no message has confirmed it yet; the
    /// attempt counter keeps climbing until one does.
    resumed_unconfirmed: bool,
    stats: HandleStats,
}

impl FaustHandle {
    /// Builds a fresh session for client `id` of `n` over `transport`,
    /// with keys derived from `key_seed` under `config.scheme` (every
    /// client of the deployment must derive from the same seed).
    ///
    /// # Panics
    ///
    /// Panics if `id ≥ n` or `n` is zero.
    pub fn new(
        id: ClientId,
        n: usize,
        key_seed: &[u8],
        config: &HandleConfig,
        transport: Box<dyn ClientTransport>,
    ) -> Self {
        let keys = KeySet::generate_with(config.scheme, n, key_seed);
        let proto = FaustClient::new(
            id,
            n,
            keys.keypair(id.as_u32()).expect("generated").clone(),
            keys.registry(),
            config.faust,
        );
        Self::from_core(SessionCore::new(proto), config.tick_interval, 0, transport)
    }

    /// Connects to a `faust serve` (or any [`faust_net::TcpServerTransport`])
    /// endpoint and builds the session over it.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from connecting.
    ///
    /// # Panics
    ///
    /// Panics if `id ≥ n` or `n` is zero.
    pub fn connect_tcp(
        addr: std::net::SocketAddr,
        id: ClientId,
        n: usize,
        key_seed: &[u8],
        config: &HandleConfig,
    ) -> std::io::Result<Self> {
        let conn = faust_net::tcp::connect(addr, id)?;
        Ok(Self::new(id, n, key_seed, config, Box::new(conn)))
    }

    /// Wraps an existing [`SessionCore`] (e.g. resumed from a previous
    /// server incarnation) around a transport. `clock_base` is the
    /// protocol time the session has already lived through — time never
    /// rewinds for a resumed session. The core's resend window — any
    /// signed SUBMIT whose reply was never processed — is replayed over
    /// the new transport immediately, byte-identically, exactly as after
    /// a reconnect (empty for a fresh core, so this is free there).
    pub fn from_core(
        core: SessionCore,
        tick_interval: Duration,
        clock_base: u64,
        transport: Box<dyn ClientTransport>,
    ) -> Self {
        let now = Instant::now();
        let mut handle = FaustHandle {
            core,
            transport: None,
            offline: None,
            epoch: now,
            clock_base,
            tick_interval,
            next_tick: now + tick_interval,
            outbox: VecDeque::new(),
            dialer: None,
            policy: ReconnectPolicy::default(),
            rng: SmallRng::seed_from_u64(0),
            attempt: 0,
            next_attempt_at: None,
            last_cause: DisconnectCause::TransportLoss,
            got_msg_since_attach: false,
            resumed_unconfirmed: false,
            stats: HandleStats::default(),
        };
        handle.attach(transport);
        handle.flush_outbox();
        handle
    }

    /// Rebuilds a session from a persisted [`SessionState`] (see
    /// [`crate::persist`]) over `transport`, deriving keys from
    /// `key_seed` exactly as [`FaustHandle::new`] does. The protocol
    /// clock continues from the snapshot's, the resend window is
    /// replayed first, and — when nothing was in flight — a resume
    /// probe ([`SessionCore::probe_resume`]) round-trips the restored
    /// version against the server, so a rolled-back state file surfaces
    /// as [`Event::Violation`] with `Fault::StaleClientState` right
    /// away. `config.faust` is ignored: the protocol configuration
    /// travels inside the snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the derived keypair does not match the snapshot's
    /// client id (wrong `key_seed` or `config.scheme`).
    pub fn resume_from_state(
        state: SessionState,
        key_seed: &[u8],
        config: &HandleConfig,
        transport: Box<dyn ClientTransport>,
    ) -> Self {
        let n = state.proto.ustor.n as usize;
        let id = state.proto.ustor.id;
        let keys = KeySet::generate_with(config.scheme, n, key_seed);
        let (core, clock) = SessionCore::from_state(
            keys.keypair(id.as_u32()).expect("id < n").clone(),
            keys.registry(),
            state,
        );
        let mut handle = Self::from_core(core, config.tick_interval, clock, transport);
        let now = handle.now_ms();
        let out = handle.core.probe_resume(now);
        handle.dispatch(out);
        handle
    }

    /// Exports the session's resumable state for persistence (see
    /// [`crate::persist::save_session`]); `None` when the session has
    /// halted on a violation. The snapshot is stamped with the current
    /// protocol clock.
    pub fn export_state(&self) -> Option<SessionState> {
        self.core.export_state(self.now_ms())
    }

    /// Attaches an offline client-to-client link (builder style).
    #[must_use]
    pub fn with_offline(mut self, link: OfflineLink) -> Self {
        self.offline = Some(link);
        self
    }

    /// Arms auto-reconnect (builder style): on transport loss the handle
    /// redials through `dialer` under `policy`, replaying the resend
    /// window on every resume. See the module docs' *Lifecycle* section.
    #[must_use]
    pub fn with_auto_reconnect(
        mut self,
        dialer: Box<dyn ClientDialer>,
        policy: ReconnectPolicy,
    ) -> Self {
        self.rng = SmallRng::seed_from_u64(policy.jitter_seed ^ u64::from(self.id().as_u32()));
        self.dialer = Some(dialer);
        self.policy = policy;
        self
    }

    /// Resilience counters: disconnects, sheds, dials, resumes, resends.
    pub fn stats(&self) -> HandleStats {
        self.stats
    }

    /// This session's client id.
    pub fn id(&self) -> ClientId {
        self.core.id()
    }

    /// The session's protocol clock, in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.clock_base + self.epoch.elapsed().as_millis() as u64
    }

    /// The violation that halted this session, if any.
    pub fn failure(&self) -> Option<&FailReason> {
        self.core.failure()
    }

    /// The current stability cut `W_i`.
    pub fn stability_cut(&self) -> StabilityCut {
        self.core.stability_cut()
    }

    /// Submitted-but-uncompleted user operations.
    pub fn backlog(&self) -> usize {
        self.core.backlog()
    }

    /// Whether the transport is currently attached and alive.
    pub fn is_connected(&self) -> bool {
        self.transport.is_some()
    }

    /// Submits a write of this client's register. Non-blocking: the
    /// operation pipelines behind any in-flight ones.
    pub fn write(&mut self, value: Value) -> OpTicket {
        let now = self.now_ms();
        let (ticket, out) = self.core.submit(UserOp::Write(value), now);
        self.dispatch(out);
        ticket
    }

    /// Submits a read of `register`. Non-blocking.
    pub fn read(&mut self, register: ClientId) -> OpTicket {
        let now = self.now_ms();
        let (ticket, out) = self.core.submit(UserOp::Read(register), now);
        self.dispatch(out);
        ticket
    }

    /// Drives the session without blocking — delivers whatever input has
    /// already arrived, runs any due protocol tick — and returns the
    /// events produced since the last drain, each stamped with the
    /// protocol time (ms) at which it occurred.
    pub fn poll(&mut self) -> Vec<(u64, Event)> {
        self.step(Duration::ZERO);
        self.core.take_events()
    }

    /// Blocks until `ticket` completes, the session halts, the transport
    /// fails, or `timeout` elapses. Events produced while waiting stay
    /// queued for [`FaustHandle::poll`] / [`FaustHandle::run_for`]
    /// consumers; the returned completion itself is consumed.
    ///
    /// # Errors
    ///
    /// [`WaitError::Timeout`], [`WaitError::Disconnected`], or
    /// [`WaitError::Violation`] with the detected reason.
    pub fn wait(
        &mut self,
        ticket: OpTicket,
        timeout: Duration,
    ) -> Result<FaustCompletion, WaitError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(done) = self.core.take_result(ticket) {
                return Ok(done);
            }
            if let Some(reason) = self.core.failure() {
                return Err(WaitError::Violation(reason.clone()));
            }
            if self.transport.is_none() && self.next_attempt_at.is_none() {
                // Disconnected with no reconnect pending (none armed, or
                // the attempt budget ran out). With an attempt pending we
                // keep stepping: the dial may yet resume the session.
                return Err(WaitError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(WaitError::Timeout);
            }
            self.step(deadline - now);
        }
    }

    /// Runs the event loop for `duration` (ticking, probing, delivering)
    /// and returns every event produced.
    pub fn run_for(&mut self, duration: Duration) -> Vec<(u64, Event)> {
        let deadline = Instant::now() + duration;
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.step(deadline - now);
        }
        self.core.take_events()
    }

    /// Resumes the session over a new connection after a transport
    /// failure (or an explicit [`FaustHandle::disconnect`]): the resend
    /// window — every signed SUBMIT whose reply was never processed
    /// (including ones that died on the old wire) plus the latest
    /// COMMIT — is replayed byte-identically in wire order. Also
    /// re-arms the auto-reconnect attempt budget.
    pub fn reconnect(&mut self, transport: Box<dyn ClientTransport>) {
        self.attempt = 0;
        self.stats.resumes += 1;
        self.resumed_unconfirmed = true;
        self.attach(transport);
        self.flush_outbox();
    }

    /// Installs `transport` and rebuilds the outbox for a resume: the
    /// whole resend window, oldest first, in wire order. Everything the
    /// old outbox still held — unsent SUBMITs and the latest COMMIT —
    /// is already in the window, so replacing the outbox never loses a
    /// message and never duplicates one.
    fn attach(&mut self, transport: Box<dyn ClientTransport>) {
        let submits = |msgs: &[UstorMsg]| {
            msgs.iter()
                .filter(|m| matches!(m, UstorMsg::Submit(_)))
                .count() as u64
        };
        let unsent_submits = submits(self.outbox.make_contiguous());
        let window = self.core.resend_messages();
        self.stats.resent_submits += submits(&window).saturating_sub(unsent_submits);
        self.outbox = window.into();
        self.transport = Some(transport);
        self.got_msg_since_attach = false;
        self.next_attempt_at = None;
    }

    /// Detaches from the server (the connection closes; a `faust serve`
    /// process counts this client as departed). Session state is kept —
    /// [`FaustHandle::reconnect`] resumes it. If the session is idle in
    /// piggyback commit mode, the final COMMIT is sent first so the
    /// server can garbage-collect.
    pub fn disconnect(&mut self) {
        self.attempt = 0;
        self.next_attempt_at = None;
        if let Some(commit) = self.core.flush_commit() {
            self.outbox.push_back(commit);
        }
        self.flush_outbox();
        self.transport = None;
    }

    /// Tears the session down, returning the [`SessionCore`] (protocol
    /// state, queued events) and the protocol clock for a later
    /// [`FaustHandle::from_core`] resumption.
    pub fn into_core(mut self) -> (SessionCore, u64) {
        let clock = self.now_ms();
        self.disconnect();
        (self.core, clock)
    }

    /// One scheduling step: deliver available input, run due ticks, wait
    /// at most `budget` for something to happen.
    fn step(&mut self, budget: Duration) {
        self.drain_offline();
        self.run_due_tick();
        // Wait for server traffic, but never past the next tick.
        let until_tick = self.next_tick.saturating_duration_since(Instant::now());
        let wait = budget.min(until_tick);
        match &self.transport {
            Some(transport) => match transport.recv_timeout(wait) {
                Ok(Some(msg)) => {
                    self.deliver(msg);
                    // Greedily drain whatever else already arrived (a
                    // group-commit flush releases replies in bursts).
                    while let Some(transport) = &self.transport {
                        match transport.recv_timeout(Duration::ZERO) {
                            Ok(Some(msg)) => self.deliver(msg),
                            Ok(None) => break,
                            Err(TransportClosed) => {
                                self.mark_disconnected();
                                break;
                            }
                        }
                    }
                }
                Ok(None) => {}
                Err(TransportClosed) => self.mark_disconnected(),
            },
            None => match self.next_attempt_at {
                // Disconnected with a dial due: attempt it now.
                Some(at) if Instant::now() >= at => self.try_dial(),
                // Dial scheduled but not due: sleep up to it.
                Some(at) => {
                    let until_dial = at.saturating_duration_since(Instant::now());
                    let wait = wait.min(until_dial);
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                }
                // Disconnected for good: nothing to wait on but time.
                None => {
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                }
            },
        }
        self.drain_offline();
        self.run_due_tick();
    }

    fn run_due_tick(&mut self) {
        if Instant::now() < self.next_tick {
            return;
        }
        let now = self.now_ms();
        let out = self.core.tick(now);
        self.dispatch(out);
        self.next_tick = Instant::now() + self.tick_interval;
    }

    fn deliver(&mut self, msg: UstorMsg) {
        self.got_msg_since_attach = true;
        if self.resumed_unconfirmed {
            // The resumed connection is actually talking to us: the
            // attempt budget resets for the next outage.
            self.resumed_unconfirmed = false;
            self.attempt = 0;
        }
        let UstorMsg::Reply(reply) = msg else {
            return; // the engine sends only replies
        };
        let now = self.now_ms();
        let out = self.core.handle_reply(reply, now);
        self.dispatch(out);
    }

    fn drain_offline(&mut self) {
        loop {
            let Some(link) = &self.offline else { return };
            let Some(msg) = link.try_recv() else { return };
            let now = self.now_ms();
            let out = self.core.handle_offline(msg, now);
            self.dispatch(out);
        }
    }

    fn dispatch(&mut self, out: SessionOutput) {
        self.outbox.extend(out.to_server);
        self.flush_outbox();
        if let Some(link) = &self.offline {
            for (to, msg) in out.offline {
                link.send(to, msg);
            }
        }
    }

    fn flush_outbox(&mut self) {
        while let Some(msg) = self.outbox.front() {
            let Some(transport) = &self.transport else {
                return;
            };
            if transport.send(msg).is_err() {
                self.mark_disconnected();
                return;
            }
            self.outbox.pop_front();
        }
    }

    fn mark_disconnected(&mut self) {
        if self.transport.take().is_none() {
            return;
        }
        // Classify by shape: a connection that died before carrying any
        // server message looks like the reactor's shed-on-accept.
        let cause = if self.got_msg_since_attach {
            DisconnectCause::TransportLoss
        } else {
            DisconnectCause::Overloaded
        };
        self.last_cause = cause;
        self.stats.disconnects += 1;
        if cause == DisconnectCause::Overloaded {
            self.stats.overload_sheds += 1;
        }
        let now = self.now_ms();
        self.core.note_disconnected(cause, now);
        self.schedule_attempt();
    }

    /// Schedules the next auto-reconnect dial under the backoff policy
    /// (no-op when auto-reconnect is unarmed, the session has halted, or
    /// the attempt budget is exhausted).
    fn schedule_attempt(&mut self) {
        if self.dialer.is_none() || self.core.failure().is_some() {
            return;
        }
        self.attempt += 1;
        if self.attempt > self.policy.max_attempts {
            self.next_attempt_at = None;
            return;
        }
        let backoff = self
            .policy
            .backoff(self.attempt, self.last_cause, &mut self.rng);
        self.next_attempt_at = Some(Instant::now() + backoff);
        let now = self.now_ms();
        self.core.events.push_back((
            now,
            Event::Reconnecting {
                attempt: self.attempt,
                backoff,
            },
        ));
    }

    /// One auto-reconnect dial attempt; on success the session resumes
    /// (resend window queued and flushed), on failure the next attempt is
    /// scheduled.
    fn try_dial(&mut self) {
        self.next_attempt_at = None;
        let Some(dialer) = self.dialer.as_mut() else {
            return;
        };
        self.stats.dial_attempts += 1;
        match dialer.dial(self.policy.connect_timeout) {
            Ok(transport) => {
                self.stats.resumes += 1;
                self.resumed_unconfirmed = true;
                self.attach(transport);
                let now = self.now_ms();
                self.core.events.push_back((now, Event::Resumed));
                self.flush_outbox();
            }
            Err(_) => self.schedule_attempt(),
        }
    }
}

impl std::fmt::Debug for FaustHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaustHandle")
            .field("id", &self.id())
            .field("connected", &self.is_connected())
            .field("backlog", &self.backlog())
            .field("clock_ms", &self.now_ms())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::spawn_engine;
    use faust_net::channel;
    use faust_ustor::UstorServer;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    fn quiet_config(pipeline: usize) -> HandleConfig {
        HandleConfig {
            faust: FaustConfig {
                probe_period: 1_000_000,
                dummy_reads: false,
                pipeline,
                ..FaustConfig::default()
            },
            tick_interval: Duration::from_millis(2),
            ..HandleConfig::default()
        }
    }

    #[test]
    fn pipelined_tickets_complete_in_order_with_events() {
        let n = 1;
        let (transport, mut conns) = channel::pair(n);
        let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
        let mut h = FaustHandle::new(
            c(0),
            n,
            b"handle-test",
            &quiet_config(3),
            Box::new(conns.remove(0)),
        );
        let tickets: Vec<OpTicket> = (0..5).map(|k| h.write(Value::unique(0, k))).collect();
        // Waiting on the *last* ticket waits out the whole FIFO.
        let done = h
            .wait(tickets[4], Duration::from_secs(5))
            .expect("completes");
        assert_eq!(done.timestamp, 5);
        // The event stream saw every completion, in ticket order, plus
        // self-stability cuts.
        let events = h.poll();
        let completed: Vec<u64> = events
            .iter()
            .filter_map(|(_, e)| match e {
                Event::Completed { ticket, .. } => Some(ticket.index()),
                _ => None,
            })
            .collect();
        assert_eq!(completed, vec![0, 1, 2, 3, 4]);
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, Event::Stable { .. })));
        assert!(h.failure().is_none());
        h.disconnect();
        engine.join().unwrap();
    }

    #[test]
    fn wait_on_an_early_ticket_returns_its_own_completion() {
        let n = 1;
        let (transport, mut conns) = channel::pair(n);
        let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
        let mut h = FaustHandle::new(
            c(0),
            n,
            b"handle-early",
            &quiet_config(2),
            Box::new(conns.remove(0)),
        );
        let t0 = h.write(Value::from("first"));
        let t1 = h.read(c(0));
        let d0 = h.wait(t0, Duration::from_secs(5)).unwrap();
        assert_eq!(d0.timestamp, 1);
        let d1 = h.wait(t1, Duration::from_secs(5)).unwrap();
        assert_eq!(d1.read_value, Some(Some(Value::from("first"))));
        h.disconnect();
        engine.join().unwrap();
    }

    #[test]
    fn server_hangup_surfaces_as_disconnected_event() {
        let n = 1;
        let (transport, mut conns) = channel::pair(n);
        // No engine: dropping the server half closes the transport.
        drop(transport);
        let mut h = FaustHandle::new(
            c(0),
            n,
            b"handle-drop",
            &quiet_config(1),
            Box::new(conns.remove(0)),
        );
        let t0 = h.write(Value::from("lost"));
        assert_eq!(
            h.wait(t0, Duration::from_millis(200)),
            Err(WaitError::Disconnected)
        );
        let events = h.poll();
        assert_eq!(
            events
                .iter()
                .filter(|(_, e)| matches!(e, Event::Disconnected { .. }))
                .count(),
            1,
            "exactly one Disconnected event: {events:?}"
        );
        // The unsent message is retained for a reconnect.
        assert!(!h.is_connected());
        assert_eq!(h.backlog(), 1);
    }

    #[test]
    fn reconnect_resumes_with_retained_messages() {
        let n = 1;
        // First transport dies before the submit can be delivered.
        let (transport, mut conns) = channel::pair(n);
        drop(transport);
        let mut h = FaustHandle::new(
            c(0),
            n,
            b"handle-reconnect",
            &quiet_config(1),
            Box::new(conns.remove(0)),
        );
        let t0 = h.write(Value::from("retry"));
        assert_eq!(
            h.wait(t0, Duration::from_millis(100)),
            Err(WaitError::Disconnected)
        );
        // A fresh incarnation appears; the handle resumes and the
        // retained SUBMIT completes.
        let (transport, mut conns) = channel::pair(n);
        let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
        h.reconnect(Box::new(conns.remove(0)));
        let done = h.wait(t0, Duration::from_secs(5)).expect("resumed");
        assert_eq!(done.timestamp, 1);
        h.disconnect();
        engine.join().unwrap();
    }

    #[test]
    fn backoff_doubles_caps_jitters_and_penalises_overload() {
        let policy = ReconnectPolicy {
            jitter_seed: 7,
            ..ReconnectPolicy::default()
        };
        let mut rng = SmallRng::seed_from_u64(7);
        // Attempt k draws from [base/2, base], base = 50·2^(k-1) ≤ 5000.
        for k in 1..=12u32 {
            let base = (50u64 << (k - 1)).min(5_000);
            let d = policy
                .backoff(k, DisconnectCause::TransportLoss, &mut rng)
                .as_millis() as u64;
            assert!(
                d >= base / 2 && d <= base,
                "attempt {k}: {d}ms outside [{}, {base}]",
                base / 2
            );
        }
        // An overload shed costs `overload_penalty` extra doublings:
        // attempt 1 behaves like attempt 1 + 2 (base 200ms, not 50ms).
        let d = policy
            .backoff(1, DisconnectCause::Overloaded, &mut rng)
            .as_millis() as u64;
        assert!((100..=200).contains(&d), "overload attempt 1: {d}ms");
    }

    /// The regression for sent-but-unacked in-flight ops: the SUBMIT made
    /// it onto the wire, the server (incarnation) died before any reply,
    /// and auto-reconnect must replay it — not strand it — on the next
    /// incarnation.
    #[test]
    fn auto_reconnect_resends_inflight_submit_after_server_loss() {
        let n = 1;
        // First incarnation buffers the SUBMIT and dies without replying.
        let (transport, mut conns) = channel::pair(n);
        let (dialer, dial_tx) = faust_net::ChannelDialer::new();
        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            connect_timeout: Duration::from_millis(10),
            ..ReconnectPolicy::default()
        };
        let mut h = FaustHandle::new(
            c(0),
            n,
            b"handle-autoreconnect",
            &quiet_config(1),
            Box::new(conns.remove(0)),
        )
        .with_auto_reconnect(Box::new(dialer), policy);
        let t0 = h.write(Value::from("inflight"));
        assert_eq!(h.core.unacked_submits(), 1, "the SUBMIT is in flight");
        drop(transport);
        // Second incarnation is real; the dialer hands it out on the
        // first due attempt.
        let (transport, mut conns) = channel::pair(n);
        let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
        dial_tx.send(conns.remove(0)).unwrap();

        let done = h.wait(t0, Duration::from_secs(5)).expect("resent");
        assert_eq!(done.timestamp, 1);
        let events = h.poll();
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, Event::Disconnected { .. })),
            "missing Disconnected: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, Event::Reconnecting { .. })),
            "missing Reconnecting: {events:?}"
        );
        assert!(
            events.iter().any(|(_, e)| matches!(e, Event::Resumed)),
            "missing Resumed: {events:?}"
        );
        let stats = h.stats();
        assert_eq!(stats.disconnects, 1);
        assert_eq!(
            stats.resent_submits, 1,
            "the sent-but-unacked op was replayed"
        );
        assert!(stats.dial_attempts >= 1 && stats.resumes >= 1);
        h.disconnect();
        engine.join().unwrap();
    }

    #[test]
    fn auto_reconnect_gives_up_after_max_attempts() {
        let n = 1;
        let (transport, mut conns) = channel::pair(n);
        let (dialer, _dial_tx) = faust_net::ChannelDialer::new();
        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            max_attempts: 3,
            connect_timeout: Duration::from_millis(5),
            ..ReconnectPolicy::default()
        };
        let mut h = FaustHandle::new(
            c(0),
            n,
            b"handle-giveup",
            &quiet_config(1),
            Box::new(conns.remove(0)),
        )
        .with_auto_reconnect(Box::new(dialer), policy);
        let t0 = h.write(Value::from("doomed"));
        drop(transport);
        // Every dial attempt fails (nothing pushed into the dialer);
        // after the budget runs out, wait reports Disconnected.
        assert_eq!(
            h.wait(t0, Duration::from_secs(5)),
            Err(WaitError::Disconnected)
        );
        assert_eq!(h.stats().dial_attempts, 3);
        let events = h.poll();
        assert_eq!(
            events
                .iter()
                .filter(|(_, e)| matches!(e, Event::Reconnecting { .. }))
                .count(),
            3
        );
        // A manual reconnect still works and re-arms the budget.
        let (transport, mut conns) = channel::pair(n);
        let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
        h.reconnect(Box::new(conns.remove(0)));
        let done = h.wait(t0, Duration::from_secs(5)).expect("manual resume");
        assert_eq!(done.timestamp, 1);
        h.disconnect();
        engine.join().unwrap();
    }

    /// Feeds `msgs` to the server and pumps every reply back into the
    /// core until quiescent (same shape as the persist-module tests).
    fn pump(server: &mut UstorServer, core: &mut SessionCore, msgs: Vec<UstorMsg>, now: u64) {
        use faust_ustor::Server;
        let mut queue = msgs;
        while !queue.is_empty() {
            let msg = queue.remove(0);
            let replies = match msg {
                UstorMsg::Submit(m) => server.on_submit(core.id(), m),
                UstorMsg::Commit(m) => server.on_commit(core.id(), m),
                UstorMsg::Reply(_) => Vec::new(),
            };
            for (_, reply) in replies {
                queue.extend(core.handle_reply(reply, now).to_server);
            }
        }
    }

    #[test]
    fn resend_window_retains_the_latest_commit_and_only_the_latest() {
        // A COMMIT lost with a dead connection is not harmless: until
        // the client's next commitment reaches the server, peers cannot
        // anchor its next pending SUBMIT (Algorithm 1 line 41) and
        // would convict an honest server of BadProofSignature. The
        // window therefore keeps the newest COMMIT — and only the
        // newest, since replaying a subsumed one would regress the
        // server's record of this client's version.
        let keys = KeySet::generate(2, b"resend-commit");
        let mut server = UstorServer::new(2);
        let mut core = SessionCore::new(FaustClient::new(
            c(0),
            2,
            keys.keypair(0).unwrap().clone(),
            keys.registry(),
            FaustConfig {
                dummy_reads: false,
                ..FaustConfig::default()
            },
        ));

        // Op 1 completes: its SUBMIT is popped, its COMMIT retained.
        let (_, out) = core.submit(UserOp::Write(Value::from("one")), 1);
        assert!(matches!(core.resend_messages()[..], [UstorMsg::Submit(_)]));
        pump(&mut server, &mut core, out.to_server, 1);
        let window = core.resend_messages();
        assert!(
            matches!(window[..], [UstorMsg::Commit(_)]),
            "completed op leaves exactly its COMMIT behind: {window:?}"
        );
        assert_eq!(core.unacked_submits(), 0);
        let first_commit = window[0].encode();

        // Op 2 goes in flight: the window replays COMMIT-then-SUBMIT in
        // wire order.
        let (_, out) = core.submit(UserOp::Write(Value::from("two")), 2);
        let window = core.resend_messages();
        assert!(
            matches!(window[..], [UstorMsg::Commit(_), UstorMsg::Submit(_)]),
            "retained COMMIT precedes the new SUBMIT: {window:?}"
        );
        assert_eq!(core.unacked_submits(), 1);

        // Op 2's reply pops through SUBMIT 2 *and* the older COMMIT
        // (FIFO delivery proved it arrived), and the newer COMMIT
        // replaces it.
        pump(&mut server, &mut core, out.to_server, 2);
        let window = core.resend_messages();
        assert!(
            matches!(window[..], [UstorMsg::Commit(_)]),
            "only the newest COMMIT is retained: {window:?}"
        );
        assert_ne!(window[0].encode(), first_commit, "it is the newer one");

        // Simulated reconnect: replaying the window is harmless (the
        // server stores commitments idempotently) and the next op still
        // completes exactly once.
        let replay = core.resend_messages();
        pump(&mut server, &mut core, replay, 3);
        let (t3, out) = core.submit(UserOp::Read(c(0)), 4);
        pump(&mut server, &mut core, out.to_server, 4);
        assert!(core.is_complete(t3));
        assert!(core.failure().is_none());
    }
}
