//! The append-only write-ahead log.
//!
//! One file (`wal.bin`), one fixed header, then records back to back:
//!
//! ```text
//!   header:  "FAUSTWAL" | version: u32 | n: u32 | base_seq: u64      (24 B)
//!   record:  len: u32 | sha256(payload): 32 B | payload              (36 B + len)
//!   payload: seq: u64 | LogRecord wire encoding
//! ```
//!
//! All integers are big-endian, matching `faust_types::wire`. `base_seq`
//! is the sequence number of the file's first record; sequence numbers
//! are global (they survive log rotation), strictly consecutive, and
//! stored *inside* the checksummed payload — so a duplicated tail record
//! repeats a sequence number ([`StoreError::DuplicateRecord`]) and a
//! spliced-out middle leaves a gap ([`StoreError::SequenceGap`]), both of
//! which scanning detects even though every individual record checksums
//! cleanly.
//!
//! Appends are a single `write_all` of the fully assembled record, then
//! optionally `fsync` ([`Durability::Always`](crate::Durability)) —
//! the caller acknowledges the client only after the append returns.
//!
//! Scanning ([`Wal::scan`]) is strict: any anomaly is a structured
//! [`StoreError`], including a torn final record. A torn tail after a
//! real crash is *expected* (the half-written record was never
//! acknowledged), but silently dropping it is exactly the habit a
//! fail-aware store must not have — the operator decides, explicitly,
//! with [`truncate_tail_records`]; an honest operator drops the torn
//! bytes only, a malicious one uses the same tool to roll history back —
//! and learns from `docs/persistence.md` why clients catch the latter.

use crate::codec::LogRecord;
use crate::StoreError;
use faust_crypto::sha256::sha256;
use faust_types::{Wire, WireError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Magic string opening every log file.
pub const WAL_MAGIC: &[u8; 8] = b"FAUSTWAL";
/// Current log format version.
pub const WAL_VERSION: u32 = 1;
/// Header size in bytes: magic + version + n + base_seq.
pub const WAL_HEADER_LEN: usize = 8 + 4 + 4 + 8;
/// Per-record overhead in bytes: length prefix + SHA-256 digest.
pub const RECORD_OVERHEAD: usize = 4 + 32;
/// Upper bound on one record's payload; anything larger is corruption.
pub const MAX_RECORD_LEN: u64 = 1 << 26;

/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.bin";

/// A parsed log header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalHeader {
    /// Client count the state is for.
    pub n: usize,
    /// Sequence number of the file's first record.
    pub base_seq: u64,
}

impl WalHeader {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(WAL_HEADER_LEN);
        out.extend_from_slice(WAL_MAGIC);
        (WAL_VERSION).encode_into(&mut out);
        (self.n as u32).encode_into(&mut out);
        self.base_seq.encode_into(&mut out);
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < WAL_HEADER_LEN {
            return Err(StoreError::TruncatedHeader { file: "wal" });
        }
        if &bytes[..8] != WAL_MAGIC {
            return Err(StoreError::BadMagic { file: "wal" });
        }
        let mut rest = &bytes[8..WAL_HEADER_LEN];
        let version = u32::decode_from(&mut rest).expect("sized above");
        if version != WAL_VERSION {
            return Err(StoreError::UnsupportedVersion {
                file: "wal",
                version,
            });
        }
        let n = u32::decode_from(&mut rest).expect("sized above") as usize;
        let base_seq = u64::decode_from(&mut rest).expect("sized above");
        Ok(WalHeader { n, base_seq })
    }
}

/// One record recovered by a scan, with its byte span in the file.
#[derive(Debug, Clone)]
pub struct ScannedRecord {
    /// Global sequence number.
    pub seq: u64,
    /// The decoded record.
    pub record: LogRecord,
    /// Byte range of the whole record (length prefix included) within
    /// the log file.
    pub span: Range<usize>,
}

/// Result of a strict full-file scan.
#[derive(Debug)]
pub struct WalContents {
    /// The parsed header.
    pub header: WalHeader,
    /// Every record, in sequence order.
    pub records: Vec<ScannedRecord>,
}

impl WalContents {
    /// Sequence number the next appended record would carry.
    pub fn next_seq(&self) -> u64 {
        self.header.base_seq + self.records.len() as u64
    }
}

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    header: WalHeader,
    next_seq: u64,
    records: u64,
}

impl Wal {
    /// Creates a fresh log at `dir/wal.bin` (truncating any previous
    /// file) with the given header, via a temp file + atomic rename so a
    /// crash mid-create never leaves a half-written header.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn create(dir: &Path, n: usize, base_seq: u64, sync: bool) -> Result<Self, StoreError> {
        let path = dir.join(WAL_FILE);
        let tmp = dir.join("wal.tmp");
        let header = WalHeader { n, base_seq };
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&header.encode())?;
        if sync {
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        if sync {
            sync_dir(dir)?;
        }
        Ok(Wal {
            file,
            path,
            header,
            next_seq: base_seq,
            records: 0,
        })
    }

    /// Opens the existing log in `dir` for appending, after a strict
    /// scan; returns the log positioned at its end plus the scanned
    /// contents for replay.
    ///
    /// # Errors
    ///
    /// Any scan anomaly (see [`Wal::scan`]) or file-system error.
    pub fn open(dir: &Path) -> Result<(Self, WalContents), StoreError> {
        let path = dir.join(WAL_FILE);
        let contents = Self::scan(&path)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        let next_seq = contents.next_seq();
        Ok((
            Wal {
                file,
                path,
                header: contents.header,
                next_seq,
                records: contents.records.len() as u64,
            },
            contents,
        ))
    }

    /// Strictly parses the whole file at `path`: header, then every
    /// record. Never panics; any anomaly is a structured [`StoreError`]
    /// naming the first offending record.
    ///
    /// # Errors
    ///
    /// See [`StoreError`] — torn tails, checksum mismatches, undecodable
    /// payloads, duplicate or gapped sequence numbers, implausible
    /// lengths, header problems.
    pub fn scan(path: &Path) -> Result<WalContents, StoreError> {
        match Self::scan_prefix(path)? {
            (_, Some(anomaly)) => Err(anomaly),
            (contents, None) => Ok(contents),
        }
    }

    /// Tolerant variant of [`Wal::scan`]: parses the longest valid
    /// prefix and returns it *together with* the anomaly that stopped
    /// the scan, if any — never absorbing the anomaly silently. This is
    /// what [`truncate_tail_records`] builds on: repairing a torn tail
    /// requires reading the log that strict recovery (rightly) refuses.
    ///
    /// # Errors
    ///
    /// I/O and header problems are still hard errors — without a valid
    /// header there is no prefix to speak of.
    pub fn scan_prefix(path: &Path) -> Result<(WalContents, Option<StoreError>), StoreError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::scan_bytes(&bytes)
    }

    /// [`Wal::scan_prefix`] over an already-read buffer, for callers
    /// that also need the raw bytes (a second read of the file would
    /// open a window for the bytes to diverge from what was validated).
    fn scan_bytes(bytes: &[u8]) -> Result<(WalContents, Option<StoreError>), StoreError> {
        let header = WalHeader::decode(bytes)?;
        let mut records = Vec::new();
        let mut pos = WAL_HEADER_LEN;
        let mut seq = header.base_seq;
        let anomaly = loop {
            match parse_record_at(bytes, pos, seq) {
                Ok(None) => break None,
                Ok(Some(rec)) => {
                    pos = rec.span.end;
                    seq = rec.seq + 1;
                    records.push(rec);
                }
                Err(e) => break Some(e),
            }
        };
        Ok((WalContents { header, records }, anomaly))
    }

    /// Appends one record and, if `sync`, makes it durable before
    /// returning. The record is assembled into a single buffer and
    /// written with one `write_all`, so a crash leaves at most one torn
    /// record at the tail.
    ///
    /// # Errors
    ///
    /// Propagates write/sync errors; on error the caller must treat the
    /// record as *not* logged (and must not acknowledge the client).
    pub fn append(&mut self, record: &LogRecord, sync: bool) -> Result<u64, StoreError> {
        let mut payload = Vec::new();
        self.next_seq.encode_into(&mut payload);
        record.encode_into(&mut payload);
        let mut buf = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
        (payload.len() as u32).encode_into(&mut buf);
        buf.extend_from_slice(sha256(&payload).as_bytes());
        buf.extend_from_slice(&payload);
        self.file.write_all(&buf)?;
        if sync {
            self.file.sync_data()?;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records += 1;
        Ok(seq)
    }

    /// Makes every record appended so far durable with one `fsync` —
    /// the group-commit primitive: append a whole batch with
    /// `sync = false`, then pay the disk round-trip once.
    ///
    /// # Errors
    ///
    /// Propagates the sync error; the caller must treat every record
    /// appended since the last successful sync as *not* durable (and
    /// must not acknowledge the messages behind them).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records currently in this file (since the last rotation).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The client count recorded in the header.
    pub fn n(&self) -> usize {
        self.header.n
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses the record starting at byte `pos`, expected to carry sequence
/// number `seq`. `Ok(None)` at the exact end of the buffer; every
/// anomaly is the same structured [`StoreError`] a strict scan reports.
/// This is the single place that knows the record framing — [`Wal::scan`]
/// and [`LogCursor`] both step through it.
fn parse_record_at(
    bytes: &[u8],
    pos: usize,
    seq: u64,
) -> Result<Option<ScannedRecord>, StoreError> {
    if pos >= bytes.len() {
        return Ok(None);
    }
    let avail = bytes.len() - pos;
    if avail < RECORD_OVERHEAD {
        return Err(StoreError::TornRecord {
            seq,
            missing: RECORD_OVERHEAD - avail,
        });
    }
    let mut len_bytes = &bytes[pos..pos + 4];
    let len = u32::decode_from(&mut len_bytes).expect("sized above") as u64;
    if len > MAX_RECORD_LEN {
        return Err(StoreError::ImplausibleRecordLength { seq, len });
    }
    let need = RECORD_OVERHEAD + len as usize;
    if avail < need {
        return Err(StoreError::TornRecord {
            seq,
            missing: need - avail,
        });
    }
    let digest = &bytes[pos + 4..pos + RECORD_OVERHEAD];
    let payload = &bytes[pos + RECORD_OVERHEAD..pos + need];
    if sha256(payload).as_bytes() != digest {
        return Err(StoreError::RecordChecksum { seq });
    }
    let mut input = payload;
    let found_seq =
        u64::decode_from(&mut input).map_err(|error| StoreError::RecordCorrupt { seq, error })?;
    if found_seq < seq {
        return Err(StoreError::DuplicateRecord {
            expected: seq,
            found: found_seq,
        });
    }
    if found_seq > seq {
        return Err(StoreError::SequenceGap {
            expected: seq,
            found: found_seq,
        });
    }
    let record = LogRecord::decode_from(&mut input)
        .map_err(|error| StoreError::RecordCorrupt { seq, error })?;
    if !input.is_empty() {
        return Err(StoreError::RecordCorrupt {
            seq,
            error: WireError::TrailingBytes(input.len()),
        });
    }
    Ok(Some(ScannedRecord {
        seq,
        record,
        span: pos..pos + need,
    }))
}

/// A public, read-only, streaming iterator over a store directory's WAL —
/// the export cursor behind `faust-audit`'s history exporter.
///
/// Until now record iteration was recovery-internal ([`Wal::open`] hands
/// the scanned contents straight to replay); the cursor exposes the same
/// strictly validated sequence without opening the log for appending, so
/// auditors and exporters can walk a *live* server's log. Records are
/// parsed lazily from one snapshot read of the file; the first anomaly is
/// yielded as an `Err` item (naming the offending record, exactly as
/// strict recovery would) and ends the iteration.
#[derive(Debug)]
pub struct LogCursor {
    bytes: Vec<u8>,
    header: WalHeader,
    pos: usize,
    next_seq: u64,
    finished: bool,
}

impl LogCursor {
    /// Opens the WAL inside store directory `dir`.
    ///
    /// # Errors
    ///
    /// I/O and header problems; record anomalies surface during
    /// iteration instead.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::open_file(&dir.join(WAL_FILE))
    }

    /// Opens the WAL file at `path` directly.
    ///
    /// # Errors
    ///
    /// I/O and header problems; record anomalies surface during
    /// iteration instead.
    pub fn open_file(path: &Path) -> Result<Self, StoreError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let header = WalHeader::decode(&bytes)?;
        Ok(LogCursor {
            pos: WAL_HEADER_LEN,
            next_seq: header.base_seq,
            header,
            bytes,
            finished: false,
        })
    }

    /// The parsed WAL header.
    pub fn header(&self) -> WalHeader {
        self.header
    }

    /// Sequence number the next yielded record must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

impl Iterator for LogCursor {
    type Item = Result<ScannedRecord, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        match parse_record_at(&self.bytes, self.pos, self.next_seq) {
            Ok(None) => {
                self.finished = true;
                None
            }
            Ok(Some(rec)) => {
                self.pos = rec.span.end;
                self.next_seq = rec.seq + 1;
                Some(Ok(rec))
            }
            Err(e) => {
                self.finished = true;
                Some(Err(e))
            }
        }
    }
}

/// Fsyncs a directory so a just-renamed file inside it survives a crash.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Byte spans of every valid record in `dir`'s log, in order — the
/// corruption tests and [`truncate_tail_records`] use these to address
/// records without duplicating format knowledge.
///
/// # Errors
///
/// Propagates scan anomalies (the log must currently be valid).
pub fn wal_record_spans(dir: &Path) -> Result<Vec<Range<usize>>, StoreError> {
    Ok(Wal::scan(&dir.join(WAL_FILE))?
        .records
        .into_iter()
        .map(|r| r.span)
        .collect())
}

/// Removes the last `k` records from `dir`'s log — **the rollback
/// attack**, packaged for tests and attack demonstrations.
///
/// The rewritten log is locally flawless: header intact, every remaining
/// record checksummed and consecutively numbered. No local scan can tell
/// it from a log that never contained the suffix — which is precisely
/// why FAUST clients, whose version vectors remember the acknowledged
/// operations, are the only party that can (and do) detect the rollback.
/// An honest operator has one legitimate use: dropping a *torn* tail
/// after a crash, where the half-written record was never acknowledged.
///
/// The log is read with the tolerant [`Wal::scan_prefix`], so this tool
/// works on exactly the logs strict recovery refuses: `k` counts *valid*
/// records to drop, and any anomalous trailing bytes (the torn record)
/// are discarded along with them — `truncate_tail_records(dir, 0)`
/// repairs a torn tail without touching a single acknowledged record.
///
/// Returns the number of records remaining.
///
/// # Errors
///
/// Propagates header/file-system errors. Asking to remove more records
/// than exist truncates to zero records.
pub fn truncate_tail_records(dir: &Path, k: usize) -> Result<usize, StoreError> {
    let path = dir.join(WAL_FILE);
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;
    // Scan the same buffer we slice below — one read, no divergence.
    let (contents, _anomaly) = Wal::scan_bytes(&bytes)?;
    let keep = contents.records.len().saturating_sub(k);
    // End of the kept prefix: the first dropped record's start, or — when
    // nothing valid is dropped — the end of the last valid record, which
    // also discards any anomalous tail bytes beyond it.
    let valid_end = contents
        .records
        .last()
        .map_or(WAL_HEADER_LEN, |r| r.span.end);
    let end = contents
        .records
        .get(keep)
        .map_or(valid_end, |r| r.span.start);
    let tmp = dir.join("wal.tmp");
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)?;
    file.write_all(&bytes[..end])?;
    file.sync_data()?;
    std::fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    Ok(keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;
    use faust_crypto::sig::KeySet;
    use faust_types::{ClientId, Value};
    use faust_ustor::UstorClient;

    fn record(i: u32, round: u64) -> LogRecord {
        let keys = KeySet::generate(4, b"wal-tests");
        let mut client = UstorClient::new(
            ClientId::new(i),
            4,
            keys.keypair(i).unwrap().clone(),
            keys.registry(),
        );
        LogRecord::Submit {
            from: ClientId::new(i),
            msg: client.begin_write(Value::unique(i, round)).unwrap(),
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = scratch_dir("wal-roundtrip");
        let mut wal = Wal::create(&dir, 4, 0, false).unwrap();
        for i in 0..3u32 {
            let seq = wal.append(&record(i, 0), false).unwrap();
            assert_eq!(seq, i as u64);
        }
        assert_eq!(wal.next_seq(), 3);
        drop(wal);

        let (wal, contents) = Wal::open(&dir).unwrap();
        assert_eq!(wal.n(), 4);
        assert_eq!(contents.header.base_seq, 0);
        assert_eq!(contents.records.len(), 3);
        assert_eq!(contents.next_seq(), 3);
        for (i, rec) in contents.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.record.from(), ClientId::new(i as u32));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopened_wal_appends_with_continuing_seqs() {
        let dir = scratch_dir("wal-reopen");
        let mut wal = Wal::create(&dir, 2, 0, false).unwrap();
        wal.append(&record(0, 0), false).unwrap();
        drop(wal);
        let (mut wal, _) = Wal::open(&dir).unwrap();
        assert_eq!(wal.append(&record(1, 0), false).unwrap(), 1);
        let contents = Wal::scan(wal.path()).unwrap();
        assert_eq!(contents.records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotated_wal_carries_base_seq() {
        let dir = scratch_dir("wal-rotate");
        let mut wal = Wal::create(&dir, 2, 17, false).unwrap();
        assert_eq!(wal.append(&record(0, 0), false).unwrap(), 17);
        let contents = Wal::scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(contents.header.base_seq, 17);
        assert_eq!(contents.records[0].seq, 17);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_tail_keeps_a_locally_valid_prefix() {
        let dir = scratch_dir("wal-truncate");
        let mut wal = Wal::create(&dir, 4, 0, false).unwrap();
        for i in 0..4u32 {
            wal.append(&record(i, 1), false).unwrap();
        }
        drop(wal);
        assert_eq!(truncate_tail_records(&dir, 2).unwrap(), 2);
        // The rolled-back log scans cleanly — locally undetectable.
        let contents = Wal::scan(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(contents.records.len(), 2);
        assert_eq!(contents.next_seq(), 2);
        // Over-truncation clamps to empty.
        assert_eq!(truncate_tail_records(&dir, 99).unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cursor_observes_exactly_the_recovered_sequence_across_snapshots() {
        use crate::server::{PersistentServer, StoreConfig};
        use crate::testutil::{clients, run_op};
        use crate::Durability;
        let dir = scratch_dir("wal-cursor-snap");
        let config = StoreConfig {
            durability: Durability::Never,
            snapshot_every: 4,
        };
        let mut server = PersistentServer::open(&dir, 2, config).unwrap();
        let mut cs = clients(2, b"wal-cursor-snap");
        for round in 0..5u64 {
            let submit = cs[0].begin_write(Value::unique(0, round)).unwrap();
            run_op(&mut server, &mut cs[0], submit);
        }
        drop(server);

        // The log was rotated at least once (snapshot taken), so the
        // cursor starts mid-sequence — exactly where recovery does.
        let recovered = Wal::scan(&dir.join(WAL_FILE)).unwrap();
        assert!(recovered.header.base_seq > 0, "rotation happened");

        let cursor = LogCursor::open(&dir).unwrap();
        assert_eq!(cursor.header(), recovered.header);
        let seen: Vec<(u64, Vec<u8>)> = cursor
            .map(|r| r.map(|rec| (rec.seq, rec.record.encode())))
            .collect::<Result<_, _>>()
            .unwrap();
        let expected: Vec<(u64, Vec<u8>)> = recovered
            .records
            .iter()
            .map(|rec| (rec.seq, rec.record.encode()))
            .collect();
        assert_eq!(seen, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cursor_surfaces_anomalies_and_stops() {
        let dir = scratch_dir("wal-cursor-torn");
        let mut wal = Wal::create(&dir, 4, 0, false).unwrap();
        for i in 0..3u32 {
            wal.append(&record(i, 0), false).unwrap();
        }
        drop(wal);
        let path = dir.join(WAL_FILE);
        let good = std::fs::read(&path).unwrap();
        // Tear the last record.
        std::fs::write(&path, &good[..good.len() - 5]).unwrap();

        let mut cursor = LogCursor::open(&dir).unwrap();
        assert_eq!(cursor.next().unwrap().unwrap().seq, 0);
        assert_eq!(cursor.next().unwrap().unwrap().seq, 1);
        assert!(matches!(
            cursor.next().unwrap().unwrap_err(),
            StoreError::TornRecord { seq: 2, .. }
        ));
        assert!(cursor.next().is_none(), "iteration ends after an anomaly");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_reports_missing_file_as_io() {
        let dir = scratch_dir("wal-missing");
        let err = Wal::scan(&dir.join(WAL_FILE)).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_anomalies_are_structured() {
        let dir = scratch_dir("wal-header");
        Wal::create(&dir, 2, 0, false).unwrap();
        let path = dir.join(WAL_FILE);
        let good = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Wal::scan(&path).unwrap_err(),
            StoreError::BadMagic { file: "wal" }
        ));

        // Unsupported version.
        let mut bad = good.clone();
        bad[11] = 99;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            Wal::scan(&path).unwrap_err(),
            StoreError::UnsupportedVersion { version: 99, .. }
        ));

        // Truncated header.
        std::fs::write(&path, &good[..10]).unwrap();
        assert!(matches!(
            Wal::scan(&path).unwrap_err(),
            StoreError::TruncatedHeader { file: "wal" }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
