//! Sharded serving: partition the data plane across cores, replicate
//! the version plane, keep the protocol bit-identical.
//!
//! The register space partitions cleanly by owner (registers are
//! single-writer), but USTOR replies do **not**: every REPLY carries
//! global state — the last committer's version, the full pending list
//! `L`, and all PROOF-signatures (`UstorServer::build_reply`). A shard
//! that saw only "its" registers could not answer correctly, and the
//! fail-aware client checks in `SessionCore`/`UstorClient` would
//! (rightly) flag it. So this module shards the *work*, not the
//! protocol state:
//!
//! * **The version plane is replicated.** Every shard holds a full
//!   replica of the server state and applies *every* message in one
//!   global arrival order (assigned by [`faust_net::ShardRouter`]).
//!   Replicas are deterministic, so all shards agree bit-for-bit.
//! * **The data plane is partitioned.** Only the shard owning the
//!   target register (`register % shards`, [`faust_net::shard_of`])
//!   pays for the message: it appends the WAL record, fsyncs on its own
//!   group-commit schedule, and builds the `O(n + |L|)` REPLY. The
//!   other shards run the cheap absorb path
//!   ([`UstorServer::absorb_submit`]) — state update only, no clones,
//!   no I/O.
//!
//! Because a reply's bytes are fixed at apply time from replicated
//! state, the client-visible messages are identical to a single-engine
//! run at **any** shard count; only cross-client interleaving can
//! differ, and the router restores per-client FIFO order. `tests/
//! sharded.rs` asserts both properties with the fixed-seed equivalence
//! machinery.
//!
//! [`ShardedServer`] implements [`Server`], so the ordinary
//! [`ServerEngine`]/[`serve`](crate::serve) stack (sessions, ingress
//! verification, egress batching) runs unchanged on top. Two execution
//! modes: *inline* (shards applied synchronously on the caller's
//! thread — deterministic, used by the simulator and equivalence
//! tests) and *threaded* (one worker thread per shard — the serving
//! configuration that scales with cores).

use crate::engine::{EngineStats, ServerEngine};
use crate::server::{Server, UstorServer};
use faust_net::{shard_of, ShardRouter};
use faust_types::{ClientId, CommitMsg, ReplyMsg, SubmitMsg};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the force-flush barrier waits for every shard worker to
/// acknowledge before declaring the deployment wedged.
const BARRIER_TIMEOUT: Duration = Duration::from_secs(10);

/// How soon a serve loop should wake while sharded replies are in
/// flight (threaded mode): workers release replies asynchronously, so
/// the loop polls on a short tick instead of parking in `recv`.
const RELEASE_TICK: Duration = Duration::from_micros(500);

/// One shard of a sharded deployment: a full replica of the protocol
/// state plus (for persistent members) the durability machinery for the
/// registers it owns.
///
/// All methods receive the message's global sequence number `seq` —
/// persistent members record it so recovery can re-merge the shards'
/// logs into the one global order — and `owned`, true iff this shard
/// owns the message (submits: the target register; commits: the
/// committing client). Non-owners must apply the state change and
/// nothing else: no logging, no replies.
pub trait ShardMember: Send {
    /// Applies a globally-sequenced SUBMIT. Owners return the replies
    /// to release (possibly empty now and held until [`ShardMember::flush`],
    /// group-commit style); non-owners absorb and return nothing.
    fn apply_submit(
        &mut self,
        seq: u64,
        from: ClientId,
        msg: SubmitMsg,
        owned: bool,
    ) -> Vec<(ClientId, ReplyMsg)>;

    /// Applies a globally-sequenced COMMIT. A commit never *produces* a
    /// reply, but an owner's commit append can fill a group-commit batch
    /// and thereby *release* held submit replies — hence the return
    /// value. Non-owners absorb and return nothing.
    fn apply_commit(
        &mut self,
        seq: u64,
        from: ClientId,
        msg: CommitMsg,
        owned: bool,
    ) -> Vec<(ClientId, ReplyMsg)>;

    /// Offers a durability flush point; returns replies whose records
    /// are now durable. Mirrors [`Server::flush`].
    fn flush(&mut self, force: bool) -> Vec<(ClientId, ReplyMsg)> {
        let _ = force;
        Vec::new()
    }

    /// When this shard must next be flushed even without new traffic.
    /// Mirrors [`Server::flush_deadline`].
    fn flush_deadline(&self) -> Option<Instant> {
        None
    }

    /// `Some(description)` once this shard has wedged (a persistent
    /// member hit an I/O error and can no longer uphold durability).
    /// A wedged shard silences the whole deployment — see the module
    /// docs of `faust-store`'s sharded backend for the crash semantics.
    fn wedged(&self) -> Option<String> {
        None
    }
}

/// A purely in-memory shard member: a [`UstorServer`] replica with no
/// durability. Owners answer immediately; non-owners absorb.
#[derive(Debug)]
pub struct VolatileShard {
    inner: UstorServer,
}

impl VolatileShard {
    /// A fresh volatile replica for `n` clients.
    pub fn new(n: usize) -> Self {
        VolatileShard {
            inner: UstorServer::new(n),
        }
    }
}

impl ShardMember for VolatileShard {
    fn apply_submit(
        &mut self,
        _seq: u64,
        from: ClientId,
        msg: SubmitMsg,
        owned: bool,
    ) -> Vec<(ClientId, ReplyMsg)> {
        if owned {
            self.inner.on_submit(from, msg)
        } else {
            self.inner.absorb_submit(from, msg);
            Vec::new()
        }
    }

    fn apply_commit(
        &mut self,
        _seq: u64,
        from: ClientId,
        msg: CommitMsg,
        _owned: bool,
    ) -> Vec<(ClientId, ReplyMsg)> {
        self.inner.on_commit(from, msg)
    }
}

/// A cloneable handle onto per-shard [`EngineStats`], shared with the
/// shard workers; survives the engine, so a runtime can report shard
/// stats after `serve` returns.
#[derive(Debug, Clone)]
pub struct ShardStatsHandle(Arc<Vec<Mutex<EngineStats>>>);

impl ShardStatsHandle {
    fn new(shards: usize) -> Self {
        ShardStatsHandle(Arc::new(
            (0..shards)
                .map(|_| Mutex::new(EngineStats::default()))
                .collect(),
        ))
    }

    /// A snapshot of each shard's counters, indexed by shard.
    ///
    /// Shards fill the fields they own: `submits`/`commits` count the
    /// messages the shard *owned* (piggybacked commits count), and
    /// `frames_out`/`flushes`/`max_egress_batch` describe its reply
    /// releases. Round-level fields (`batches`, `max_batch`,
    /// `rejected`, `nonsense`) belong to the engine on top and stay 0.
    pub fn per_shard(&self) -> Vec<EngineStats> {
        self.0
            .iter()
            .map(|slot| slot.lock().expect("shard stats poisoned").clone())
            .collect()
    }

    /// The shards' counters aggregated with [`EngineStats::merged`].
    pub fn merged(&self) -> EngineStats {
        EngineStats::merged(&self.per_shard())
    }
}

fn note_owned_submit(slot: &Mutex<EngineStats>, piggybacked: bool) {
    let mut stats = slot.lock().expect("shard stats poisoned");
    stats.submits += 1;
    if piggybacked {
        stats.commits += 1;
    }
}

fn note_owned_commit(slot: &Mutex<EngineStats>) {
    slot.lock().expect("shard stats poisoned").commits += 1;
}

fn note_release(slot: &Mutex<EngineStats>, count: usize) {
    let mut stats = slot.lock().expect("shard stats poisoned");
    stats.frames_out += count as u64;
    stats.flushes += 1;
    stats.max_egress_batch = stats.max_egress_batch.max(count);
}

/// Commands the sharded server sends to a shard (worker thread in
/// threaded mode; applied synchronously in inline mode).
enum ShardCmd {
    Submit {
        seq: u64,
        from: ClientId,
        msg: Box<SubmitMsg>,
        owned: bool,
    },
    Commit {
        seq: u64,
        from: ClientId,
        msg: CommitMsg,
        owned: bool,
    },
    Flush {
        force: bool,
    },
    Shutdown,
}

/// Events a shard worker reports back.
enum ShardEvent {
    /// Replies released by `shard`, in its apply order.
    Released {
        shard: usize,
        replies: Vec<(ClientId, ReplyMsg)>,
    },
    /// Acknowledges a forced [`ShardCmd::Flush`].
    Flushed { shard: usize },
    /// The shard hit an unrecoverable error and went silent.
    Wedged { shard: usize, reason: String },
}

/// The threaded execution state: per-shard command channels, the shared
/// event channel, and the worker handles.
struct Threaded {
    cmd_txs: Vec<Sender<ShardCmd>>,
    event_rx: Receiver<ShardEvent>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Threaded {
    /// Routes one drained event; returns replies now releasable.
    fn handle(
        event: ShardEvent,
        router: &mut ShardRouter,
        wedged: &mut Option<String>,
    ) -> Vec<(ClientId, ReplyMsg)> {
        match event {
            ShardEvent::Released { shard, replies } => router.completed(shard, replies),
            ShardEvent::Flushed { .. } => Vec::new(),
            ShardEvent::Wedged { shard, reason } => {
                wedged.get_or_insert(format!("shard {shard}: {reason}"));
                Vec::new()
            }
        }
    }

    /// Drains every event already reported, without blocking.
    fn drain(
        &mut self,
        router: &mut ShardRouter,
        wedged: &mut Option<String>,
    ) -> Vec<(ClientId, ReplyMsg)> {
        let mut released = Vec::new();
        while let Ok(event) = self.event_rx.try_recv() {
            released.extend(Self::handle(event, router, wedged));
        }
        released
    }

    /// Force-flushes every shard and waits for all acknowledgements —
    /// the barrier a closing transport needs so no held reply is
    /// stranded in a worker.
    fn barrier_flush(
        &mut self,
        router: &mut ShardRouter,
        wedged: &mut Option<String>,
    ) -> Vec<(ClientId, ReplyMsg)> {
        let mut released = Vec::new();
        let mut expected = 0usize;
        for (shard, tx) in self.cmd_txs.iter().enumerate() {
            if tx.send(ShardCmd::Flush { force: true }).is_ok() {
                expected += 1;
            } else {
                wedged.get_or_insert(format!("shard {shard}: worker terminated"));
            }
        }
        let deadline = Instant::now() + BARRIER_TIMEOUT;
        let mut acked_by = vec![false; self.cmd_txs.len()];
        let mut acked = 0usize;
        while acked < expected {
            let timeout = deadline.saturating_duration_since(Instant::now());
            match self.event_rx.recv_timeout(timeout) {
                Ok(event) => {
                    if let ShardEvent::Flushed { shard } = event {
                        if !std::mem::replace(&mut acked_by[shard], true) {
                            acked += 1;
                        }
                    }
                    released.extend(Self::handle(event, router, wedged));
                }
                Err(_) => {
                    wedged.get_or_insert(format!(
                        "flush barrier: {acked}/{expected} shards acknowledged"
                    ));
                    break;
                }
            }
        }
        released
    }
}

/// Which thread applies shard work.
enum Mode {
    /// Shards applied synchronously on the calling thread, in shard
    /// order — deterministic, no worker threads.
    Inline(Vec<Box<dyn ShardMember>>),
    /// One worker thread per shard.
    Threaded(Threaded),
}

/// N shard replicas behind the [`Server`] trait. See the module docs.
///
/// On any shard wedge (I/O failure in a persistent member, a dead
/// worker) the whole deployment goes **crash-silent**: no further
/// message is sequenced or answered, exactly like a crashed server —
/// the honest failure mode fail-aware clients are built for. Partial
/// progress on the surviving shards would instead desynchronize the
/// global order that recovery rebuilds.
pub struct ShardedServer {
    shards: usize,
    router: ShardRouter,
    mode: Mode,
    stats: ShardStatsHandle,
    wedged: Option<String>,
    /// Recovered per-client session state, surrendered to the engine
    /// once via [`Server::resume_sessions`]. Empty for fresh deployments.
    resume: Vec<crate::server::SessionResume>,
}

impl std::fmt::Debug for ShardedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedServer")
            .field("shards", &self.shards)
            .field(
                "mode",
                &match self.mode {
                    Mode::Inline(_) => "inline",
                    Mode::Threaded(_) => "threaded",
                },
            )
            .field("outstanding", &self.router.outstanding())
            .field("wedged", &self.wedged)
            .finish()
    }
}

impl ShardedServer {
    /// An inline (synchronous, deterministic) deployment of `members`
    /// serving `n` clients.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn inline(n: usize, members: Vec<Box<dyn ShardMember>>) -> Self {
        let shards = members.len();
        assert!(shards > 0, "a sharded deployment has at least one shard");
        ShardedServer {
            shards,
            router: ShardRouter::new(shards, n),
            mode: Mode::Inline(members),
            stats: ShardStatsHandle::new(shards),
            wedged: None,
            resume: Vec::new(),
        }
    }

    /// A threaded deployment: each member moves onto its own worker
    /// thread (named `faust-shard-<i>`).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or a worker thread cannot spawn.
    pub fn threaded(n: usize, members: Vec<Box<dyn ShardMember>>) -> Self {
        let shards = members.len();
        assert!(shards > 0, "a sharded deployment has at least one shard");
        let stats = ShardStatsHandle::new(shards);
        let (event_tx, event_rx) = channel();
        let mut cmd_txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard, member) in members.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = channel();
            let event_tx = event_tx.clone();
            let stats = stats.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("faust-shard-{shard}"))
                    .spawn(move || run_shard_worker(shard, member, cmd_rx, event_tx, stats))
                    .expect("spawn shard worker"),
            );
            cmd_txs.push(cmd_tx);
        }
        ShardedServer {
            shards,
            router: ShardRouter::new(shards, n),
            mode: Mode::Threaded(Threaded {
                cmd_txs,
                event_rx,
                workers,
            }),
            stats,
            wedged: None,
            resume: Vec::new(),
        }
    }

    /// A deployment of fresh [`VolatileShard`]s.
    pub fn volatile(n: usize, shards: usize, threaded: bool) -> Self {
        let members: Vec<Box<dyn ShardMember>> = (0..shards)
            .map(|_| Box::new(VolatileShard::new(n)) as Box<dyn ShardMember>)
            .collect();
        if threaded {
            ShardedServer::threaded(n, members)
        } else {
            ShardedServer::inline(n, members)
        }
    }

    /// Resumes global sequencing at `next_seq` (builder style) — how a
    /// recovered deployment continues the order its logs record.
    #[must_use]
    pub fn resumed_at(mut self, next_seq: u64) -> Self {
        self.router.resume_at(next_seq);
        self
    }

    /// Installs the recovered per-client session state the engine will
    /// collect through [`Server::resume_sessions`] (builder style).
    #[must_use]
    pub fn with_resume(mut self, resume: Vec<crate::server::SessionResume>) -> Self {
        self.resume = resume;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shared per-shard stats handle (cloneable, outlives the
    /// server).
    pub fn stats_handle(&self) -> ShardStatsHandle {
        self.stats.clone()
    }

    /// Why the deployment went silent, if it did.
    pub fn wedge_reason(&self) -> Option<&str> {
        self.wedged.as_deref()
    }

    /// Fans one sequenced command out to every shard and collects what
    /// the owners release.
    fn fan_out(
        &mut self,
        seq: u64,
        from: ClientId,
        owner: usize,
        msg: FanMsg,
    ) -> Vec<(ClientId, ReplyMsg)> {
        let ShardedServer {
            router,
            mode,
            stats,
            wedged,
            ..
        } = self;
        let mut released = Vec::new();
        match mode {
            Mode::Inline(members) => {
                for (idx, member) in members.iter_mut().enumerate() {
                    let owned = idx == owner;
                    match &msg {
                        FanMsg::Submit(m) => {
                            let replies = member.apply_submit(seq, from, (**m).clone(), owned);
                            if owned {
                                note_owned_submit(&stats.0[idx], m.piggyback.is_some());
                                if !replies.is_empty() {
                                    note_release(&stats.0[idx], replies.len());
                                    released.extend(router.completed(idx, replies));
                                }
                            } else {
                                debug_assert!(replies.is_empty(), "non-owners never reply");
                            }
                        }
                        FanMsg::Commit(m) => {
                            let replies = member.apply_commit(seq, from, (**m).clone(), owned);
                            if owned {
                                note_owned_commit(&stats.0[idx]);
                                if !replies.is_empty() {
                                    // The commit's append filled a batch:
                                    // held submit replies came out.
                                    note_release(&stats.0[idx], replies.len());
                                    released.extend(router.completed(idx, replies));
                                }
                            } else {
                                debug_assert!(replies.is_empty(), "non-owners never reply");
                            }
                        }
                    }
                    if wedged.is_none() {
                        if let Some(reason) = member.wedged() {
                            *wedged = Some(format!("shard {idx}: {reason}"));
                        }
                    }
                }
            }
            Mode::Threaded(threaded) => {
                for (idx, tx) in threaded.cmd_txs.iter().enumerate() {
                    let owned = idx == owner;
                    let cmd = match &msg {
                        FanMsg::Submit(m) => ShardCmd::Submit {
                            seq,
                            from,
                            msg: m.clone(),
                            owned,
                        },
                        FanMsg::Commit(m) => ShardCmd::Commit {
                            seq,
                            from,
                            msg: (**m).clone(),
                            owned,
                        },
                    };
                    if tx.send(cmd).is_err() {
                        wedged.get_or_insert(format!("shard {idx}: worker terminated"));
                    }
                }
                released.extend(threaded.drain(router, wedged));
            }
        }
        released
    }
}

/// A sequenced message being fanned out (boxed so per-shard clones are
/// explicit and the command enum stays small).
enum FanMsg {
    Submit(Box<SubmitMsg>),
    Commit(Box<CommitMsg>),
}

impl Server for ShardedServer {
    fn resume_sessions(&mut self) -> Vec<crate::server::SessionResume> {
        std::mem::take(&mut self.resume)
    }

    fn on_submit(&mut self, client: ClientId, msg: SubmitMsg) -> Vec<(ClientId, ReplyMsg)> {
        if self.wedged.is_some() {
            return Vec::new(); // crash-silent
        }
        let owner = shard_of(msg.tuple.register, self.shards);
        let seq = self.router.assign();
        self.router.dispatch(owner, seq, client);
        self.fan_out(seq, client, owner, FanMsg::Submit(Box::new(msg)))
    }

    fn on_commit(&mut self, client: ClientId, msg: CommitMsg) -> Vec<(ClientId, ReplyMsg)> {
        if self.wedged.is_some() {
            return Vec::new();
        }
        // A commit is owned by the committing client's shard (its own
        // register's home): that shard logs it, so recovery sees every
        // sequenced message exactly once. No reply is dispatched.
        let owner = shard_of(client, self.shards);
        let seq = self.router.assign();
        self.fan_out(seq, client, owner, FanMsg::Commit(Box::new(msg)))
    }

    fn flush(&mut self, force: bool) -> Vec<(ClientId, ReplyMsg)> {
        if self.wedged.is_some() {
            return Vec::new();
        }
        let ShardedServer {
            router,
            mode,
            stats,
            wedged,
            ..
        } = self;
        match mode {
            Mode::Inline(members) => {
                let mut released = Vec::new();
                for (idx, member) in members.iter_mut().enumerate() {
                    let replies = member.flush(force);
                    if !replies.is_empty() {
                        note_release(&stats.0[idx], replies.len());
                        released.extend(router.completed(idx, replies));
                    }
                    if wedged.is_none() {
                        if let Some(reason) = member.wedged() {
                            *wedged = Some(format!("shard {idx}: {reason}"));
                        }
                    }
                }
                released
            }
            Mode::Threaded(threaded) => {
                if force {
                    threaded.barrier_flush(router, wedged)
                } else {
                    threaded.drain(router, wedged)
                }
            }
        }
    }

    fn flush_deadline(&self) -> Option<Instant> {
        if self.wedged.is_some() {
            return None;
        }
        match &self.mode {
            Mode::Inline(members) => members.iter().filter_map(|m| m.flush_deadline()).min(),
            // Workers flush themselves on their own deadlines; the serve
            // loop only needs to wake often enough to drain releases.
            Mode::Threaded(_) => {
                (self.router.outstanding() > 0).then(|| Instant::now() + RELEASE_TICK)
            }
        }
    }
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        if let Mode::Threaded(threaded) = &mut self.mode {
            for tx in &threaded.cmd_txs {
                let _ = tx.send(ShardCmd::Shutdown);
            }
            threaded.cmd_txs.clear();
            for worker in threaded.workers.drain(..) {
                let _ = worker.join();
            }
        }
    }
}

/// The event loop of one shard worker thread: apply commands in order,
/// self-flush on the member's group-commit deadline, report releases
/// and wedges. Returns when told to shut down or the command channel
/// closes.
fn run_shard_worker(
    shard: usize,
    mut member: Box<dyn ShardMember>,
    cmd_rx: Receiver<ShardCmd>,
    event_tx: Sender<ShardEvent>,
    stats: ShardStatsHandle,
) {
    let slot = &stats.0[shard];
    let mut announced_wedge = false;
    loop {
        let cmd = match member.flush_deadline() {
            Some(deadline) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                match cmd_rx.recv_timeout(timeout) {
                    Ok(cmd) => Some(cmd),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
            None => match cmd_rx.recv() {
                Ok(cmd) => Some(cmd),
                Err(_) => return,
            },
        };
        let mut ack_flush = false;
        let released = match cmd {
            // Deadline reached: the member's own flush policy is due.
            None => member.flush(false),
            Some(ShardCmd::Submit {
                seq,
                from,
                msg,
                owned,
            }) => {
                let piggybacked = msg.piggyback.is_some();
                let replies = member.apply_submit(seq, from, *msg, owned);
                if owned {
                    note_owned_submit(slot, piggybacked);
                }
                replies
            }
            Some(ShardCmd::Commit {
                seq,
                from,
                msg,
                owned,
            }) => {
                let replies = member.apply_commit(seq, from, msg, owned);
                if owned {
                    note_owned_commit(slot);
                }
                replies
            }
            Some(ShardCmd::Flush { force }) => {
                ack_flush = force;
                member.flush(force)
            }
            Some(ShardCmd::Shutdown) => return,
        };
        if !released.is_empty() {
            note_release(slot, released.len());
            if event_tx
                .send(ShardEvent::Released {
                    shard,
                    replies: released,
                })
                .is_err()
            {
                return;
            }
        }
        if ack_flush && event_tx.send(ShardEvent::Flushed { shard }).is_err() {
            return;
        }
        if !announced_wedge {
            if let Some(reason) = member.wedged() {
                announced_wedge = true;
                let _ = event_tx.send(ShardEvent::Wedged { shard, reason });
            }
        }
    }
}

/// A [`ServerEngine`] over a [`ShardedServer`], keeping the per-shard
/// stats handle reachable after the engine is consumed by a serve loop.
#[derive(Debug)]
pub struct ShardedEngine {
    engine: ServerEngine,
    stats: ShardStatsHandle,
}

impl ShardedEngine {
    /// Wraps `server` in an engine for `n` clients.
    pub fn new(n: usize, server: ShardedServer) -> Self {
        let stats = server.stats_handle();
        ShardedEngine {
            engine: ServerEngine::new(n, Box::new(server)),
            stats,
        }
    }

    /// A volatile sharded engine (fresh in-memory replicas).
    pub fn volatile(n: usize, shards: usize, threaded: bool) -> Self {
        ShardedEngine::new(n, ShardedServer::volatile(n, shards, threaded))
    }

    /// The engine, borrowed — for enqueue/process/poll cycles.
    pub fn engine_mut(&mut self) -> &mut ServerEngine {
        &mut self.engine
    }

    /// The engine, shared — for stats and sessions.
    pub fn engine(&self) -> &ServerEngine {
        &self.engine
    }

    /// The per-shard stats handle (cloneable; outlives the engine).
    pub fn shard_stats(&self) -> ShardStatsHandle {
        self.stats.clone()
    }

    /// Unwraps into the plain [`ServerEngine`] for
    /// [`serve`](crate::serve)-style loops; keep a
    /// [`ShardedEngine::shard_stats`] handle first if shard counters
    /// are wanted afterwards.
    pub fn into_engine(self) -> ServerEngine {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::UstorClient;
    use faust_crypto::sig::KeySet;
    use faust_types::{UstorMsg, Value, Wire};

    fn clients(n: usize, domain: &[u8]) -> Vec<UstorClient> {
        let keys = KeySet::generate(n, domain);
        (0..n)
            .map(|i| {
                UstorClient::new(
                    ClientId::new(i as u32),
                    n,
                    keys.keypair(i as u32).unwrap().clone(),
                    keys.registry(),
                )
            })
            .collect()
    }

    /// Drives the same scripted rounds through `server`, returning each
    /// client's reply stream as raw bytes.
    fn run_script(server: &mut dyn Server, cs: &mut [UstorClient], rounds: u64) -> Vec<Vec<u8>> {
        let n = cs.len();
        let mut streams = vec![Vec::new(); n];
        let sink = |released: Vec<(ClientId, ReplyMsg)>,
                    streams: &mut Vec<Vec<u8>>,
                    cs: &mut [UstorClient],
                    server: &mut dyn Server| {
            for (to, reply) in released {
                reply.encode_into(&mut streams[to.index()]);
                let (commit, _) = cs[to.index()].handle_reply(reply).expect("correct server");
                if let Some(commit) = commit {
                    let more = server.on_commit(to, commit);
                    assert!(more.is_empty());
                }
            }
        };
        for round in 0..rounds {
            for i in 0..n {
                let submit = if (round + i as u64).is_multiple_of(3) {
                    cs[i]
                        .begin_read(ClientId::new(((i + 1) % n) as u32))
                        .unwrap()
                } else {
                    cs[i].begin_write(Value::unique(i as u32, round)).unwrap()
                };
                let released = server.on_submit(ClientId::new(i as u32), submit);
                sink(released, &mut streams, cs, server);
            }
        }
        let released = server.flush(true);
        sink(released, &mut streams, cs, server);
        streams
    }

    #[test]
    fn inline_sharded_replies_are_bit_identical_to_the_single_server() {
        let n = 5;
        let rounds = 6;
        let mut single = UstorServer::new(n);
        let mut cs = clients(n, b"shard-ident");
        let reference = run_script(&mut single, &mut cs, rounds);
        for shards in [1, 2, 4] {
            let mut sharded = ShardedServer::volatile(n, shards, false);
            let mut cs = clients(n, b"shard-ident");
            let streams = run_script(&mut sharded, &mut cs, rounds);
            assert_eq!(
                streams, reference,
                "{shards} shards: client-visible bytes must match"
            );
            let merged = sharded.stats_handle().merged();
            assert_eq!(merged.submits, n as u64 * rounds);
            assert!(sharded.wedge_reason().is_none());
        }
    }

    #[test]
    fn threaded_sharded_engine_completes_a_pipelined_workload() {
        // Crank a pipelined burst through a threaded 3-shard engine via
        // the queue transport: all ops complete, stats add up, and the
        // deterministic client accepts every reply (content equivalence
        // is already pinned by the inline test; here the threads are
        // real).
        let n = 4;
        let burst = 5u64;
        let mut cs = clients(n, b"shard-threaded");
        for c in &mut cs {
            c.set_pipeline(burst as usize);
            c.set_commit_mode(crate::client::CommitMode::Piggyback);
        }
        let sharded = ShardedEngine::volatile(n, 3, true);
        let shard_stats = sharded.shard_stats();
        let mut engine = sharded.into_engine();
        let mut transport = faust_net::QueueTransport::new();
        for k in 0..burst {
            for (i, c) in cs.iter_mut().enumerate() {
                let submit = c.begin_write(Value::unique(i as u32, k)).unwrap();
                transport.push_incoming(ClientId::new(i as u32), UstorMsg::Submit(submit));
            }
        }
        crate::serve(&mut engine, &mut transport);
        let mut replies = vec![0u64; n];
        for (to, msg) in transport.drain_outgoing() {
            let UstorMsg::Reply(reply) = msg else {
                panic!("server only sends replies");
            };
            replies[to.index()] += 1;
            cs[to.index()].handle_reply(reply).expect("correct server");
        }
        assert_eq!(replies, vec![burst; n], "every submit answered");
        let merged = shard_stats.merged();
        assert_eq!(merged.submits, n as u64 * burst);
        assert_eq!(merged.frames_out, n as u64 * burst);
    }

    #[test]
    fn wedged_member_silences_the_deployment() {
        /// Applies one message then wedges.
        struct FlakyShard {
            inner: VolatileShard,
            applied: u32,
        }
        impl ShardMember for FlakyShard {
            fn apply_submit(
                &mut self,
                seq: u64,
                from: ClientId,
                msg: SubmitMsg,
                owned: bool,
            ) -> Vec<(ClientId, ReplyMsg)> {
                self.applied += 1;
                self.inner.apply_submit(seq, from, msg, owned)
            }
            fn apply_commit(
                &mut self,
                seq: u64,
                from: ClientId,
                msg: CommitMsg,
                owned: bool,
            ) -> Vec<(ClientId, ReplyMsg)> {
                self.inner.apply_commit(seq, from, msg, owned)
            }
            fn wedged(&self) -> Option<String> {
                (self.applied >= 1).then(|| "disk on fire".to_string())
            }
        }
        let n = 2;
        let members: Vec<Box<dyn ShardMember>> = vec![
            Box::new(FlakyShard {
                inner: VolatileShard::new(n),
                applied: 0,
            }),
            Box::new(VolatileShard::new(n)),
        ];
        let mut sharded = ShardedServer::inline(n, members);
        let mut cs = clients(n, b"shard-wedge");
        let first = cs[0].begin_write(Value::from("w1")).unwrap();
        let released = sharded.on_submit(ClientId::new(0), first);
        assert_eq!(released.len(), 1, "the first op still answers");
        assert!(sharded.wedge_reason().unwrap().contains("disk on fire"));
        // From here on: crash-silence.
        let second = cs[1].begin_write(Value::from("w2")).unwrap();
        assert!(sharded.on_submit(ClientId::new(1), second).is_empty());
        assert!(sharded.flush(true).is_empty());
        assert!(sharded.flush_deadline().is_none());
    }
}
