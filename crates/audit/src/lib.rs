//! Offline audit for the FAUST reproduction: signed session histories
//! and a certifier that proves fork-linearizability or pinpoints the
//! divergence.
//!
//! The online protocol (`faust-ustor`, `faust-core`) detects server
//! misbehaviour *while running*. This crate adds the complementary
//! offline story: a server session — the WAL records, the state they
//! apply on top of, the final commit chain, and optionally the
//! client-observed history — is exported into a single
//! self-describing `FAUSTHIS` file, and `faust audit` replays that file
//! with nothing but the clients' verification keys. The auditor is a
//! second, independent oracle: it shares no code path with the online
//! fail-aware machinery, so agreement between the two is strong evidence
//! both are right.
//!
//! * [`SessionHistory`] / [`mod@format`] — the container: checksummed
//!   manifest binding checksummed sections; typed, offset-precise
//!   rejection of damaged files ([`HistoryFileError`]).
//! * [`export_store_dir`] / [`export_records`] / [`export`] — building
//!   containers from a `faust-store` directory (via the read-only
//!   `LogCursor`) or an in-memory record stream (the simulator).
//! * [`audit`] / [`replay`] — the certifier. Verdicts are typed:
//!   [`AuditVerdict::Certified`] carries the certified scope,
//!   [`AuditVerdict::Diverged`] carries the first divergent version and
//!   a [`Divergence`] with the evidence — for forks, the two signed
//!   incomparable versions that convict the server to any third party.
//! * [`report_to_json`] — the CI artifact format.
//!
//! The threat model — what the auditor can and cannot prove, and why the
//! container's own checksums are *integrity* only — is documented in
//! `docs/audit.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod format;
pub mod json;
pub mod replay;

pub use export::{export_records, export_store_dir, ExportError};
pub use format::{
    HistoryFileError, HistoryReadError, Section, SessionHistory, HISTORY_MAGIC, HISTORY_VERSION,
};
pub use json::report_to_json;
pub use replay::{audit, AuditError, AuditReport, AuditVerdict, Divergence, SigKind};
