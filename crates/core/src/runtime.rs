//! Thread-per-client runtime: the same USTOR protocol stack as the
//! simulator drives, but over real OS threads — genuine concurrency
//! rather than virtual time.
//!
//! The server side is the transport-agnostic [`ServerEngine`] running in
//! its own thread over a [`faust_net`] transport (in-process channels
//! here; the FAUST variant in [`crate::threaded_faust`] also runs over
//! loopback TCP). Used by the wait-freedom demonstrations and throughput
//! benchmarks: a slow (or sleeping) client provably does not delay the
//! others, because the server answers each SUBMIT immediately and never
//! waits for anybody's COMMIT.

use faust_crypto::sig::{KeySet, SigScheme};
use faust_net::{channel, ClientConn};
use faust_types::{ClientId, UstorMsg, Value};
use faust_ustor::{serve, Fault, Server, ServerEngine, UstorClient, UstorServer};
use std::time::{Duration, Instant};

/// One step of a threaded client workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadedOp {
    /// Write a value to the client's own register.
    Write(Value),
    /// Read a register.
    Read(ClientId),
    /// Sleep for this many milliseconds (a slow collaborator).
    SleepMs(u64),
}

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Completed operations per client.
    pub completions: Vec<usize>,
    /// Faults detected (none unless the server misbehaves).
    pub faults: Vec<(ClientId, Fault)>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Wall-clock duration until each client finished its own workload.
    pub per_client_elapsed: Vec<Duration>,
    /// Final engine statistics from the server thread.
    pub engine_stats: faust_ustor::EngineStats,
}

/// Runs `n` clients on threads against a correct in-process USTOR server
/// over the channel transport.
///
/// Returns when every client has finished its workload. Because USTOR is
/// wait-free, a client's [`ThreadedOp::SleepMs`] steps never extend the
/// other clients' `per_client_elapsed`.
///
/// # Panics
///
/// Panics if `workloads.len() != n` or a thread panics.
pub fn run_threaded(n: usize, workloads: Vec<Vec<ThreadedOp>>, key_seed: &[u8]) -> ThreadedReport {
    run_threaded_with_server(n, workloads, key_seed, Box::new(UstorServer::new(n)))
}

/// [`run_threaded`] with an explicit server implementation — the hook
/// through which the threaded runtime runs durably: pass a server built
/// by any [`faust_ustor::ServerBackend`] (e.g. `faust-store`'s
/// `PersistentBackend`) instead of the default volatile [`UstorServer`].
///
/// # Panics
///
/// Panics if `workloads.len() != n` or a thread panics.
pub fn run_threaded_with_server(
    n: usize,
    workloads: Vec<Vec<ThreadedOp>>,
    key_seed: &[u8],
    server: Box<dyn Server + Send>,
) -> ThreadedReport {
    let (mut transport, conns) = channel::pair(n);
    let engine_thread = std::thread::spawn(move || {
        let mut engine = ServerEngine::new(n, server);
        serve(&mut engine, &mut transport);
        engine.stats().clone()
    });
    run_threaded_over(n, workloads, conns, key_seed, engine_thread)
}

/// Runs `n` clients on threads over pre-built connections; the server
/// engine runs wherever `engine_thread` put it (another thread, another
/// process behind TCP, …).
///
/// # Panics
///
/// Panics if `workloads.len() != conns.len() != n` or a thread panics.
pub fn run_threaded_over(
    n: usize,
    workloads: Vec<Vec<ThreadedOp>>,
    conns: Vec<ClientConn>,
    key_seed: &[u8],
    engine_thread: std::thread::JoinHandle<faust_ustor::EngineStats>,
) -> ThreadedReport {
    run_threaded_over_with(
        n,
        workloads,
        conns,
        key_seed,
        SigScheme::Hmac,
        engine_thread,
    )
}

/// [`run_threaded_over`] with an explicit signature scheme. With
/// [`SigScheme::Ed25519`] the matching *public-key* registry
/// (`KeySet::generate_ed25519(n, key_seed).registry()`) can be handed to
/// the engine for sound ingress verification — the server never sees
/// signing keys.
///
/// # Panics
///
/// Panics if `workloads.len() != conns.len() != n` or a thread panics.
pub fn run_threaded_over_with(
    n: usize,
    workloads: Vec<Vec<ThreadedOp>>,
    conns: Vec<ClientConn>,
    key_seed: &[u8],
    scheme: SigScheme,
    engine_thread: std::thread::JoinHandle<faust_ustor::EngineStats>,
) -> ThreadedReport {
    assert_eq!(workloads.len(), n, "one workload per client");
    assert_eq!(conns.len(), n, "one connection per client");
    let keys = KeySet::generate_with(scheme, n, key_seed);

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (i, (workload, conn)) in workloads.into_iter().zip(conns).enumerate() {
        let id = ClientId::new(i as u32);
        assert_eq!(conn.id(), id, "connections must be in client order");
        let keypair = keys.keypair(i as u32).expect("generated").clone();
        let registry = keys.registry();
        handles.push(std::thread::spawn(move || {
            let mut client = UstorClient::new(id, n, keypair, registry);
            let mut completions = 0usize;
            let mut fault = None;
            let begun = Instant::now();
            'workload: for op in workload {
                let submit = match op {
                    ThreadedOp::SleepMs(ms) => {
                        std::thread::sleep(Duration::from_millis(ms));
                        continue;
                    }
                    ThreadedOp::Write(v) => client.begin_write(v),
                    ThreadedOp::Read(j) => client.begin_read(j),
                };
                let Ok(submit) = submit else { break };
                if conn.send(&UstorMsg::Submit(submit)).is_err() {
                    break;
                }
                // The engine sends only replies to clients.
                let reply = loop {
                    match conn.recv() {
                        Ok(UstorMsg::Reply(reply)) => break reply,
                        Ok(_) => continue,
                        Err(_) => break 'workload,
                    }
                };
                match client.handle_reply(reply) {
                    Ok((commit, _done)) => {
                        completions += 1;
                        if let Some(commit) = commit {
                            if conn.send(&UstorMsg::Commit(commit)).is_err() {
                                break 'workload;
                            }
                        }
                    }
                    Err(f) => {
                        fault = Some(f);
                        break 'workload;
                    }
                }
            }
            // Dropping `conn` here closes this client's connection; the
            // engine thread finishes once every client has done so.
            (completions, fault, begun.elapsed())
        }));
    }

    let mut completions = vec![0; n];
    let mut per_client_elapsed = vec![Duration::ZERO; n];
    let mut faults = Vec::new();
    for (i, handle) in handles.into_iter().enumerate() {
        let (done, fault, elapsed) = handle.join().expect("client thread panicked");
        completions[i] = done;
        per_client_elapsed[i] = elapsed;
        if let Some(f) = fault {
            faults.push((ClientId::new(i as u32), f));
        }
    }
    let engine_stats = engine_thread.join().expect("server thread panicked");
    ThreadedReport {
        completions,
        faults,
        elapsed: start.elapsed(),
        per_client_elapsed,
        engine_stats,
    }
}

/// Spawns a server engine thread serving `server` over `transport`,
/// returning the handle [`run_threaded_over`] expects.
pub fn spawn_engine<T>(
    n: usize,
    server: Box<dyn Server + Send>,
    transport: T,
) -> std::thread::JoinHandle<faust_ustor::EngineStats>
where
    T: faust_net::ServerTransport + Send + 'static,
{
    spawn_engine_with(ServerEngine::new(n, server), transport)
}

/// [`spawn_engine`] for a pre-configured engine (e.g. with ingress
/// verification enabled).
pub fn spawn_engine_with<T>(
    mut engine: ServerEngine,
    mut transport: T,
) -> std::thread::JoinHandle<faust_ustor::EngineStats>
where
    T: faust_net::ServerTransport + Send + 'static,
{
    std::thread::spawn(move || {
        serve(&mut engine, &mut transport);
        engine.stats().clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn threaded_run_completes_all_ops() {
        let workloads = vec![
            vec![
                ThreadedOp::Write(Value::from("a1")),
                ThreadedOp::Write(Value::from("a2")),
                ThreadedOp::Read(c(1)),
            ],
            vec![ThreadedOp::Write(Value::from("b1")), ThreadedOp::Read(c(0))],
        ];
        let report = run_threaded(2, workloads, b"threaded-test");
        assert_eq!(report.completions, vec![3, 2]);
        assert!(report.faults.is_empty());
        assert_eq!(report.engine_stats.submits, 5);
        assert_eq!(report.engine_stats.commits, 5);
    }

    #[test]
    fn slow_client_does_not_delay_fast_clients() {
        // C1 sleeps 300 ms mid-workload; C0's 20 ops must not take
        // anywhere near that long.
        let workloads = vec![
            (0..20)
                .map(|i| ThreadedOp::Write(Value::unique(0, i)))
                .collect(),
            vec![
                ThreadedOp::Write(Value::unique(1, 0)),
                ThreadedOp::SleepMs(300),
                ThreadedOp::Write(Value::unique(1, 1)),
            ],
        ];
        let report = run_threaded(2, workloads, b"slow-test");
        assert_eq!(report.completions, vec![20, 2]);
        assert!(
            report.per_client_elapsed[0] < Duration::from_millis(200),
            "wait-freedom violated: fast client took {:?}",
            report.per_client_elapsed[0]
        );
    }

    #[test]
    fn many_threads_heavy_interleaving() {
        let n = 8;
        let workloads: Vec<Vec<ThreadedOp>> = (0..n)
            .map(|i| {
                (0..25)
                    .map(|s| {
                        if s % 3 == 0 {
                            ThreadedOp::Read(c(((i as u32) + 1) % n as u32))
                        } else {
                            ThreadedOp::Write(Value::unique(i as u32, s))
                        }
                    })
                    .collect()
            })
            .collect();
        let report = run_threaded(n, workloads, b"heavy");
        assert!(report.faults.is_empty(), "{:?}", report.faults);
        assert_eq!(report.completions, vec![25; 8]);
    }

    #[test]
    fn ed25519_ingress_verification_with_public_keys_only() {
        // The sound deployment: clients sign with Ed25519, the engine
        // verifies every SUBMIT at ingress holding *only* the public-key
        // registry. Honest traffic passes untouched.
        let n = 2;
        let key_seed = b"threaded-ed25519";
        let keys = faust_crypto::KeySet::generate_ed25519(n, key_seed);
        let registry = keys.registry();
        assert!(registry.is_public(), "server must hold public keys only");
        let (transport, conns) = channel::pair(n);
        let engine = ServerEngine::new(n, Box::new(UstorServer::new(n))).with_verification(
            faust_ustor::IngressVerification::Batched(std::sync::Arc::new(registry)),
        );
        let engine_thread = spawn_engine_with(engine, transport);
        let workloads = vec![
            vec![
                ThreadedOp::Write(Value::from("signed-1")),
                ThreadedOp::Write(Value::from("signed-2")),
            ],
            vec![ThreadedOp::Read(c(0))],
        ];
        let report = run_threaded_over_with(
            n,
            workloads,
            conns,
            key_seed,
            SigScheme::Ed25519,
            engine_thread,
        );
        assert!(report.faults.is_empty(), "{:?}", report.faults);
        assert_eq!(report.completions, vec![2, 1]);
        assert_eq!(report.engine_stats.rejected, 0);
        assert_eq!(report.engine_stats.submits, 3);
    }

    #[test]
    fn threaded_runtime_runs_durably_over_a_persistent_backend() {
        // The same thread-per-client runtime, with the engine built from
        // the persistent backend via `ServerEngine::from_backend`: every
        // acknowledged message is in the log afterwards, and recovery
        // rebuilds the full schedule.
        use faust_store::{Durability, PersistentBackend, PersistentServer, StoreConfig};
        let n = 2;
        let dir = faust_store::testutil::scratch_dir("threaded-durable");
        let config = StoreConfig {
            durability: Durability::Never,
            ..StoreConfig::default()
        };
        let backend = PersistentBackend::new(&dir, config.clone());
        let (transport, conns) = channel::pair(n);
        let engine = ServerEngine::from_backend(n, &backend).expect("fresh store");
        let engine_thread = spawn_engine_with(engine, transport);
        let workloads = vec![
            vec![
                ThreadedOp::Write(Value::from("d1")),
                ThreadedOp::Write(Value::from("d2")),
            ],
            vec![ThreadedOp::Read(c(0))],
        ];
        let report = run_threaded_over(n, workloads, conns, b"durable-threaded", engine_thread);
        assert!(report.faults.is_empty(), "{:?}", report.faults);
        assert_eq!(report.completions, vec![2, 1]);
        // 3 submits + 3 commits were acknowledged, so 6 records are
        // durable; recovery resumes exactly there.
        let recovered = PersistentServer::recover(&dir, n, config).expect("clean recovery");
        assert_eq!(recovered.next_seq(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threaded_runtime_group_commit_amortizes_fsyncs_and_stays_correct() {
        // The full pipeline under `Durability::Group`: replies are held
        // until the batch fsync, the serve loop honours the flush
        // deadline (no deadlock with synchronous clients), every op
        // completes, and recovery sees every acknowledged record.
        use faust_store::{Durability, PersistentBackend, PersistentServer, StoreConfig};
        let n = 3;
        let dir = faust_store::testutil::scratch_dir("threaded-group");
        let config = StoreConfig {
            durability: Durability::Group {
                max_records: 8,
                max_wait: Duration::from_millis(2),
            },
            snapshot_every: 0,
        };
        let backend = PersistentBackend::new(&dir, config.clone());
        let (transport, conns) = channel::pair(n);
        let engine = ServerEngine::from_backend(n, &backend).expect("fresh store");
        let engine_thread = spawn_engine_with(engine, transport);
        let workloads: Vec<Vec<ThreadedOp>> = (0..n)
            .map(|i| {
                (0..5)
                    .map(|s| {
                        if s % 2 == 0 {
                            ThreadedOp::Write(Value::unique(i as u32, s))
                        } else {
                            ThreadedOp::Read(c(((i as u32) + 1) % n as u32))
                        }
                    })
                    .collect()
            })
            .collect();
        let report = run_threaded_over(n, workloads, conns, b"group-threaded", engine_thread);
        assert!(report.faults.is_empty(), "{:?}", report.faults);
        assert_eq!(report.completions, vec![5; n]);
        // 15 submits + 15 commits acknowledged ⇒ 30 durable records.
        let recovered = PersistentServer::recover(&dir, n, config).expect("clean recovery");
        assert_eq!(recovered.next_seq(), 30);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threaded_run_over_tcp_loopback() {
        // The same runtime, with the engine behind real TCP framing.
        let n = 3;
        let transport =
            faust_net::TcpServerTransport::bind("127.0.0.1:0", n).expect("bind loopback");
        let addr = transport.local_addr();
        let engine_thread = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
        let conns: Vec<ClientConn> = (0..n)
            .map(|i| faust_net::tcp::connect(addr, c(i as u32)).expect("connect"))
            .collect();
        let workloads = (0..n)
            .map(|i| {
                vec![
                    ThreadedOp::Write(Value::unique(i as u32, 0)),
                    ThreadedOp::Read(c(((i as u32) + 1) % n as u32)),
                ]
            })
            .collect();
        let report = run_threaded_over(n, workloads, conns, b"tcp-threaded", engine_thread);
        assert!(report.faults.is_empty(), "{:?}", report.faults);
        assert_eq!(report.completions, vec![2; 3]);
        assert_eq!(report.engine_stats.submits, 6);
    }
}
