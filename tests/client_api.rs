//! Acceptance tests for the public fail-aware client API: everything
//! here drives [`faust::client::FaustHandle`] / [`Event`] only — no
//! driver internals, no direct `ServerEngine` access on the client side.
//!
//! * A seeded property: a pipelined handle deployment over the channel
//!   transport completes the same operations (kinds, targets,
//!   fail-aware timestamps) and converges to the same stability cuts as
//!   the equivalent `FaustDriver` script in deterministic simulation.
//! * A kill-and-restart end-to-end over real TCP with persistence and
//!   group commit: an honest restart is invisible through the handle
//!   (reconnect, cross-restart read), while a truncated log surfaces as
//!   [`Event::Violation`].

use faust::client::{offline_mesh, Event, FaustHandle, HandleConfig, WaitError};
use faust::core::runtime::spawn_engine;
use faust::core::{
    random_faust_workloads, FaustConfig, FaustDriver, FaustDriverConfig, FaustWorkloadOp,
};
use faust::store::{testutil, truncate_tail_records, Durability, PersistentBackend, StoreConfig};
use faust::types::{ClientId, OpKind, Timestamp, Value};
use faust::ustor::{ServerBackend, UstorServer};
use std::time::{Duration, Instant};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

/// (kind, target, timestamp) — the completion facts that are
/// deterministic regardless of interleaving.
type CompletionFacts = Vec<(OpKind, ClientId, Timestamp)>;

#[test]
fn pipelined_handles_match_the_driver_script() {
    let n = 3;
    let ops_per_client = 4u64;
    for seed in 0..2u64 {
        let workloads = random_faust_workloads(n, ops_per_client as usize, 0.5, seed);

        // Reference: the deterministic simulation driver on the same
        // script, run to quiescence and full stability.
        let mut driver = FaustDriver::new(
            n,
            Box::new(UstorServer::new(n)),
            FaustDriverConfig::default(),
            b"client-api-prop",
        );
        for (i, w) in workloads.clone().into_iter().enumerate() {
            driver.push_ops(c(i as u32), w);
        }
        let reference = driver.run_until(60_000);
        assert!(reference.failures.is_empty(), "seed {seed}");
        let reference_facts: Vec<CompletionFacts> = (0..n)
            .map(|i| {
                reference
                    .completions(c(i as u32))
                    .into_iter()
                    .map(|done| (done.kind, done.target, done.timestamp))
                    .collect()
            })
            .collect();
        // Timestamps count every USTOR operation including background
        // dummy reads, whose number is runtime-dependent — so "the same
        // stability cuts" means both runs converge to cuts dominating
        // the whole user workload (every user op stable w.r.t. every
        // client), which is the interleaving-independent statement.
        let user_stable = |w: &[Timestamp]| w.iter().all(|&x| x >= ops_per_client);
        for i in 0..n {
            assert!(
                user_stable(&reference.last_cut(c(i as u32)).expect("cuts issued").w),
                "seed {seed}: driver reaches full user-op stability"
            );
        }

        // The same script through live pipelined handles over the
        // channel transport (dummy reads + probes spread stability).
        let (transport, conns) = faust::net::channel::pair(n);
        let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
        let config = HandleConfig {
            faust: FaustConfig {
                probe_period: 50,
                pipeline: 3,
                ..FaustConfig::default()
            },
            tick_interval: Duration::from_millis(5),
            ..HandleConfig::default()
        };
        let mut links = offline_mesh(n);
        links.reverse();
        let workers: Vec<_> = conns
            .into_iter()
            .zip(workloads)
            .enumerate()
            .map(|(i, (conn, workload))| {
                let link = links.pop().expect("one link per client");
                std::thread::spawn(move || {
                    let mut handle = FaustHandle::new(
                        c(i as u32),
                        n,
                        b"client-api-prop",
                        &config,
                        Box::new(conn),
                    )
                    .with_offline(link);
                    for op in workload {
                        match op {
                            FaustWorkloadOp::Write(value) => handle.write(value),
                            FaustWorkloadOp::Read(register) => handle.read(register),
                            _ => unreachable!("random workloads are reads and writes"),
                        };
                    }
                    // Pump until everything completed AND this client's
                    // ops are stable with respect to everyone.
                    let deadline = Instant::now() + Duration::from_secs(20);
                    let mut events = Vec::new();
                    while Instant::now() < deadline {
                        events.extend(handle.run_for(Duration::from_millis(20)));
                        let cut = handle.stability_cut();
                        if handle.backlog() == 0 && cut.w.iter().all(|&x| x >= ops_per_client) {
                            break;
                        }
                    }
                    let facts: CompletionFacts = events
                        .iter()
                        .filter_map(|(_, e)| match e {
                            Event::Completed { completion, .. } => {
                                Some((completion.kind, completion.target, completion.timestamp))
                            }
                            _ => None,
                        })
                        .collect();
                    let cut = handle.stability_cut();
                    assert!(handle.failure().is_none(), "correct server, client {i}");
                    (facts, cut)
                })
            })
            .collect();
        for (i, worker) in workers.into_iter().enumerate() {
            let (facts, cut) = worker.join().expect("client thread");
            assert_eq!(
                facts, reference_facts[i],
                "seed {seed}: client {i} completions must match the driver"
            );
            assert!(
                user_stable(&cut.w),
                "seed {seed}: client {i} converges to the same user-op \
                 stability cut, got {cut}"
            );
        }
        engine.join().expect("engine thread");
    }
}

/// Config shared by both kill-and-restart tests: quiet handles (the
/// restart story is about reads/writes, not probes), a pipeline window,
/// group commit at production-ish CI scale.
fn restart_config() -> HandleConfig {
    HandleConfig {
        faust: FaustConfig {
            probe_period: u64::MAX / 2,
            dummy_reads: false,
            pipeline: 2,
            ..FaustConfig::default()
        },
        tick_interval: Duration::from_millis(5),
        ..HandleConfig::default()
    }
}

fn group_store() -> StoreConfig {
    StoreConfig {
        durability: Durability::Group {
            max_records: 8,
            max_wait: Duration::from_millis(2),
        },
        snapshot_every: 0,
    }
}

/// Stands up one server incarnation from `backend` on a fresh loopback
/// socket; returns its address and engine thread.
fn incarnation(
    backend: &PersistentBackend,
    n: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<faust::ustor::EngineStats>,
) {
    let transport = faust::net::TcpServerTransport::bind("127.0.0.1:0", n).expect("bind");
    let addr = transport.local_addr();
    let server = backend.build(n).expect("backend builds/recovers");
    (addr, spawn_engine(n, server, transport))
}

#[test]
fn honest_kill_and_restart_is_invisible_through_the_handle() {
    let n = 2;
    let wait = Duration::from_secs(10);
    let dir = testutil::scratch_dir("handle-e2e-honest");
    let backend = PersistentBackend::new(&dir, group_store());
    let config = restart_config();

    // Incarnation 1.
    let (addr, engine) = incarnation(&backend, n);
    let mut h0 = FaustHandle::connect_tcp(addr, c(0), n, b"handle-e2e", &config).expect("connect");
    let mut h1 = FaustHandle::connect_tcp(addr, c(1), n, b"handle-e2e", &config).expect("connect");
    let a1 = h0.write(Value::from("a1"));
    let a2 = h0.write(Value::from("a2"));
    assert_eq!(h0.wait(a1, wait).expect("completes").timestamp, 1);
    assert_eq!(h0.wait(a2, wait).expect("completes").timestamp, 2);
    let b1 = h1.write(Value::from("b1"));
    h1.wait(b1, wait).expect("completes");
    // Quiescent: disconnect, and the incarnation dies with the sockets.
    h0.disconnect();
    h1.disconnect();
    engine.join().expect("engine thread");

    // Incarnation 2: recovered from the log on a fresh socket; the same
    // handles reconnect with all session state intact.
    let (addr, engine) = incarnation(&backend, n);
    h0.reconnect(Box::new(
        faust::net::tcp::connect(addr, c(0)).expect("redial"),
    ));
    h1.reconnect(Box::new(
        faust::net::tcp::connect(addr, c(1)).expect("redial"),
    ));

    // The read crossing the restart sees the last pre-crash value...
    let r = h1.read(c(0));
    let done = h1.wait(r, wait).expect("cross-restart read");
    assert_eq!(done.read_value, Some(Some(Value::from("a2"))));
    // ...writes continue with the next timestamps...
    let a3 = h0.write(Value::from("a3"));
    assert_eq!(h0.wait(a3, wait).expect("completes").timestamp, 3);
    // ...and no violation (or stray disconnect) was ever reported.
    for handle in [&mut h0, &mut h1] {
        assert!(handle.failure().is_none());
        let events = handle.poll();
        assert!(
            !events
                .iter()
                .any(|(_, e)| matches!(e, Event::Violation { .. } | Event::Disconnected { .. })),
            "honest restart must be invisible: {events:?}"
        );
    }
    h0.disconnect();
    h1.disconnect();
    engine.join().expect("engine thread");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_log_raises_a_violation_event() {
    let n = 2;
    let wait = Duration::from_secs(10);
    let dir = testutil::scratch_dir("handle-e2e-truncated");
    let backend = PersistentBackend::new(&dir, group_store());
    let config = restart_config();

    let (addr, engine) = incarnation(&backend, n);
    let mut h0 =
        FaustHandle::connect_tcp(addr, c(0), n, b"handle-rollback", &config).expect("connect");
    let mut h1 =
        FaustHandle::connect_tcp(addr, c(1), n, b"handle-rollback", &config).expect("connect");
    let a1 = h0.write(Value::from("a1"));
    let a2 = h0.write(Value::from("a2"));
    h0.wait(a1, wait).expect("completes");
    h0.wait(a2, wait).expect("completes");
    let b1 = h1.write(Value::from("b1"));
    h1.wait(b1, wait).expect("completes");
    h0.disconnect();
    h1.disconnect();
    engine.join().expect("engine thread");

    // While the server is down its log loses acknowledged records — the
    // rollback attack (or a disk that lied about fsync). Five of the six
    // records go, so an acknowledged *submit* (C0's a2) is among them:
    // losing only trailing commits would be legitimately invisible (a
    // COMMIT is a garbage-collection expedient, not an acknowledgement).
    let kept = truncate_tail_records(&dir, 5).expect("tamper with the log");
    assert!(kept > 0, "a rollback, not a wipe");

    let (addr, engine) = incarnation(&backend, n);
    h0.reconnect(Box::new(
        faust::net::tcp::connect(addr, c(0)).expect("redial"),
    ));
    h1.reconnect(Box::new(
        faust::net::tcp::connect(addr, c(1)).expect("redial"),
    ));
    // C0's next operation hits the rolled-back schedule: the wait
    // surfaces the violation, and the event stream carries it.
    let a3 = h0.write(Value::from("a3"));
    let err = h0.wait(a3, wait).expect_err("rollback must be detected");
    assert!(matches!(err, WaitError::Violation(_)), "got {err:?}");
    let events = h0.poll();
    assert!(
        events
            .iter()
            .any(|(_, e)| matches!(e, Event::Violation { .. })),
        "expected Event::Violation, got {events:?}"
    );
    assert!(h0.failure().is_some());
    // The engine winds down once both handles depart (h1 took no part
    // in phase 2, but its connection counts).
    h0.disconnect();
    h1.disconnect();
    engine.join().expect("engine thread");
    std::fs::remove_dir_all(&dir).ok();
}
