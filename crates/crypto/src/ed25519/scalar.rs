//! Arithmetic modulo the Ed25519 group order
//! L = 2²⁵² + 27742317777372353535851937790883648493.
//!
//! Scalars are kept as canonical little-endian 32-byte strings (< L).
//! The implementation favours obviousness over speed: products are formed
//! by schoolbook multiplication into eight 64-bit limbs and reduced by a
//! simple top-down binary reduction. A reduction costs a few thousand
//! word operations — noise next to the ~250 point doublings of the curve
//! operations it feeds.

/// L as four little-endian 64-bit limbs.
const L: [u64; 4] = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

/// A scalar modulo L, canonical (value < L) little-endian encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Scalar(pub(crate) [u8; 32]);

fn to_limbs(bytes: &[u8; 32]) -> [u64; 4] {
    let mut l = [0u64; 4];
    for (i, limb) in l.iter_mut().enumerate() {
        *limb = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
    }
    l
}

fn from_limbs(l: [u64; 4]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, limb) in l.iter().enumerate() {
        out[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
    }
    out
}

/// `a < b` on 4-limb little-endian numbers.
fn lt(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// `a − b`, assuming `a ≥ b`.
fn sub(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out[i] = d2;
        borrow = (b1 | b2) as u64;
    }
    debug_assert_eq!(borrow, 0, "sub underflow");
    out
}

/// Reduces an n-limb little-endian number modulo L by top-down binary
/// reduction: fold one bit at a time into an accumulator that stays < L.
fn reduce_limbs(wide: &[u64]) -> [u64; 4] {
    let mut r = [0u64; 4];
    for i in (0..wide.len()).rev() {
        for bit in (0..64).rev() {
            // r = 2r + bit; r < L < 2²⁵³ so the shift cannot overflow.
            let mut carry = (wide[i] >> bit) & 1;
            for limb in r.iter_mut() {
                let new_carry = *limb >> 63;
                *limb = (*limb << 1) | carry;
                carry = new_carry;
            }
            debug_assert_eq!(carry, 0);
            if !lt(&r, &L) {
                r = sub(&r, &L);
            }
        }
    }
    r
}

impl Scalar {
    pub(crate) const ZERO: Scalar = Scalar([0; 32]);

    /// Whether `bytes` already encodes a canonical scalar (< L). RFC 8032
    /// requires rejecting signatures whose `s` fails this test.
    pub(crate) fn is_canonical(bytes: &[u8; 32]) -> bool {
        lt(&to_limbs(bytes), &L)
    }

    /// A canonical scalar from 32 bytes, reducing modulo L.
    pub(crate) fn from_bytes_reduced(bytes: &[u8; 32]) -> Scalar {
        Scalar(from_limbs(reduce_limbs(&to_limbs(bytes))))
    }

    /// A canonical scalar from a canonical encoding; `None` if ≥ L.
    pub(crate) fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        Scalar::is_canonical(bytes).then_some(Scalar(*bytes))
    }

    /// Reduces a 64-byte little-endian number (e.g. a SHA-512 output)
    /// modulo L — RFC 8032's interpretation of hash outputs as scalars.
    pub(crate) fn from_bytes_wide(bytes: &[u8; 64]) -> Scalar {
        let mut wide = [0u64; 8];
        for (i, limb) in wide.iter_mut().enumerate() {
            *limb = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        Scalar(from_limbs(reduce_limbs(&wide)))
    }

    pub(crate) fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// `self + rhs mod L`.
    pub(crate) fn add(&self, rhs: &Scalar) -> Scalar {
        let a = to_limbs(&self.0);
        let b = to_limbs(&rhs.0);
        let mut sum = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            let (s1, c1) = a[i].overflowing_add(b[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            sum[i] = s2;
            carry = (c1 | c2) as u64;
        }
        // Both inputs < L < 2²⁵³, so the sum fits 254 bits: no carry out.
        debug_assert_eq!(carry, 0);
        if !lt(&sum, &L) {
            sum = sub(&sum, &L);
        }
        Scalar(from_limbs(sum))
    }

    /// `self · rhs mod L`.
    pub(crate) fn mul(&self, rhs: &Scalar) -> Scalar {
        let a = to_limbs(&self.0);
        let b = to_limbs(&rhs.0);
        let mut wide = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let acc = (a[i] as u128) * (b[j] as u128) + (wide[i + j] as u128) + carry;
                wide[i + j] = acc as u64;
                carry = acc >> 64;
            }
            wide[i + 4] = carry as u64;
        }
        Scalar(from_limbs(reduce_limbs(&wide)))
    }

    /// `r + h·a mod L` — the response scalar of an Ed25519 signature.
    pub(crate) fn mul_add(h: &Scalar, a: &Scalar, r: &Scalar) -> Scalar {
        h.mul(a).add(r)
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_u64(v: u64) -> Scalar {
        let mut b = [0u8; 32];
        b[..8].copy_from_slice(&v.to_le_bytes());
        Scalar(b)
    }

    #[test]
    fn l_is_not_canonical_but_l_minus_1_is() {
        let l_bytes = from_limbs(L);
        assert!(!Scalar::is_canonical(&l_bytes));
        assert!(Scalar::from_bytes_reduced(&l_bytes).is_zero());
        let l_minus_1 = from_limbs(sub(&L, &[1, 0, 0, 0]));
        assert!(Scalar::is_canonical(&l_minus_1));
    }

    #[test]
    fn small_arithmetic() {
        let a = scalar_u64(1_000_003);
        let b = scalar_u64(999_983);
        assert_eq!(a.add(&b), scalar_u64(1_999_986));
        assert_eq!(a.mul(&b), scalar_u64(1_000_003 * 999_983));
    }

    #[test]
    fn addition_wraps_at_l() {
        let l_minus_1 = Scalar(from_limbs(sub(&L, &[1, 0, 0, 0])));
        assert!(l_minus_1.add(&scalar_u64(1)).is_zero());
        assert_eq!(l_minus_1.add(&scalar_u64(5)), scalar_u64(4));
    }

    #[test]
    fn wide_reduction_matches_known_identity() {
        // 2²⁵² ≡ L − 27742317777372353535851937790883648493 + ... : check
        // via (L−1)² mod L = 1 instead, which exercises the full pipeline.
        let l_minus_1 = Scalar(from_limbs(sub(&L, &[1, 0, 0, 0])));
        assert_eq!(l_minus_1.mul(&l_minus_1), scalar_u64(1));
    }

    #[test]
    fn wide_bytes_reduce() {
        // 2⁵¹² − 1 mod L, cross-checked against (2²⁵⁶ mod L)² ... simplest
        // sanity: reducing L·k + 7 gives 7.
        let mut wide = [0u8; 64];
        // wide = L * 3 + 7 (fits well inside 64 bytes).
        let mut carry = 0u128;
        for i in 0..4 {
            let acc = (L[i] as u128) * 3 + carry + if i == 0 { 7 } else { 0 };
            wide[i * 8..i * 8 + 8].copy_from_slice(&(acc as u64).to_le_bytes());
            carry = acc >> 64;
        }
        wide[32..40].copy_from_slice(&(carry as u64).to_le_bytes());
        assert_eq!(Scalar::from_bytes_wide(&wide), scalar_u64(7));
    }

    #[test]
    fn mul_add_composes() {
        let h = scalar_u64(12345);
        let a = scalar_u64(67890);
        let r = scalar_u64(11111);
        assert_eq!(
            Scalar::mul_add(&h, &a, &r),
            scalar_u64(12345 * 67890 + 11111)
        );
    }
}
