//! [`PersistentServer`]: the crash-safe [`Server`] implementation, and
//! [`PersistentBackend`]: its [`ServerBackend`] factory.
//!
//! The write path is strict write-ahead logging: every inbound message is
//! appended (and, under [`Durability::Always`], fsynced) **before** it is
//! applied and its reply released — so every state the server ever
//! acknowledged is reconstructible. Snapshots periodically absorb the
//! log: state is written atomically, then the log is rotated to a fresh
//! file whose `base_seq` continues the global numbering.
//!
//! If an append ever fails, the server *wedges*: it stops acknowledging
//! (returns no replies) rather than acknowledging unlogged state. To
//! clients a wedged server is a crashed server — a liveness problem the
//! fail-aware layer already models — never a safety problem.

use crate::codec::LogRecord;
use crate::log::Wal;
use crate::snapshot::{read_snapshot, write_snapshot, Snapshot};
use crate::StoreError;
use faust_types::{ClientId, CommitMsg, ReplyMsg, SubmitMsg, Timestamp};
use faust_ustor::{Server, ServerBackend, SessionResume, UstorServer};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many rebuilt replies recovery retains per client for the
/// engine's duplicate-replay cache. Must cover the deepest SUBMIT
/// pipeline a client can have in flight; matches the engine's own
/// per-session cache depth.
pub(crate) const RESUME_REPLIES_CAP: usize = 32;

/// Replays one log record against `server` while capturing the replies
/// it regenerates into per-client `rings` (bounded, oldest evicted),
/// each tagged with the SUBMIT timestamp it answers. The server is
/// deterministic, so the rebuilt reply is byte-identical to the one the
/// pre-crash server sent — exactly what a restarted engine must re-issue
/// when the client resends that SUBMIT.
pub(crate) fn replay_capturing(
    record: LogRecord,
    server: &mut dyn Server,
    rings: &mut [VecDeque<(Timestamp, ReplyMsg)>],
) {
    let from = record.from();
    let ts = record.submit_timestamp();
    for (to, reply) in record.apply(server) {
        let Some(ts) = ts else { break };
        if to == from {
            let ring = &mut rings[to.index()];
            if ring.len() == RESUME_REPLIES_CAP {
                ring.pop_front();
            }
            ring.push_back((ts, reply));
        }
    }
}

/// Assembles the per-client [`SessionResume`] records a recovered server
/// hands the engine: the last submitted timestamp and last-written-value
/// hash come from `MEM` (covering even snapshot-absorbed history), the
/// replayable replies from the post-snapshot log window in `rings`.
pub(crate) fn session_resume(
    server: &UstorServer,
    rings: Vec<VecDeque<(Timestamp, ReplyMsg)>>,
) -> Vec<SessionResume> {
    rings
        .into_iter()
        .enumerate()
        .map(|(i, ring)| {
            let entry = server.mem(ClientId::new(i as u32));
            SessionResume {
                last_timestamp: entry.timestamp,
                last_value_hash: entry
                    .value
                    .as_ref()
                    .map(|v| faust_crypto::sha256(v.as_bytes())),
                replies: ring.into_iter().collect(),
            }
        })
        .collect()
}

/// A shared virtual clock for discrete-event simulations.
///
/// A store handed one via [`PersistentServer::with_sim_clock`] measures
/// its group-commit batch age in **virtual ticks** (1 tick = 1 ms of
/// `max_wait`) instead of wall-clock `Instant`s, and reports flush
/// deadlines through [`Server::flush_deadline_at`] rather than
/// [`Server::flush_deadline`]. The simulation harness owns the clock and
/// advances it (`set`) before every interaction with the server, which
/// makes flush timing — the one wall-clock dependency in the store's hot
/// path — fully deterministic under a seed.
///
/// Cloning shares the underlying clock (it is an `Arc`).
#[derive(Debug, Clone, Default)]
pub struct SimClock(Arc<AtomicU64>);

impl SimClock {
    /// A clock starting at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances (or rewinds — the clock does not police monotonicity,
    /// the simulation does) the clock to `now`.
    pub fn set(&self, now: u64) {
        self.0.store(now, Ordering::SeqCst);
    }

    /// The current virtual time in ticks.
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// When the oldest record of the current group-commit batch was appended
/// — on whichever clock the server runs.
#[derive(Debug, Clone, Copy)]
enum BatchStart {
    /// Wall-clock servers (the production path).
    Wall(Instant),
    /// Simulation-driven servers, in [`SimClock`] ticks.
    Virtual(u64),
}

/// When appended records become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// `fsync` after every append, before the reply is released. A
    /// power-cut after an acknowledgement can no longer lose the record.
    #[default]
    Always,
    /// Never `fsync`; rely on the OS page cache. A *process* crash loses
    /// nothing (the data is in kernel buffers), a machine crash may lose
    /// the tail. Benchmark and test mode.
    Never,
    /// **Group commit**: append records *without* fsyncing and hold
    /// their replies back; one fsync per batch makes the whole batch
    /// durable, and only then are its replies released ([`Server::flush`]).
    ///
    /// Acknowledged ⇒ durable still holds, batch-wise: a reply a client
    /// can observe is always preceded by the fsync covering its record.
    /// What changes is *latency*, bounded by the two knobs: a flush
    /// becomes due once `max_records` records are waiting, or once the
    /// oldest waiting record is `max_wait` old (a forced flush — e.g. a
    /// closing transport — ignores both). A crash between append and
    /// fsync loses only records whose replies were never released.
    Group {
        /// Flush once this many records are waiting (`0` behaves as `1`).
        max_records: u64,
        /// Flush once the oldest waiting record is this old — the upper
        /// bound on reply latency added by group commit.
        max_wait: Duration,
    },
}

impl Durability {
    /// A group-commit policy with moderate defaults: batches of up to 64
    /// records, at most 2 ms of added reply latency.
    pub fn group() -> Self {
        Durability::Group {
            max_records: 64,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Configuration of a persistent store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Fsync policy for appends, snapshots, and rotations.
    pub durability: Durability,
    /// Write a snapshot and rotate the log every this many records;
    /// `0` disables automatic snapshots (the log grows unboundedly and
    /// [`PersistentServer::snapshot`] must be called by hand).
    pub snapshot_every: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            durability: Durability::Always,
            snapshot_every: 1024,
        }
    }
}

impl StoreConfig {
    /// Whether snapshots, rotations, and file creation fsync. Group
    /// commit is a *durable* policy — only the per-append fsync is
    /// amortized, never the rename barriers.
    pub(crate) fn sync(&self) -> bool {
        !matches!(self.durability, Durability::Never)
    }

    /// Whether each individual append fsyncs before returning.
    pub(crate) fn sync_each_append(&self) -> bool {
        matches!(self.durability, Durability::Always)
    }
}

/// A [`Server`] whose state survives crashes: an in-memory
/// [`UstorServer`] shadowed by the write-ahead log of [`crate::log`] and
/// the snapshots of [`crate::snapshot`].
///
/// See the crate docs for the trust story: durability here protects an
/// *honest* server from its own crashes; it does not make the server
/// trusted, and a server that tampers with its own log recovers into a
/// rollback that clients detect.
#[derive(Debug)]
pub struct PersistentServer {
    dir: PathBuf,
    config: StoreConfig,
    inner: UstorServer,
    wal: Wal,
    /// First append error, if any; once set the server is wedged and
    /// acknowledges nothing further.
    wedged: Option<StoreError>,
    /// Group commit: replies whose records are appended but whose batch
    /// has not yet been fsynced — withheld until [`Server::flush`].
    held: Vec<(ClientId, ReplyMsg)>,
    /// Records appended since the last fsync (or snapshot, which covers
    /// them durably).
    unsynced: u64,
    /// When the oldest unflushed record of the current batch was
    /// appended — the age the `max_wait` policy is measured against.
    batch_started: Option<BatchStart>,
    /// Virtual clock, when the server is simulation-driven; `None` on
    /// the production wall-clock path.
    sim_clock: Option<SimClock>,
    /// Per-client session state rebuilt by [`PersistentServer::recover`],
    /// handed to the engine once via [`Server::resume_sessions`]. Empty
    /// for a fresh store.
    resume: Vec<SessionResume>,
}

impl PersistentServer {
    /// Opens the store in `dir`, creating fresh state if the directory
    /// holds none, recovering otherwise.
    ///
    /// # Errors
    ///
    /// Structured [`StoreError`]s for recovery anomalies (see
    /// [`PersistentServer::recover`]) or file-system errors.
    pub fn open(dir: &Path, n: usize, config: StoreConfig) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        let has_wal = dir.join(crate::log::WAL_FILE).exists();
        let has_snapshot = dir.join(crate::snapshot::SNAPSHOT_FILE).exists();
        if has_wal || has_snapshot {
            return Self::recover(dir, n, config);
        }
        let wal = Wal::create(dir, n, 0, config.sync())?;
        Ok(PersistentServer {
            dir: dir.to_path_buf(),
            config,
            inner: UstorServer::new(n),
            wal,
            wedged: None,
            held: Vec::new(),
            unsynced: 0,
            batch_started: None,
            sim_clock: None,
            resume: Vec::new(),
        })
    }

    /// Rebuilds a server from the durable state in `dir`: loads the
    /// snapshot (if any), then replays the log strictly.
    ///
    /// Recovery invariants (all violations are structured errors, never
    /// panics, never a silently-absorbed prefix):
    ///
    /// * snapshot and log must both parse, checksum, and agree on the
    ///   client count (and with `n`);
    /// * log records must be consecutively numbered from the header's
    ///   `base_seq` with no duplicates, gaps, or torn tail;
    /// * records the snapshot already covers are still verified, just
    ///   not replayed (a crash between snapshot and log rotation leaves
    ///   such records behind — the one benign overlap);
    /// * the log may not start after the snapshot's coverage ends
    ///   ([`StoreError::SnapshotAheadOfLog`]) and may not be missing
    ///   entirely when a snapshot exists ([`StoreError::MissingWal`]).
    ///
    /// The rebuilt in-memory state is **bit-identical** to the pre-crash
    /// server's (asserted in `tests/recovery.rs`), so a restarted server
    /// resumes mid-protocol invisibly to clients.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingState`] if `dir` holds no state at all;
    /// otherwise the anomaly that broke recovery.
    pub fn recover(dir: &Path, n: usize, config: StoreConfig) -> Result<Self, StoreError> {
        let snapshot = read_snapshot(dir)?;
        let has_wal = dir.join(crate::log::WAL_FILE).exists();
        if !has_wal {
            return match snapshot {
                Some(_) => Err(StoreError::MissingWal),
                None => Err(StoreError::MissingState),
            };
        }
        let (wal, contents) = Wal::open(dir)?;
        if wal.n() != n {
            return Err(StoreError::ClientCountMismatch {
                expected: n,
                found: wal.n(),
            });
        }
        let (mut inner, mut applied_seq) = match snapshot {
            Some(snap) => {
                if snap.n != n {
                    return Err(StoreError::ClientCountMismatch {
                        expected: n,
                        found: snap.n,
                    });
                }
                if contents.header.base_seq > snap.next_seq {
                    return Err(StoreError::SnapshotAheadOfLog {
                        snapshot_next: snap.next_seq,
                        base_seq: contents.header.base_seq,
                    });
                }
                // The converse hole: a log whose END falls short of the
                // snapshot's coverage. The snapshot could serve the
                // state, but the append counter would rewind below
                // `snap.next_seq` and records logged at those reused
                // sequence numbers would be skipped — silently — by the
                // next recovery.
                if contents.next_seq() < snap.next_seq {
                    return Err(StoreError::LogEndsBeforeSnapshot {
                        snapshot_next: snap.next_seq,
                        log_next: contents.next_seq(),
                    });
                }
                (UstorServer::from_state(snap.state), snap.next_seq)
            }
            None => (UstorServer::new(n), 0),
        };
        let mut rings = vec![VecDeque::new(); n];
        for scanned in contents.records {
            // Records below `applied_seq` were verified by the scan but
            // are already reflected in the snapshot.
            if scanned.seq >= applied_seq {
                // Replay rebuilds state *and* recaptures the replies of
                // the post-snapshot window — the duplicate cache a
                // resumed engine answers resent SUBMITs from.
                replay_capturing(scanned.record, &mut inner, &mut rings);
                applied_seq = scanned.seq + 1;
            }
        }
        let resume = session_resume(&inner, rings);
        Ok(PersistentServer {
            dir: dir.to_path_buf(),
            config,
            inner,
            wal,
            wedged: None,
            held: Vec::new(),
            unsynced: 0,
            batch_started: None,
            sim_clock: None,
            resume,
        })
    }

    /// The recovered/active protocol state (diagnostics and tests).
    pub fn server(&self) -> &UstorServer {
        &self.inner
    }

    /// Sequence number the next logged record will carry — equals the
    /// total number of messages ever acknowledged by this store.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Records in the current log file (since the last snapshot).
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// The first append/snapshot error, if the server has wedged.
    pub fn wedge_error(&self) -> Option<&StoreError> {
        self.wedged.as_ref()
    }

    /// Replies currently withheld for group commit (diagnostics/tests).
    pub fn held_replies(&self) -> usize {
        self.held.len()
    }

    /// Records appended but not yet covered by an fsync or snapshot
    /// (diagnostics/tests).
    pub fn unsynced_records(&self) -> u64 {
        self.unsynced
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Switches the server onto a virtual clock: group-commit batch age
    /// is measured in `clock` ticks (1 tick = 1 ms of `max_wait`) and
    /// flush deadlines surface via [`Server::flush_deadline_at`] instead
    /// of [`Server::flush_deadline`]. Used by the deterministic
    /// simulator; the wall-clock path is untouched when this is never
    /// called.
    #[must_use]
    pub fn with_sim_clock(mut self, clock: SimClock) -> Self {
        self.sim_clock = Some(clock);
        self
    }

    /// `max_wait` expressed in virtual ticks (1 tick = 1 ms), at least 1
    /// so a held batch never becomes due at its own append tick.
    fn max_wait_ticks(max_wait: Duration) -> u64 {
        (max_wait.as_millis() as u64).max(1)
    }

    /// Stamps the start of a new batch on whichever clock the server
    /// runs.
    fn batch_start(&self) -> BatchStart {
        match &self.sim_clock {
            Some(clock) => BatchStart::Virtual(clock.now()),
            None => BatchStart::Wall(Instant::now()),
        }
    }

    /// Whether the current batch has aged past `max_wait`.
    fn batch_expired(&self, max_wait: Duration) -> bool {
        match self.batch_started {
            Some(BatchStart::Wall(t)) => t.elapsed() >= max_wait,
            Some(BatchStart::Virtual(t)) => self
                .sim_clock
                .as_ref()
                .is_some_and(|c| c.now().saturating_sub(t) >= Self::max_wait_ticks(max_wait)),
            None => false,
        }
    }

    /// Writes a snapshot of the current state and rotates the log.
    ///
    /// Crash-ordering: the snapshot is atomically renamed into place
    /// (durably, under [`Durability::Always`]) *before* the log is
    /// rotated, so a crash between the two leaves a snapshot plus a log
    /// whose early records it already covers — which recovery skips.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors; on error the old log keeps
    /// growing and the server stays consistent.
    pub fn snapshot(&mut self) -> Result<(), StoreError> {
        let next_seq = self.wal.next_seq();
        write_snapshot(
            &self.dir,
            &Snapshot {
                n: self.inner.num_clients(),
                next_seq,
                state: self.inner.export_state(),
                global_next_seq: None,
            },
            self.config.sync(),
        )?;
        self.wal = Wal::create(
            &self.dir,
            self.inner.num_clients(),
            next_seq,
            self.config.sync(),
        )?;
        // The (durably renamed) snapshot covers every record appended so
        // far, including an unsynced group-commit tail — those records
        // are durable now without their own fsync.
        self.unsynced = 0;
        Ok(())
    }

    /// Wedges the server: record the first error, and drop every
    /// withheld reply — their records may not be durable, and a wedged
    /// server acknowledges nothing (crash-silence).
    fn wedge(&mut self, e: StoreError) {
        self.wedged = Some(e);
        self.held.clear();
        self.unsynced = 0;
        self.batch_started = None;
    }

    /// Appends `record` ahead of applying it; on failure wedges the
    /// server. Returns whether the record was appended (and, under
    /// per-append fsync, made durable — so the message may be
    /// acknowledged).
    fn log(&mut self, record: &LogRecord) -> bool {
        if self.wedged.is_some() {
            return false;
        }
        match self.wal.append(record, self.config.sync_each_append()) {
            Ok(_) => true,
            Err(e) => {
                self.wedge(e);
                false
            }
        }
    }

    /// Snapshot if the rotation threshold is reached; a failed snapshot
    /// wedges the server (its log can no longer be compacted, but more
    /// importantly the failure is surfaced instead of swallowed).
    fn maybe_snapshot(&mut self) {
        if self.config.snapshot_every == 0 || self.wal.records() < self.config.snapshot_every {
            return;
        }
        if let Err(e) = self.snapshot() {
            self.wedge(e);
        }
    }
}

impl PersistentServer {
    /// The shared write path: log the record (write-ahead), then apply
    /// the very record that was logged — no copies, no divergence
    /// between what is durable and what executed.
    ///
    /// Under [`Durability::Group`] the replies are *withheld* instead of
    /// returned: they join the current batch and come out of
    /// [`Server::flush`] once the batch's single fsync has run. If the
    /// batch fills up (`max_records`) right here, the flush happens
    /// inline and this call releases the whole batch.
    fn log_then_apply(&mut self, record: LogRecord) -> Vec<(ClientId, ReplyMsg)> {
        if !self.log(&record) {
            return Vec::new(); // wedged: crash-silence, never unlogged acks
        }
        let replies = record.apply(&mut self.inner);
        match self.config.durability {
            Durability::Group { max_records, .. } => {
                self.unsynced += 1;
                let start = self.batch_start();
                self.batch_started.get_or_insert(start);
                self.held.extend(replies);
                self.maybe_snapshot();
                if self.unsynced >= max_records.max(1) {
                    self.flush(true)
                } else {
                    Vec::new()
                }
            }
            Durability::Always | Durability::Never => {
                self.maybe_snapshot();
                replies
            }
        }
    }
}

impl Server for PersistentServer {
    fn on_submit(&mut self, client: ClientId, msg: SubmitMsg) -> Vec<(ClientId, ReplyMsg)> {
        self.log_then_apply(LogRecord::Submit { from: client, msg })
    }

    fn resume_sessions(&mut self) -> Vec<SessionResume> {
        std::mem::take(&mut self.resume)
    }

    fn on_commit(&mut self, client: ClientId, msg: CommitMsg) -> Vec<(ClientId, ReplyMsg)> {
        self.log_then_apply(LogRecord::Commit { from: client, msg })
    }

    /// The group-commit release point: fsync the batch once, then hand
    /// back every withheld reply. Without [`Durability::Group`] (or with
    /// nothing waiting) this is a no-op.
    ///
    /// A non-forced flush respects the batching policy — it runs only
    /// once the batch is full (`max_records`), old enough (`max_wait`),
    /// or already durable (absorbed by a snapshot). A failed fsync
    /// wedges the server and the withheld replies are dropped, exactly
    /// like a failed append: crash-silence, never an unfsynced ack.
    fn flush(&mut self, force: bool) -> Vec<(ClientId, ReplyMsg)> {
        let Durability::Group {
            max_records,
            max_wait,
        } = self.config.durability
        else {
            return Vec::new();
        };
        if self.wedged.is_some() || (self.held.is_empty() && self.unsynced == 0) {
            return Vec::new();
        }
        let due = force
            || self.unsynced == 0 // snapshot already made the batch durable
            || self.unsynced >= max_records.max(1)
            || self.batch_expired(max_wait);
        if !due {
            return Vec::new();
        }
        if self.unsynced > 0 {
            if let Err(e) = self.wal.sync() {
                self.wedge(e);
                return Vec::new();
            }
            self.unsynced = 0;
        }
        self.batch_started = None;
        std::mem::take(&mut self.held)
    }

    fn flush_deadline(&self) -> Option<Instant> {
        let Durability::Group { max_wait, .. } = self.config.durability else {
            return None;
        };
        if self.wedged.is_some() || (self.held.is_empty() && self.unsynced == 0) {
            return None;
        }
        // `batch_started` is always `Some` while anything is held or
        // unsynced (every append sets it; wedge and flush clear all
        // three together) — `?` keeps that invariant self-enforcing.
        match self.batch_started? {
            BatchStart::Wall(t) => Some(t + max_wait),
            // A virtual-clock batch reports via `flush_deadline_at`.
            BatchStart::Virtual(_) => None,
        }
    }

    fn flush_deadline_at(&self) -> Option<u64> {
        let Durability::Group { max_wait, .. } = self.config.durability else {
            return None;
        };
        if self.wedged.is_some() || (self.held.is_empty() && self.unsynced == 0) {
            return None;
        }
        match self.batch_started? {
            BatchStart::Wall(_) => None,
            BatchStart::Virtual(t) => Some(t + Self::max_wait_ticks(max_wait)),
        }
    }
}

/// The persistent [`ServerBackend`]: building it *recovers* whatever the
/// directory holds (or initializes fresh state), so handing the same
/// backend to [`CrashRestartServer`](faust_ustor::CrashRestartServer) —
/// or calling it again after a real process restart — resumes the
/// schedule where the log left it.
#[derive(Debug, Clone)]
pub struct PersistentBackend {
    /// Store directory.
    pub dir: PathBuf,
    /// Store configuration.
    pub config: StoreConfig,
}

impl PersistentBackend {
    /// A backend rooted at `dir` with `config`.
    pub fn new(dir: impl Into<PathBuf>, config: StoreConfig) -> Self {
        PersistentBackend {
            dir: dir.into(),
            config,
        }
    }
}

impl ServerBackend for PersistentBackend {
    fn build(&self, n: usize) -> std::io::Result<Box<dyn Server + Send>> {
        let server = PersistentServer::open(&self.dir, n, self.config.clone())?;
        Ok(Box::new(server))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{run_op, scratch_dir};
    use faust_types::Value;
    use faust_ustor::UstorClient;

    fn no_sync() -> StoreConfig {
        StoreConfig {
            durability: Durability::Never,
            ..StoreConfig::default()
        }
    }

    fn clients(n: usize) -> Vec<UstorClient> {
        crate::testutil::clients(n, b"store-server-tests")
    }

    #[test]
    fn logs_before_acknowledging_and_counts_seqs() {
        let dir = scratch_dir("srv-seq");
        let mut server = PersistentServer::open(&dir, 2, no_sync()).unwrap();
        let mut cs = clients(2);
        let submit = cs[0].begin_write(Value::from("v")).unwrap();
        run_op(&mut server, &mut cs[0], submit);
        // One submit + one commit logged.
        assert_eq!(server.next_seq(), 2);
        assert_eq!(server.wal_records(), 2);
        assert!(server.wedge_error().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_snapshot_rotates_the_log() {
        let dir = scratch_dir("srv-rotate");
        let config = StoreConfig {
            durability: Durability::Never,
            snapshot_every: 4,
        };
        let mut server = PersistentServer::open(&dir, 2, config.clone()).unwrap();
        let mut cs = clients(2);
        for round in 0..4u64 {
            let submit = cs[0].begin_write(Value::unique(0, round)).unwrap();
            run_op(&mut server, &mut cs[0], submit);
        }
        // 8 records total; rotation happened at least once.
        assert_eq!(server.next_seq(), 8);
        assert!(server.wal_records() < 8, "log was compacted");
        assert!(dir.join(crate::snapshot::SNAPSHOT_FILE).exists());
        // And the rotated store still recovers to the same state.
        let reference = server.server().clone();
        drop(server);
        let recovered = PersistentServer::recover(&dir, 2, config).unwrap();
        assert_eq!(*recovered.server(), reference);
        assert_eq!(recovered.next_seq(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_on_empty_dir_initializes_and_recover_demands_state() {
        let dir = scratch_dir("srv-fresh");
        assert!(matches!(
            PersistentServer::recover(&dir, 2, no_sync()).unwrap_err(),
            StoreError::MissingState
        ));
        let server = PersistentServer::open(&dir, 2, no_sync()).unwrap();
        assert_eq!(server.next_seq(), 0);
        drop(server);
        // Now open() recovers instead of reinitializing.
        let server = PersistentServer::open(&dir, 2, no_sync()).unwrap();
        assert_eq!(server.next_seq(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_count_mismatch_is_rejected() {
        let dir = scratch_dir("srv-n");
        drop(PersistentServer::open(&dir, 2, no_sync()).unwrap());
        assert!(matches!(
            PersistentServer::recover(&dir, 3, no_sync()).unwrap_err(),
            StoreError::ClientCountMismatch {
                expected: 3,
                found: 2
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Group commit with thresholds no test path reaches by accident:
    /// releases happen only when the test flushes or fills the batch.
    fn group(max_records: u64) -> StoreConfig {
        StoreConfig {
            durability: Durability::Group {
                max_records,
                max_wait: std::time::Duration::from_secs(3600),
            },
            snapshot_every: 0,
        }
    }

    #[test]
    fn group_commit_withholds_replies_until_flush() {
        let dir = scratch_dir("srv-group-hold");
        let mut server = PersistentServer::open(&dir, 2, group(100)).unwrap();
        let mut cs = clients(2);
        let submit = cs[0].begin_write(Value::from("held")).unwrap();
        // The append happens, but the reply is withheld: acked ⇒ durable.
        assert!(server.on_submit(ClientId::new(0), submit).is_empty());
        assert_eq!(server.held_replies(), 1);
        assert_eq!(server.unsynced_records(), 1);
        assert_eq!(server.next_seq(), 1, "record was appended");
        // A non-forced flush is not due (batch small, age young).
        assert!(server.flush(false).is_empty());
        assert_eq!(server.held_replies(), 1);
        assert!(server.flush_deadline().is_some());
        // A forced flush fsyncs once and releases the reply.
        let mut released = server.flush(true);
        assert_eq!(released.len(), 1);
        assert_eq!(server.held_replies(), 0);
        assert_eq!(server.unsynced_records(), 0);
        assert!(server.flush_deadline().is_none());
        // The released reply is a perfectly ordinary protocol reply.
        let (to, reply) = released.pop().unwrap();
        assert_eq!(to, ClientId::new(0));
        let (commit, done) = cs[0].handle_reply(reply).expect("correct server");
        assert_eq!(done.timestamp, 1);
        // The commit's append joins the next batch.
        assert!(server
            .on_commit(ClientId::new(0), commit.unwrap())
            .is_empty());
        assert_eq!(server.unsynced_records(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_releases_inline_when_the_batch_fills() {
        let dir = scratch_dir("srv-group-full");
        let mut server = PersistentServer::open(&dir, 3, group(3)).unwrap();
        let mut cs = clients(3);
        for i in 0..2u32 {
            let submit = cs[i as usize].begin_write(Value::unique(i, 0)).unwrap();
            assert!(server.on_submit(ClientId::new(i), submit).is_empty());
        }
        // The third append fills the batch: one fsync, all three replies
        // released by the very on_submit call that crossed the line.
        let submit = cs[2].begin_write(Value::unique(2, 0)).unwrap();
        let released = server.on_submit(ClientId::new(2), submit);
        assert_eq!(released.len(), 3);
        assert_eq!(server.unsynced_records(), 0);
        assert_eq!(server.held_replies(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_max_wait_makes_a_flush_due() {
        let dir = scratch_dir("srv-group-age");
        let config = StoreConfig {
            durability: Durability::Group {
                max_records: 1000,
                max_wait: std::time::Duration::from_millis(1),
            },
            snapshot_every: 0,
        };
        let mut server = PersistentServer::open(&dir, 1, config).unwrap();
        let mut cs = clients(1);
        let submit = cs[0].begin_write(Value::from("aging")).unwrap();
        assert!(server.on_submit(ClientId::new(0), submit).is_empty());
        let deadline = server.flush_deadline().expect("reply is held");
        std::thread::sleep(deadline.saturating_duration_since(std::time::Instant::now()));
        std::thread::sleep(std::time::Duration::from_millis(2));
        // Past max_wait, an ordinary (non-forced) flush is due.
        assert_eq!(server.flush(false).len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn virtual_clock_batch_ages_in_ticks_not_wall_time() {
        let dir = scratch_dir("srv-group-vclock");
        let config = StoreConfig {
            durability: Durability::Group {
                max_records: 1000,
                max_wait: std::time::Duration::from_millis(5),
            },
            snapshot_every: 0,
        };
        let clock = SimClock::new();
        clock.set(100);
        let mut server = PersistentServer::open(&dir, 1, config)
            .unwrap()
            .with_sim_clock(clock.clone());
        let mut cs = clients(1);
        let submit = cs[0].begin_write(Value::from("virtual")).unwrap();
        assert!(server.on_submit(ClientId::new(0), submit).is_empty());
        // Virtual batches report through flush_deadline_at, never the
        // wall-clock method.
        assert!(server.flush_deadline().is_none());
        assert_eq!(server.flush_deadline_at(), Some(105));
        // No amount of *wall* time makes the batch due — only ticks do.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(server.flush(false).is_empty());
        clock.set(104);
        assert!(server.flush(false).is_empty(), "one tick short");
        clock.set(105);
        assert_eq!(server.flush(false).len(), 1, "due exactly at deadline");
        assert!(server.flush_deadline_at().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn virtual_clock_sub_millisecond_max_wait_rounds_up_to_one_tick() {
        let dir = scratch_dir("srv-group-vclock-subms");
        let config = StoreConfig {
            durability: Durability::Group {
                max_records: 1000,
                max_wait: std::time::Duration::from_micros(100),
            },
            snapshot_every: 0,
        };
        let clock = SimClock::new();
        let mut server = PersistentServer::open(&dir, 1, config)
            .unwrap()
            .with_sim_clock(clock.clone());
        let mut cs = clients(1);
        let submit = cs[0].begin_write(Value::from("v")).unwrap();
        server.on_submit(ClientId::new(0), submit);
        // Rounded up: never due at the append tick itself.
        assert_eq!(server.flush_deadline_at(), Some(1));
        assert!(server.flush(false).is_empty());
        clock.set(1);
        assert_eq!(server.flush(false).len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_absorbs_an_unsynced_group_batch() {
        let dir = scratch_dir("srv-group-snap");
        let config = StoreConfig {
            durability: Durability::Group {
                max_records: 1000,
                max_wait: std::time::Duration::from_secs(3600),
            },
            snapshot_every: 2,
        };
        let mut server = PersistentServer::open(&dir, 2, config).unwrap();
        let mut cs = clients(2);
        for i in 0..2u32 {
            let submit = cs[i as usize].begin_write(Value::unique(i, 0)).unwrap();
            server.on_submit(ClientId::new(i), submit);
        }
        // The rotation threshold hit: the durably-written snapshot now
        // covers the batch, so nothing is left unsynced...
        assert_eq!(server.unsynced_records(), 0);
        assert!(dir.join(crate::snapshot::SNAPSHOT_FILE).exists());
        // ...and the next non-forced flush releases without any policy
        // wait (the records are already durable).
        assert_eq!(server.flush(false).len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_rebuilds_the_duplicate_reply_cache() {
        use faust_types::Wire;
        let dir = scratch_dir("srv-resume");
        let mut server = PersistentServer::open(&dir, 2, no_sync()).unwrap();
        let mut cs = clients(2);
        let submit = cs[0].begin_write(Value::from("durable")).unwrap();
        run_op(&mut server, &mut cs[0], submit);
        // A read whose ack is lost with the connection: logged and
        // applied, but the client never saw the reply.
        let read = cs[0].begin_read(ClientId::new(0)).unwrap();
        let (_, original) = server.on_submit(ClientId::new(0), read).pop().unwrap();
        drop(server); // crash

        let mut server = PersistentServer::recover(&dir, 2, no_sync()).unwrap();
        let resume = server.resume_sessions();
        assert_eq!(resume.len(), 2);
        assert_eq!(resume[0].last_timestamp, 2, "write then read");
        assert_eq!(
            resume[0].last_value_hash,
            Some(faust_crypto::sha256(Value::from("durable").as_bytes()))
        );
        // The rebuilt ts=2 reply is byte-identical to the lost one — a
        // resent SUBMIT gets the exact ack the pre-crash server sent.
        let cached = resume[0]
            .replies
            .iter()
            .find(|(ts, _)| *ts == 2)
            .map(|(_, r)| r.encode());
        assert_eq!(cached, Some(original.encode()));
        assert_eq!(resume[1].last_timestamp, 0);
        assert!(resume[1].replies.is_empty());
        // The resume state is surrendered once, to one engine.
        assert!(server.resume_sessions().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backend_builds_and_rebuilds() {
        let dir = scratch_dir("srv-backend");
        let backend = PersistentBackend::new(&dir, no_sync());
        let mut server = backend.build(2).unwrap();
        let mut cs = clients(2);
        let submit = cs[0].begin_write(Value::from("durable")).unwrap();
        run_op(server.as_mut(), &mut cs[0], submit);
        drop(server);
        // Rebuild = recover: the read sees the pre-"crash" write.
        let mut server = backend.build(2).unwrap();
        let submit = cs[1].begin_read(ClientId::new(0)).unwrap();
        let (_, reply) = server.on_submit(ClientId::new(1), submit).pop().unwrap();
        let (_, done) = cs[1].handle_reply(reply).expect("no violation");
        assert_eq!(done.read_value, Some(Some(Value::from("durable"))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
