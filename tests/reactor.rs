//! Many-connection and hostile-connection gauntlet for the reactor
//! transport: one event-loop thread serving connections ≫ threads, with
//! admission control doing the degrading under overload.
//!
//! The connection count of the load test scales with
//! `FAUST_REACTOR_CONNS` (default 128 for quick local runs; CI's `load`
//! job runs ≥ 512 in release mode) and exports the reactor's counters as
//! JSON to `FAUST_REACTOR_STATS_JSON` when set, which CI uploads as an
//! artifact.

use faust::crypto::{KeySet, SigContext, Signer};
use faust::net::{
    DisconnectReason, Incoming, ReactorConfig, ReactorStats, ReactorTransport, ServerTransport,
};
use faust::types::frame::{read_frame, write_frame};
use faust::types::op::{data_signing_bytes, submit_signing_bytes, InvocationTuple};
use faust::types::{ClientId, OpKind, SubmitMsg, UstorMsg, Value};
use faust::ustor::{serve, EngineStats, ServerEngine, UstorClient, UstorServer};
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn sessions(keys: &KeySet, n: usize) -> Vec<UstorClient> {
    (0..n)
        .map(|i| {
            UstorClient::new(
                c(i as u32),
                n,
                keys.keypair(i as u32).expect("generated").clone(),
                keys.registry(),
            )
        })
        .collect()
}

/// Serves a correct USTOR server over the reactor on one thread,
/// returning everything the assertions need once the transport closes.
fn spawn_reactor_server(
    n: usize,
    cfg: ReactorConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<(
        EngineStats,
        ReactorStats,
        Vec<(Option<ClientId>, DisconnectReason)>,
        usize,
    )>,
) {
    let mut transport =
        ReactorTransport::bind_with("127.0.0.1:0", n, cfg).expect("bind loopback reactor");
    let addr = transport.local_addr();
    let handle = std::thread::spawn(move || {
        let mut engine = ServerEngine::new(n, Box::new(UstorServer::new(n)));
        serve(&mut engine, &mut transport);
        (
            engine.stats().clone(),
            transport.stats().clone(),
            transport.recent_disconnects(),
            transport.buffered_bytes(),
        )
    });
    (addr, handle)
}

fn connect_hello(addr: std::net::SocketAddr, id: ClientId) -> TcpStream {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).ok();
    write_frame(&mut s, &id).expect("hello");
    s
}

/// Blocking-reads the next REPLY frame off a raw socket.
fn next_reply(sock: &mut TcpStream) -> faust::types::ReplyMsg {
    match read_frame::<_, UstorMsg>(sock)
        .expect("reply stream")
        .expect("server stays up")
    {
        UstorMsg::Reply(r) => r,
        _ => panic!("server sends only replies"),
    }
}

/// One full sequential operation (submit → reply → commit) for session
/// `i` over its raw socket; returns the completion.
fn full_op(
    sessions: &mut [UstorClient],
    socks: &mut [TcpStream],
    i: usize,
    submit: SubmitMsg,
) -> faust::ustor::OpCompletion {
    write_frame(&mut socks[i], &UstorMsg::Submit(submit)).expect("submit");
    let reply = next_reply(&mut socks[i]);
    let (commit, done) = sessions[i]
        .handle_reply(reply)
        .expect("fail-aware checks pass against a correct server");
    write_frame(
        &mut socks[i],
        &UstorMsg::Commit(commit.expect("immediate mode")),
    )
    .expect("commit");
    done
}

/// The load gauntlet: `FAUST_REACTOR_CONNS` (default 128, CI ≥ 512)
/// concurrent connections through a FULL FAUST run — every client
/// writes, then reads its neighbour's register and verifies the value,
/// with every reply passing the client's fail-aware checks — served by a
/// SINGLE reactor thread. Bounded memory is asserted from the reactor's
/// own accounting, not hoped for.
#[test]
fn many_connections_full_faust_run_on_one_reactor_thread() {
    let n: usize = std::env::var("FAUST_REACTOR_CONNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    assert!(n >= 2, "the neighbour-read phase needs at least 2 clients");
    let cfg = ReactorConfig {
        max_conns: n + 8,
        ..ReactorConfig::default()
    };
    let (addr, server) = spawn_reactor_server(n, cfg);

    let keys = KeySet::generate(n, b"reactor-e2e");
    let mut sessions = sessions(&keys, n);
    let mut socks: Vec<TcpStream> = (0..n).map(|i| connect_hello(addr, c(i as u32))).collect();

    // Phase 1 — every client writes a distinctive value. Breadth-first:
    // all submits out, then replies in, so all `n` connections carry
    // traffic concurrently.
    for i in 0..n {
        let submit = sessions[i]
            .begin_write(Value::unique(i as u32, 1))
            .expect("idle");
        write_frame(&mut socks[i], &UstorMsg::Submit(submit)).expect("submit");
    }
    for i in 0..n {
        let reply = next_reply(&mut socks[i]);
        let (commit, _) = sessions[i]
            .handle_reply(reply)
            .expect("fail-aware checks pass");
        write_frame(
            &mut socks[i],
            &UstorMsg::Commit(commit.expect("immediate mode")),
        )
        .expect("commit");
    }

    // Phase 2 — every client reads its neighbour's register through the
    // untrusted store and verifies the value end to end.
    for i in 0..n {
        let neighbour = c(((i + 1) % n) as u32);
        let submit = sessions[i].begin_read(neighbour).expect("idle");
        write_frame(&mut socks[i], &UstorMsg::Submit(submit)).expect("submit");
    }
    for i in 0..n {
        let neighbour = ((i + 1) % n) as u32;
        let reply = next_reply(&mut socks[i]);
        let (commit, done) = sessions[i]
            .handle_reply(reply)
            .expect("fail-aware checks pass");
        assert_eq!(
            done.read_value,
            Some(Some(Value::unique(neighbour, 1))),
            "client {i} read its neighbour's write"
        );
        write_frame(
            &mut socks[i],
            &UstorMsg::Commit(commit.expect("immediate mode")),
        )
        .expect("commit");
    }

    drop(socks);
    let (engine, reactor, _recent, buffered) = server.join().expect("server thread");

    assert_eq!(engine.submits, 2 * n as u64);
    assert_eq!(engine.commits, 2 * n as u64);
    assert_eq!(engine.rejected, 0);
    assert_eq!(reactor.accepted, n as u64);
    assert_eq!(reactor.peak_conns, n, "all connections were open at once");
    assert_eq!(reactor.shed(), 0);
    assert_eq!(reactor.msgs_in, 4 * n as u64);
    // Bounded memory, by the reactor's own accounting: nothing left
    // buffered at close, and the peak stayed far below what unbounded
    // buffering of n concurrent streams could reach.
    assert_eq!(buffered, 0);
    assert!(
        reactor.peak_buffered_bytes < 16 << 20,
        "peak buffered {} B",
        reactor.peak_buffered_bytes
    );

    // CI's load job uploads these counters as the run's artifact.
    if let Ok(path) = std::env::var("FAUST_REACTOR_STATS_JSON") {
        let json = format!(
            "{{\n  \"conns\": {},\n  \"reactor\": {{\n    \"accepted\": {},\n    \"shed_over_capacity\": {},\n    \"shed_memory_pressure\": {},\n    \"msgs_in\": {},\n    \"bytes_in\": {},\n    \"frames_out\": {},\n    \"bytes_out\": {},\n    \"socket_writes\": {},\n    \"read_pauses\": {},\n    \"global_pauses\": {},\n    \"polls\": {},\n    \"peak_conns\": {},\n    \"peak_buffered_bytes\": {},\n    \"hello_timeouts\": {},\n    \"departed\": {}\n  }},\n  \"engine\": {{\n    \"submits\": {},\n    \"commits\": {},\n    \"frames_out\": {},\n    \"flushes\": {}\n  }}\n}}\n",
            n,
            reactor.accepted,
            reactor.shed_over_capacity,
            reactor.shed_memory_pressure,
            reactor.msgs_in,
            reactor.bytes_in,
            reactor.frames_out,
            reactor.bytes_out,
            reactor.socket_writes,
            reactor.read_pauses,
            reactor.global_pauses,
            reactor.polls,
            reactor.peak_conns,
            reactor.peak_buffered_bytes,
            reactor.hello_timeouts,
            reactor.departed,
            engine.submits,
            engine.commits,
            engine.frames_out,
            engine.flushes,
        );
        std::fs::write(&path, json).expect("write reactor stats artifact");
    }
}

/// Overload: with the connection cap at 4, eight extra connections are
/// shed at accept with a typed reason (the peers observe prompt EOF, not
/// a hang), while the four admitted clients keep completing fail-aware
/// operations throughout.
#[test]
fn overload_sheds_with_typed_reason_while_admitted_clients_complete() {
    let n = 4;
    let cfg = ReactorConfig {
        max_conns: n,
        ..ReactorConfig::default()
    };
    let (addr, server) = spawn_reactor_server(n, cfg);

    let keys = KeySet::generate(n, b"reactor-overload");
    let mut sessions = sessions(&keys, n);
    let mut socks: Vec<TcpStream> = (0..n).map(|i| connect_hello(addr, c(i as u32))).collect();
    // Every admitted client completes a first op — all four slots are
    // registered and occupied before the overload arrives.
    for i in 0..n {
        let submit = sessions[i]
            .begin_write(Value::unique(i as u32, 1))
            .expect("idle");
        full_op(&mut sessions, &mut socks, i, submit);
    }

    // The stampede: eight connections beyond the cap. Each must observe
    // EOF (shed-on-accept closes immediately) rather than a stall.
    for k in 0..8 {
        let mut extra = TcpStream::connect(addr).expect("connect");
        extra
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut buf = [0u8; 1];
        assert_eq!(
            extra
                .read(&mut buf)
                .expect("shed peer sees EOF, not a hang"),
            0,
            "extra connection {k} was shed with EOF"
        );
    }

    // Admitted clients still complete under (past) overload.
    for i in 0..n {
        let submit = sessions[i]
            .begin_write(Value::unique(i as u32, 2))
            .expect("idle");
        full_op(&mut sessions, &mut socks, i, submit);
    }

    drop(socks);
    let (engine, reactor, recent, _buffered) = server.join().expect("server thread");
    assert_eq!(engine.submits, 2 * n as u64);
    assert_eq!(reactor.accepted, n as u64);
    assert_eq!(reactor.shed_over_capacity, 8);
    assert!(
        recent
            .iter()
            .any(|(id, r)| id.is_none() && *r == DisconnectReason::ShedOverCapacity),
        "shed reason is typed and logged: {recent:?}"
    );
    // No unbounded growth anywhere near the caps.
    assert!(reactor.peak_buffered_bytes < 1 << 20);
}

/// Memory-pressure admission, driven on the transport directly. The
/// serve loop always drains queued messages before polling again, so by
/// the time an accept is processed, buffered pressure comes from egress
/// backlog (replies a client has not consumed) and partial frames — this
/// test builds exactly that: a large egress backlog to a non-reading
/// client pushes buffered bytes over the global budget, a new connection
/// is shed with `ShedMemoryPressure`, and once the backlog drains the
/// budget recovers and the next connection is admitted again.
#[test]
fn memory_pressure_sheds_accepts_until_the_backlog_drains() {
    let budget = 8usize << 20;
    let cfg = ReactorConfig {
        max_buffered_bytes: budget,
        // Egress cap far above what we enqueue: this test must trip the
        // GLOBAL budget, not the per-connection slow-consumer cap.
        max_egress_bytes: 256 << 20,
        ..ReactorConfig::default()
    };
    let mut transport =
        ReactorTransport::bind_with("127.0.0.1:0", 2, cfg).expect("bind loopback reactor");
    let addr = transport.local_addr();

    // Client 0 connects and stops reading; the "engine" (us) hands the
    // transport ~16 MiB of frames for it. The kernel's socket buffers
    // absorb a few MiB; the rest stays in the reactor's egress buffer,
    // counted against the global budget. (The transport moves frames
    // verbatim — garbage signatures are fine at this layer.)
    let mut silent = connect_hello(addr, c(0));
    let ping = UstorMsg::Commit(faust::types::CommitMsg {
        version: faust::types::Version::initial(2),
        commit_sig: faust::crypto::Signature::garbage(),
        proof_sig: faust::crypto::Signature::garbage(),
    });
    write_frame(&mut silent, &ping).expect("ping");
    // Receiving its first message proves the HELLO was processed —
    // replies addressed to it will reach its connection, not the void.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "client 0 never registered");
        if let Incoming::Msg(from, _) =
            transport.recv_deadline(Instant::now() + Duration::from_millis(20))
        {
            assert_eq!(from, c(0));
            break;
        }
    }
    let junk = UstorMsg::Submit(SubmitMsg {
        timestamp: 1,
        tuple: InvocationTuple {
            client: c(0),
            kind: OpKind::Write,
            register: c(0),
            sig: faust::crypto::Signature::garbage(),
        },
        value: Some(Value::new(vec![0x5A; 64 << 10])),
        data_sig: faust::crypto::Signature::garbage(),
        piggyback: None,
    });
    transport.send_batch(c(0), vec![junk; 256]);
    assert!(
        transport.buffered_bytes() >= budget,
        "backlog {} B never exceeded the {budget} B budget",
        transport.buffered_bytes()
    );

    // A new connection now gets shed for memory pressure, with EOF
    // rather than a hang on the peer's side.
    let mut refused = TcpStream::connect(addr).expect("connect");
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let deadline = Instant::now() + Duration::from_secs(10);
    while transport.stats().shed_memory_pressure == 0 {
        assert!(Instant::now() < deadline, "accept was never shed");
        let _ = transport.recv_deadline(Instant::now() + Duration::from_millis(20));
    }
    let mut buf = [0u8; 1];
    assert_eq!(refused.read(&mut buf).expect("EOF"), 0, "refused with EOF");

    // The silent client starts reading: the backlog drains (the reactor
    // flushes on write-readiness as the kernel buffers empty) and the
    // budget recovers.
    silent
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("timeout");
    let mut sink = vec![0u8; 256 << 10];
    let deadline = Instant::now() + Duration::from_secs(60);
    while transport.buffered_bytes() > 0 {
        assert!(Instant::now() < deadline, "backlog never drained");
        let _ = silent.read(&mut sink);
        let _ = transport.recv_deadline(Instant::now() + Duration::from_millis(20));
    }

    // A later connection is admitted and served normally.
    let mut late = connect_hello(addr, c(1));
    write_frame(
        &mut late,
        &UstorMsg::Commit(faust::types::CommitMsg {
            version: faust::types::Version::initial(2),
            commit_sig: faust::crypto::Signature::garbage(),
            proof_sig: faust::crypto::Signature::garbage(),
        }),
    )
    .expect("late client's message");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "late client never served");
        if let Incoming::Msg(from, _) =
            transport.recv_deadline(Instant::now() + Duration::from_millis(20))
        {
            assert_eq!(from, c(1));
            break;
        }
    }

    drop(silent);
    drop(late);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "transport never closed");
        if matches!(
            transport.recv_deadline(Instant::now() + Duration::from_millis(20)),
            Incoming::Closed
        ) {
            break;
        }
    }
    let stats = transport.stats();
    assert_eq!(stats.shed_memory_pressure, 1);
    assert_eq!(stats.accepted, 2);
    assert!(
        transport
            .recent_disconnects()
            .iter()
            .any(|(id, r)| id.is_none() && *r == DisconnectReason::ShedMemoryPressure),
        "shed reason is typed: {:?}",
        transport.recent_disconnects()
    );
    assert_eq!(transport.buffered_bytes(), 0);
}

/// Hostile connections are isolated without stalling honest clients: a
/// half-open socket that never completes HELLO is reaped on a timer, and
/// a slow-loris peer dribbling one byte at a time gets exactly its own
/// latency — the honest client's operation completes while the loris is
/// still dribbling.
#[test]
fn slow_loris_and_half_open_hello_are_isolated_from_honest_clients() {
    let n = 2;
    let cfg = ReactorConfig {
        hello_timeout: Duration::from_millis(400),
        ..ReactorConfig::default()
    };
    let (addr, server) = spawn_reactor_server(n, cfg);

    let keys = KeySet::generate(n, b"reactor-hostile");
    let mut all = sessions(&keys, n);
    let loris_session = all.pop().expect("two sessions");
    let honest_session = all.pop().expect("two sessions");

    // The half-open connection: never sends HELLO.
    let mut half_open = TcpStream::connect(addr).expect("connect");
    half_open
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    // The loris: valid HELLO and a valid full operation, dribbled one
    // byte at a time. It must be served (it is merely slow, not wrong) —
    // but on ITS latency budget, nobody else's.
    let honest_done = Arc::new(AtomicBool::new(false));
    let honest_done_for_loris = Arc::clone(&honest_done);
    let loris = std::thread::spawn(move || {
        let mut session = loris_session;
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.set_nodelay(true).ok();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &c(1)).expect("encode hello");
        let submit = session
            .begin_write(Value::from("loris-finally"))
            .expect("idle");
        write_frame(&mut bytes, &UstorMsg::Submit(submit)).expect("encode submit");
        for b in bytes {
            use std::io::Write as _;
            sock.write_all(&[b]).expect("dribble");
            sock.flush().ok();
            std::thread::sleep(Duration::from_millis(2));
        }
        let reply = next_reply(&mut sock);
        let honest_was_already_done = honest_done_for_loris.load(Ordering::SeqCst);
        let (commit, _) = session.handle_reply(reply).expect("loris op is valid");
        write_frame(
            &mut sock,
            &UstorMsg::Commit(commit.expect("immediate mode")),
        )
        .expect("commit");
        honest_was_already_done
    });

    // The honest client: connects and completes a full op while the
    // loris dribbles and the half-open socket squats.
    let mut sessions = vec![honest_session];
    let mut socks = vec![connect_hello(addr, c(0))];
    let submit = sessions[0]
        .begin_write(Value::from("honest-and-fast"))
        .expect("idle");
    full_op(&mut sessions, &mut socks, 0, submit);
    honest_done.store(true, Ordering::SeqCst);

    // The half-open connection is reaped by the HELLO timer: EOF.
    let mut buf = [0u8; 1];
    assert_eq!(
        half_open
            .read(&mut buf)
            .expect("reaped with EOF, not a hang"),
        0
    );

    assert!(
        loris.join().expect("loris thread"),
        "honest client completed while the loris was still dribbling"
    );
    drop(socks);
    let (engine, reactor, recent, _buffered) = server.join().expect("server thread");
    assert_eq!(engine.submits, 2, "honest + loris both served");
    assert_eq!(reactor.hello_timeouts, 1, "half-open reaped exactly once");
    assert!(
        recent
            .iter()
            .any(|(id, r)| id.is_none() && *r == DisconnectReason::HelloTimeout),
        "reap reason is typed: {recent:?}"
    );
}

/// A client that stops reading mid-burst (pipelined reads of a large
/// register, replies never consumed) trips the slow-consumer egress cap
/// and is disconnected with a typed reason instead of ballooning server
/// memory; the honest client keeps completing operations afterwards.
#[test]
fn slow_consumer_is_excised_with_typed_reason_and_bounded_memory() {
    let n = 2;
    let egress_cap = 2usize << 20;
    let cfg = ReactorConfig {
        max_egress_bytes: egress_cap,
        ..ReactorConfig::default()
    };
    let (addr, server) = spawn_reactor_server(n, cfg);

    let keys = KeySet::generate(n, b"reactor-slow-consumer");
    let mut sessions = sessions(&keys, n);
    // This deployment permits pipelining up to 64 deep, and the honest
    // client knows it: its fail-aware fold tolerates up to that many
    // commit-less pending operations per peer (the hostile burst below
    // uses exactly the permitted depth — valid wire traffic, just a peer
    // that never collects its replies).
    sessions[0].set_pipeline(64);
    let mut socks = vec![connect_hello(addr, c(0))];

    // Honest client 0 writes a 512 KiB value.
    let big = Value::new(vec![0xAB; 512 << 10]);
    let submit = sessions[0].begin_write(big).expect("idle");
    full_op(&mut sessions, &mut socks, 0, submit);

    // Hostile client 1: HELLO, then 64 pre-signed pipelined READs of
    // register 0 — and never reads a byte of the ~32 MiB of replies.
    // (Pipelining needs hand-built submits: the sequential client keeps
    // one op in flight by design. Signatures depend only on the
    // client's own counter, so pre-signing t = 1..=64 is valid wire
    // traffic; x̄ stays None — this client never wrote.)
    let mut hostile = connect_hello(addr, c(1));
    let keypair = keys.keypair(1).expect("client key");
    for t in 1..=64u64 {
        let submit = SubmitMsg {
            timestamp: t,
            tuple: InvocationTuple {
                client: c(1),
                kind: OpKind::Read,
                register: c(0),
                sig: keypair.sign(
                    SigContext::Submit,
                    &submit_signing_bytes(OpKind::Read, c(0), t),
                ),
            },
            value: None,
            data_sig: keypair.sign(SigContext::Data, &data_signing_bytes(t, None)),
            piggyback: None,
        };
        write_frame(&mut hostile, &UstorMsg::Submit(submit)).expect("hostile submit");
    }

    // The server excises the hostile connection once its unread egress
    // exceeds the cap. Observable from the outside: the hostile socket
    // reaches EOF after at most the buffered bytes (drain them — reading
    // NOW is fine, the excision already happened server-side).
    hostile
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut sink = [0u8; 64 << 10];
    loop {
        match hostile.read(&mut sink) {
            Ok(0) => break,    // FIN: excised
            Ok(_) => continue, // draining what was in flight
            Err(_) => break,   // RST: also excised
        }
    }

    // The honest client is unaffected: another full op completes.
    let submit = sessions[0]
        .begin_write(Value::from("still-served"))
        .expect("idle");
    full_op(&mut sessions, &mut socks, 0, submit);

    drop(socks);
    let (_engine, reactor, recent, _buffered) = server.join().expect("server thread");
    assert_eq!(reactor.slow_consumers, 1);
    assert!(
        recent
            .iter()
            .any(|(id, r)| *id == Some(c(1)) && *r == DisconnectReason::SlowConsumer),
        "excision reason is typed and attributed: {recent:?}"
    );
    // The egress cap bounded the buffered peak: well below the ~32 MiB
    // a ballooning server would have held (cap + one in-flight frame +
    // ingress slack).
    assert!(
        reactor.peak_buffered_bytes < egress_cap + (1 << 20),
        "peak buffered {} B",
        reactor.peak_buffered_bytes
    );
}
