//! Versions `(V, M)` and the partial order `≼` of Definition 7.
//!
//! A *version* pairs a timestamp vector `V` (entry `V[k]` = timestamp of the
//! last operation by client `C_k` reflected in the owner's view history)
//! with a digest vector `M` (entry `M[k]` = running digest of the view
//! history up to that operation of `C_k`, or `⊥` if none). Versions are what
//! clients sign in COMMIT messages and exchange offline in FAUST.
//!
//! Definition 7 (order on versions): `(V_i, M_i) ≼ (V_j, M_j)` iff
//!
//! 1. `V_i ≤ V_j` component-wise, and
//! 2. for every `k` with `V_i[k] = V_j[k]`, `M_i[k] = M_j[k]`.
//!
//! The paper shows `≼` is transitive on versions committed by the protocol
//! and that `(V_i, M_i) ≼ (V_j, M_j)` iff the corresponding view history is
//! a prefix. Two versions where neither `≼` holds are *incomparable* —
//! proof that the server forked the clients' views.

use crate::ids::{ClientId, Timestamp};
use faust_crypto::sig::Signature;
use faust_crypto::Digest;
use std::fmt;

/// A vector of `n` operation timestamps, one per client.
///
/// # Example
///
/// ```
/// use faust_types::{ClientId, TimestampVec};
/// let mut v = TimestampVec::zeros(3);
/// v.increment(ClientId::new(1));
/// assert_eq!(v.get(ClientId::new(1)), 1);
/// assert_eq!(v.get(ClientId::new(0)), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TimestampVec(Vec<Timestamp>);

impl TimestampVec {
    /// The all-zero vector `0^n` (the initial version's timestamps).
    pub fn zeros(n: usize) -> Self {
        TimestampVec(vec![0; n])
    }

    /// Builds a vector from raw entries.
    pub fn from_vec(entries: Vec<Timestamp>) -> Self {
        TimestampVec(entries)
    }

    /// Number of clients `n`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has zero entries (degenerate, `n = 0`).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The timestamp for client `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn get(&self, k: ClientId) -> Timestamp {
        self.0[k.index()]
    }

    /// Sets the timestamp for client `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn set(&mut self, k: ClientId, t: Timestamp) {
        self.0[k.index()] = t;
    }

    /// Increments entry `k` by one and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn increment(&mut self, k: ClientId) -> Timestamp {
        self.0[k.index()] += 1;
        self.0[k.index()]
    }

    /// Component-wise `≤`.
    pub fn le(&self, other: &TimestampVec) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Strictly greater: `other ≤ self` and `self ≠ other`. This is the
    /// `V_i > V^c` test the server applies on COMMIT (Algorithm 2 line 119).
    pub fn gt(&self, other: &TimestampVec) -> bool {
        other.le(self) && self != other
    }

    /// Iterates over `(client, timestamp)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClientId, Timestamp)> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &t)| (ClientId::new(i as u32), t))
    }

    /// The raw entries.
    pub fn as_slice(&self) -> &[Timestamp] {
        &self.0
    }
}

impl fmt::Debug for TimestampVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{:?}", self.0)
    }
}

impl fmt::Display for TimestampVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// A vector of `n` optional digests; entry `k` is the digest of the view
/// history up to the last operation of client `C_k`, or `⊥` (`None`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DigestVec(Vec<Option<Digest>>);

impl DigestVec {
    /// The all-`⊥` vector `⊥^n` (the initial version's digests).
    pub fn bottoms(n: usize) -> Self {
        DigestVec(vec![None; n])
    }

    /// Builds a vector from raw entries.
    pub fn from_vec(entries: Vec<Option<Digest>>) -> Self {
        DigestVec(entries)
    }

    /// Number of clients `n`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has zero entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The digest entry for client `k` (`None` = `⊥`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn get(&self, k: ClientId) -> Option<Digest> {
        self.0[k.index()]
    }

    /// Sets the digest entry for client `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn set(&mut self, k: ClientId, d: Digest) {
        self.0[k.index()] = Some(d);
    }

    /// The raw entries.
    pub fn as_slice(&self) -> &[Option<Digest>] {
        &self.0
    }
}

impl fmt::Debug for DigestVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match d {
                None => write!(f, "⊥")?,
                Some(d) => write!(f, "{}", &d.to_hex()[..6])?,
            }
        }
        write!(f, "]")
    }
}

/// Result of comparing two versions under `≼`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionCmp {
    /// The versions are equal.
    Equal,
    /// Left `≺` right (strictly smaller).
    Less,
    /// Right `≺` left (strictly greater).
    Greater,
    /// Neither `≼` the other — evidence of a forking attack.
    Incomparable,
}

/// A version `(V, M)`: the pair of timestamp vector and digest vector that
/// a client commits after every operation.
///
/// # Example
///
/// ```
/// use faust_types::{ClientId, Version};
/// let initial = Version::initial(3);
/// let mut later = initial.clone();
/// later.v_mut().increment(ClientId::new(0));
/// assert!(initial.le(&later));
/// assert!(!later.le(&initial));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Version {
    v: TimestampVec,
    m: DigestVec,
}

impl Version {
    /// The initial version `(0^n, ⊥^n)`.
    pub fn initial(n: usize) -> Self {
        Version {
            v: TimestampVec::zeros(n),
            m: DigestVec::bottoms(n),
        }
    }

    /// Builds a version from its parts.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn new(v: TimestampVec, m: DigestVec) -> Self {
        assert_eq!(v.len(), m.len(), "V and M must have the same arity");
        Version { v, m }
    }

    /// Whether this is the initial version `(0^n, ⊥^n)`.
    pub fn is_initial(&self) -> bool {
        self.v.as_slice().iter().all(|&t| t == 0) && self.m.as_slice().iter().all(|d| d.is_none())
    }

    /// Number of clients `n`.
    pub fn num_clients(&self) -> usize {
        self.v.len()
    }

    /// The timestamp vector `V`.
    pub fn v(&self) -> &TimestampVec {
        &self.v
    }

    /// The digest vector `M`.
    pub fn m(&self) -> &DigestVec {
        &self.m
    }

    /// Mutable access to `V` (protocol-internal updates).
    pub fn v_mut(&mut self) -> &mut TimestampVec {
        &mut self.v
    }

    /// Mutable access to `M` (protocol-internal updates).
    pub fn m_mut(&mut self) -> &mut DigestVec {
        &mut self.m
    }

    /// Definition 7: `self ≼ other`.
    pub fn le(&self, other: &Version) -> bool {
        if !self.v.le(&other.v) {
            return false;
        }
        for k in 0..self.v.len() {
            let k = ClientId::new(k as u32);
            if self.v.get(k) == other.v.get(k) && self.m.get(k) != other.m.get(k) {
                return false;
            }
        }
        true
    }

    /// `self ≺ other`: `self ≼ other` and `self ≠ other`.
    pub fn lt(&self, other: &Version) -> bool {
        self != other && self.le(other)
    }

    /// Full comparison under `≼`.
    pub fn compare(&self, other: &Version) -> VersionCmp {
        match (self.le(other), other.le(self)) {
            (true, true) => VersionCmp::Equal,
            (true, false) => VersionCmp::Less,
            (false, true) => VersionCmp::Greater,
            (false, false) => VersionCmp::Incomparable,
        }
    }

    /// Whether the versions are comparable (either `≼` holds). FAUST treats
    /// incomparable versions as proof of server misbehaviour.
    pub fn comparable(&self, other: &Version) -> bool {
        !matches!(self.compare(other), VersionCmp::Incomparable)
    }

    /// Canonical byte string signed by COMMIT-signatures (`COMMIT ‖ V_i ‖
    /// M_i` in the paper).
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.v.len() * 41);
        out.extend_from_slice(b"version:");
        out.extend_from_slice(&(self.v.len() as u32).to_be_bytes());
        for &t in self.v.as_slice() {
            out.extend_from_slice(&t.to_be_bytes());
        }
        for d in self.m.as_slice() {
            match d {
                None => out.push(0),
                Some(d) => {
                    out.push(1);
                    out.extend_from_slice(d.as_bytes());
                }
            }
        }
        out
    }
}

impl fmt::Debug for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.v, self.m)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.v)
    }
}

/// A version together with the COMMIT-signature of the client that
/// committed it.
///
/// The initial version `(0^n, ⊥^n)` is the only version that legitimately
/// carries no signature (Algorithm 1 line 35 exempts it from
/// verification).
#[derive(Clone, PartialEq, Eq)]
pub struct SignedVersion {
    /// The version `(V, M)`.
    pub version: Version,
    /// COMMIT-signature by the committing client, absent only for the
    /// initial version.
    pub sig: Option<Signature>,
}

impl SignedVersion {
    /// The unsigned initial version for `n` clients.
    pub fn initial(n: usize) -> Self {
        SignedVersion {
            version: Version::initial(n),
            sig: None,
        }
    }
}

impl fmt::Debug for SignedVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SignedVersion({:?}, {})",
            self.version,
            if self.sig.is_some() {
                "signed"
            } else {
                "unsigned"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::sha256;

    fn d(label: u8) -> Digest {
        sha256(&[label])
    }

    fn version(v: Vec<Timestamp>, m: Vec<Option<Digest>>) -> Version {
        Version::new(TimestampVec::from_vec(v), DigestVec::from_vec(m))
    }

    #[test]
    fn initial_is_minimal() {
        let init = Version::initial(3);
        let other = version(vec![1, 0, 2], vec![Some(d(1)), None, Some(d(2))]);
        assert!(init.le(&other));
        assert!(init.is_initial());
        assert!(!other.is_initial());
    }

    #[test]
    fn equal_versions_compare_equal() {
        let a = version(vec![1, 2], vec![Some(d(1)), Some(d(2))]);
        assert_eq!(a.compare(&a.clone()), VersionCmp::Equal);
    }

    #[test]
    fn pointwise_le_with_matching_digests_is_less() {
        let a = version(vec![1, 1], vec![Some(d(1)), Some(d(2))]);
        let b = version(vec![1, 2], vec![Some(d(1)), Some(d(3))]);
        // V equal at k=0 with equal digests; strictly larger at k=1 so the
        // differing digest there is allowed.
        assert_eq!(a.compare(&b), VersionCmp::Less);
        assert_eq!(b.compare(&a), VersionCmp::Greater);
    }

    #[test]
    fn equal_timestamp_entry_with_differing_digest_is_incomparable() {
        // Same V but different digest at an equal entry: the clients saw
        // different operation sequences of the same length — a fork.
        let a = version(vec![1, 1], vec![Some(d(1)), Some(d(2))]);
        let b = version(vec![1, 1], vec![Some(d(1)), Some(d(9))]);
        assert_eq!(a.compare(&b), VersionCmp::Incomparable);
        assert!(!a.comparable(&b));
    }

    #[test]
    fn crossing_timestamps_are_incomparable() {
        let a = version(vec![2, 0], vec![Some(d(1)), None]);
        let b = version(vec![0, 2], vec![None, Some(d(2))]);
        assert_eq!(a.compare(&b), VersionCmp::Incomparable);
    }

    #[test]
    fn le_is_antisymmetric() {
        let a = version(vec![1, 0], vec![Some(d(1)), None]);
        let b = version(vec![1, 1], vec![Some(d(1)), Some(d(2))]);
        assert!(a.le(&b) && !b.le(&a));
        assert!(a.lt(&b));
        assert!(!a.lt(&a.clone()));
    }

    #[test]
    fn signing_bytes_distinguish_versions() {
        let a = version(vec![1, 0], vec![Some(d(1)), None]);
        let b = version(vec![1, 0], vec![Some(d(2)), None]);
        let c = version(vec![0, 1], vec![Some(d(1)), None]);
        assert_ne!(a.signing_bytes(), b.signing_bytes());
        assert_ne!(a.signing_bytes(), c.signing_bytes());
    }

    #[test]
    fn timestamp_vec_gt() {
        let a = TimestampVec::from_vec(vec![1, 2]);
        let b = TimestampVec::from_vec(vec![1, 1]);
        assert!(a.gt(&b));
        assert!(!b.gt(&a));
        assert!(!a.gt(&a.clone()));
        // Incomparable timestamp vectors: neither gt.
        let c = TimestampVec::from_vec(vec![2, 0]);
        assert!(!a.gt(&c));
        assert!(!c.gt(&a));
    }

    #[test]
    fn mismatched_arity_never_le() {
        let a = Version::initial(2);
        let b = Version::initial(3);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
    }

    #[test]
    fn display_formats() {
        let a = version(vec![10, 8, 3], vec![None, None, None]);
        assert_eq!(a.to_string(), "[10,8,3]");
    }
}
