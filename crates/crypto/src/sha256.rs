//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Provides both a one-shot convenience function ([`sha256`]) and an
//! incremental hasher ([`Sha256`]) for streaming input. The implementation
//! is verified against the NIST test vectors in this module's tests.

use std::fmt;

/// Number of bytes in a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// A 256-bit SHA-256 digest.
///
/// The protocol uses digests both as hashed register values (`x̄_i`) and as
/// links in view-history digest chains. `Digest` is `Copy`, ordered, and
/// hashable so it can key maps and appear inside protocol messages.
///
/// # Example
///
/// ```
/// use faust_crypto::sha256::sha256;
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest([u8; DIGEST_LEN]);

impl Digest {
    /// Creates a digest from raw bytes.
    pub const fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Consumes the digest, returning the underlying byte array.
    pub fn into_bytes(self) -> [u8; DIGEST_LEN] {
        self.0
    }

    /// Renders the digest as a lowercase hexadecimal string.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in &self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
        }
        s
    }

    /// Parses a digest from a 64-character hexadecimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDigestError`] if the input is not exactly 64 hex
    /// characters.
    pub fn from_hex(s: &str) -> Result<Self, ParseDigestError> {
        let bytes = s.as_bytes();
        if bytes.len() != DIGEST_LEN * 2 {
            return Err(ParseDigestError);
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16).ok_or(ParseDigestError)?;
            let lo = (chunk[1] as char).to_digit(16).ok_or(ParseDigestError)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Ok(Digest(out))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

/// Error returned when parsing a [`Digest`] from an invalid hex string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDigestError;

impl fmt::Display for ParseDigestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid digest hex string")
    }
}

impl std::error::Error for ParseDigestError {}

/// SHA-256 round constants: first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use faust_crypto::sha256::{sha256, Sha256};
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), sha256(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Buffered partial block.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            } else {
                // Input exhausted without filling a block; nothing more to do.
                return;
            }
        }
        let mut chunks = input.chunks_exact(64);
        for block in &mut chunks {
            let block: &[u8; 64] = block.try_into().expect("chunk is 64 bytes");
            compress(&mut self.state, block);
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Completes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append the 0x80 terminator, zero padding, and the 64-bit length.
        self.update(&[0x80]);
        // `update` adjusted total_len; the padding below must not count, so
        // operate on the buffer directly.
        if self.buf_len > 56 {
            for b in &mut self.buf[self.buf_len..] {
                *b = 0;
            }
            let block = self.buf;
            compress(&mut self.state, &block);
            self.buf_len = 0;
        }
        for b in &mut self.buf[self.buf_len..56] {
            *b = 0;
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress(&mut self.state, &block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }
}

/// The SHA-256 compression function over one 512-bit block.
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("chunk is 4 bytes"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Hashes `data` in one shot.
///
/// # Example
///
/// ```
/// use faust_crypto::sha256::sha256;
/// assert_eq!(
///     sha256(b"").to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST FIPS 180-4 / classic test vectors.
    #[test]
    fn nist_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_four_block() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            sha256(msg).to_hex(),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn nist_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&msg).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths around the padding boundaries (55, 56, 63, 64, 65) hit all
        // the finalize() paths.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 127, 128, 129] {
            let msg = vec![0xAB; len];
            let one_shot = sha256(&msg);
            let mut inc = Sha256::new();
            for b in &msg {
                inc.update(std::slice::from_ref(b));
            }
            assert_eq!(one_shot, inc.finalize(), "mismatch at length {len}");
        }
    }

    #[test]
    fn incremental_split_points() {
        let msg: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let expect = sha256(&msg);
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), expect, "mismatch at split {split}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Ok(d));
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert_eq!(Digest::from_hex("zz"), Err(ParseDigestError));
        assert_eq!(Digest::from_hex(&"g".repeat(64)), Err(ParseDigestError));
        assert_eq!(Digest::from_hex(""), Err(ParseDigestError));
    }

    #[test]
    fn digest_debug_is_nonempty() {
        let d = sha256(b"x");
        assert!(!format!("{d:?}").is_empty());
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Smoke test for collision resistance on small inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            assert!(seen.insert(sha256(&i.to_be_bytes())), "collision at {i}");
        }
    }
}

#[cfg(test)]
mod cavp_vectors {
    //! Additional NIST CAVP SHA-256 short-message vectors
    //! (SHA256ShortMsg.rsp), exercising a spread of non-block-aligned
    //! lengths.
    use super::*;

    fn check(msg_hex: &str, digest_hex: &str) {
        let msg: Vec<u8> = (0..msg_hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&msg_hex[i..i + 2], 16).expect("valid hex"))
            .collect();
        assert_eq!(sha256(&msg).to_hex(), digest_hex);
    }

    #[test]
    fn cavp_1_byte() {
        check(
            "d3",
            "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1",
        );
    }

    #[test]
    fn cavp_2_bytes() {
        check(
            "11af",
            "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f072d1f98",
        );
    }

    #[test]
    fn cavp_4_bytes() {
        check(
            "74ba2521",
            "b16aa56be3880d18cd41e68384cf1ec8c17680c45a02b1575dc1518923ae8b0e",
        );
    }

    #[test]
    fn cavp_8_bytes() {
        check(
            "5738c929c4f4ccb6",
            "963bb88f27f512777aab6c8b1a02c70ec0ad651d428f870036e1917120fb48bf",
        );
    }

    #[test]
    fn cavp_16_bytes() {
        check(
            "0a27847cdc98bd6f62220b046edd762b",
            "80c25ec1600587e7f28b18b1b18e3cdc89928e39cab3bc25e4d4a4c139bcedc4",
        );
    }

    #[test]
    fn cavp_32_bytes() {
        check(
            "09fc1accc230a205e4a208e64a8f204291f581a12756392da4b8c0cf5ef02b95",
            "4f44c1c7fbebb6f9601829f3897bfd650c56fa07844be76489076356ac1886a4",
        );
    }

    #[test]
    fn cavp_55_bytes() {
        // One byte short of the padding boundary.
        check(
            "3592ecfd1eac618fd390e7a9c24b656532509367c21a0eac1212ac83c0b20cd896eb72b801c4d212c5452bbbf09317b50c5c9fb1997553d2bbc29bb42f5748ad",
            "105a60865830ac3a371d3843324d4bb5fa8ec0e02ddaa389ad8da4f10215c454",
        );
    }
}
