//! Shared helpers for tests and benchmarks: scratch directories (the
//! repository vendors no `tempfile` crate) and the synchronous
//! op-driving shorthand every store test needs.

use faust_crypto::sig::KeySet;
use faust_types::{ClientId, SubmitMsg};
use faust_ustor::{Server, UstorClient};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Creates a fresh, empty directory under the system temp dir, unique to
/// this process and call. Callers remove it when done (`remove_dir_all`);
/// a leaked directory under `$TMPDIR` is harmless.
///
/// # Panics
///
/// Panics if the directory cannot be created — tests cannot run without
/// a writable temp dir, so failing loudly beats limping on.
pub fn scratch_dir(label: &str) -> PathBuf {
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("faust-store-{label}-{}-{id}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Builds `n` USTOR clients with HMAC keys derived from `seed` — the
/// setup boilerplate of every test/bench that drives a server directly.
pub fn clients(n: usize, seed: &[u8]) -> Vec<UstorClient> {
    let keys = KeySet::generate(n, seed);
    (0..n)
        .map(|i| {
            UstorClient::new(
                ClientId::new(i as u32),
                n,
                keys.keypair(i as u32).expect("generated").clone(),
                keys.registry(),
            )
        })
        .collect()
}

/// Runs one full synchronous operation (submit → reply → commit)
/// through any server.
///
/// Flush-aware: under `Durability::Group` the server withholds the
/// reply until its batch fsync, so when `on_submit` returns nothing a
/// forced [`Server::flush`] is the batch boundary — a synchronous
/// driver *is* the whole batch. (Before this, every `run_op`-style
/// helper panicked on group-commit servers.)
///
/// # Panics
///
/// Panics if the server misbehaves — these helpers drive *correct*
/// servers; adversarial paths assert on errors explicitly.
pub fn run_op(server: &mut dyn Server, client: &mut UstorClient, submit: SubmitMsg) {
    let id = client.id();
    let mut replies = server.on_submit(id, submit);
    if replies.is_empty() {
        replies = server.flush(true);
    }
    let (_, reply) = replies
        .into_iter()
        .find(|(to, _)| *to == id)
        .expect("one reply for the submitter");
    let (commit, _) = client.handle_reply(reply).expect("correct server");
    server.on_commit(id, commit.expect("immediate mode"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_types::Value;

    #[test]
    fn run_op_is_flush_aware_under_group_commit() {
        // Regression (PR-4 footgun): a synchronous `run_op` against a
        // group-commit server used to panic — `on_submit` withholds the
        // reply until the batch fsync. The helper now forces the flush
        // and completes the op; the records are durable afterwards.
        use crate::{Durability, PersistentServer, StoreConfig};
        let dir = scratch_dir("run-op-group");
        let config = StoreConfig {
            durability: Durability::Group {
                max_records: 1_000,
                max_wait: std::time::Duration::from_secs(3600),
            },
            snapshot_every: 0,
        };
        let mut server = PersistentServer::open(&dir, 1, config.clone()).unwrap();
        let mut cs = clients(1, b"run-op-group");
        for round in 0..3u64 {
            let submit = cs[0].begin_write(Value::unique(0, round)).unwrap();
            run_op(&mut server, &mut cs[0], submit);
        }
        // 3 submits + 3 commits acknowledged; the commits' appends ride
        // the next forced flush or recovery scan, the submits are all
        // fsync-released.
        assert_eq!(server.next_seq(), 6);
        drop(server);
        let recovered = PersistentServer::recover(&dir, 1, config).unwrap();
        assert_eq!(recovered.next_seq(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scratch_dirs_are_distinct_and_empty() {
        let a = scratch_dir("x");
        let b = scratch_dir("x");
        assert_ne!(a, b);
        assert_eq!(std::fs::read_dir(&a).unwrap().count(), 0);
        std::fs::remove_dir_all(&a).ok();
        std::fs::remove_dir_all(&b).ok();
    }
}
