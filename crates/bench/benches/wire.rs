//! E6 companion: wire codec throughput for the protocol messages whose
//! sizes the `experiments` binary reports.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use faust_bench::steady_state;
use faust_types::{ClientId, ReplyMsg, Value, Wire};
use faust_ustor::Server;

/// Builds a representative steady-state read REPLY for `n` clients.
fn sample_reply(n: usize) -> ReplyMsg {
    let (mut server, mut clients) = steady_state(n, 64);
    let submit = clients[1].begin_read(ClientId::new(0)).expect("idle");
    server
        .on_submit(ClientId::new(1), submit)
        .pop()
        .expect("reply")
        .1
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("reply_encode");
    for n in [4usize, 16, 64] {
        let reply = sample_reply(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &reply, |b, reply| {
            b.iter(|| black_box(reply).encode())
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("reply_decode");
    for n in [4usize, 16, 64] {
        let bytes = sample_reply(n).encode();
        group.bench_with_input(BenchmarkId::from_parameter(n), &bytes, |b, bytes| {
            b.iter(|| ReplyMsg::decode(black_box(bytes)).expect("valid"))
        });
    }
    group.finish();
}

fn bench_submit_roundtrip(c: &mut Criterion) {
    let (_, mut clients) = steady_state(4, 64);
    let submit = clients[0]
        .begin_write(Value::new(vec![0xA5; 64]))
        .expect("idle");
    let bytes = submit.encode();
    c.bench_function("submit_encode", |b| b.iter(|| black_box(&submit).encode()));
    c.bench_function("submit_decode", |b| {
        b.iter(|| faust_types::SubmitMsg::decode(black_box(&bytes)).expect("valid"))
    });
}

criterion_group!(benches, bench_encode, bench_decode, bench_submit_roundtrip);
criterion_main!(benches);
