//! CI bench-regression gate: diffs a fresh `bench_smoke` JSON report
//! against a checked-in baseline and fails (exit 1) when any data point
//! shared by both files lost more than the allowed fraction of its
//! `per_second` throughput.
//!
//! Only the *intersection* of point names is compared, so a baseline
//! from an older schema (fewer points) still gates the points it knows
//! about, and brand-new points ride along ungated until the baseline is
//! refreshed. An **empty** intersection, however, is never a pass: it
//! means the gate compared nothing at all (renamed points, wrong file,
//! truncated report), and the only honest verdict is a loud failure.
//! The parser is hand-rolled for exactly the JSON `bench_smoke` emits —
//! fixed ASCII names, flat `results` array — in keeping with the repo's
//! no-external-dependencies rule.
//!
//! Usage: `bench_compare <current.json> <baseline.json> [--max-regression PCT]`

use std::process::ExitCode;

/// Extracts `(name, per_second)` for every entry of the `results` array.
///
/// Works on the shape `bench_smoke` writes: each result object holds a
/// `"name"` string (fixed ASCII, no escapes) followed by a
/// `"per_second"` number.
fn parse_points(json: &str) -> Vec<(String, f64)> {
    let mut points = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"name\": \"") {
        rest = &rest[at + "\"name\": \"".len()..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        rest = &rest[end..];
        let Some(at) = rest.find("\"per_second\": ") else {
            break;
        };
        rest = &rest[at + "\"per_second\": ".len()..];
        let end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        match rest[..end].parse::<f64>() {
            Ok(v) => points.push((name, v)),
            Err(_) => break,
        }
        rest = &rest[end..];
    }
    points
}

/// The gate's verdict over one current-vs-baseline comparison.
#[derive(Debug, PartialEq, Eq)]
enum Verdict {
    /// Every shared point stayed within the regression budget.
    Pass { shared: usize },
    /// `regressed` of `shared` points fell below the budget.
    Regressed { regressed: usize, shared: usize },
    /// No point name appears in both files — nothing was actually
    /// gated, which must fail loudly rather than pass vacuously.
    DisjointSets,
}

/// The pure comparison: diffs `current` against `baseline` under a
/// `max_regression` percentage budget. Returns the per-point report
/// lines alongside the verdict, so the binary's I/O stays at the edge.
fn compare_points(
    current: &[(String, f64)],
    baseline: &[(String, f64)],
    max_regression: f64,
) -> (Vec<String>, Verdict) {
    let mut lines = Vec::new();
    let mut shared = 0usize;
    let mut regressed = 0usize;
    for (name, base) in baseline {
        let Some((_, now)) = current.iter().find(|(n, _)| n == name) else {
            lines.push(format!("  (gone)    {name}"));
            continue;
        };
        shared += 1;
        let delta = (now / base - 1.0) * 100.0;
        let verdict = if delta < -max_regression {
            regressed += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        lines.push(format!(
            "  {verdict:<9} {name:<46} {base:>14.0} -> {now:>14.0} iter/s ({delta:+.1}%)"
        ));
    }
    for (name, _) in current {
        if !baseline.iter().any(|(n, _)| n == name) {
            lines.push(format!("  (new)     {name}"));
        }
    }
    let verdict = match (shared, regressed) {
        (0, _) => Verdict::DisjointSets,
        (shared, 0) => Verdict::Pass { shared },
        (shared, regressed) => Verdict::Regressed { regressed, shared },
    };
    (lines, verdict)
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| format!("bench_compare: cannot read {path}: {e}"))?;
    let points = parse_points(&json);
    if points.is_empty() {
        return Err(format!("bench_compare: no points in {path}"));
    }
    Ok(points)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut paths: Vec<String> = Vec::new();
    let mut max_regression = 30.0f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regression" => {
                max_regression = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-regression needs a percentage");
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_compare <current.json> <baseline.json> [--max-regression PCT]"
                );
                return ExitCode::from(2);
            }
        }
    }
    let [current_path, baseline_path] = &paths[..] else {
        eprintln!("usage: bench_compare <current.json> <baseline.json> [--max-regression PCT]");
        return ExitCode::from(2);
    };

    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (current, baseline) => {
            for err in [current.err(), baseline.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::from(2);
        }
    };
    println!("bench_compare: {current_path} vs {baseline_path} (fail below -{max_regression:.0}%)");
    let (lines, verdict) = compare_points(&current, &baseline, max_regression);
    for line in &lines {
        println!("{line}");
    }
    match verdict {
        Verdict::Pass { shared } => {
            println!("bench_compare: all {shared} shared point(s) within the budget");
            ExitCode::SUCCESS
        }
        Verdict::Regressed { regressed, shared } => {
            eprintln!(
                "bench_compare: {regressed}/{shared} point(s) regressed more than \
                 {max_regression:.0}%"
            );
            ExitCode::FAILURE
        }
        Verdict::DisjointSets => {
            eprintln!(
                "bench_compare: {current_path} and {baseline_path} share no point names — \
                 nothing was compared; refusing to pass vacuously \
                 (refresh the baseline or fix the report)"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{compare_points, parse_points, Verdict};

    fn points(entries: &[(&str, f64)]) -> Vec<(String, f64)> {
        entries.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn parses_the_bench_smoke_shape() {
        let json = r#"{
  "schema": 4,
  "results": [
    {"name": "wire: encode REPLY (n=8, read)", "ns_per_iter": 245.8, "per_second": 4067552.9},
    {"name": "e2e: tcp write op, sharded(4) (4x16)", "ns_per_iter": 72121.5, "per_second": 13865.0}
  ],
  "egress": {"frames_out": 32, "flushes": 4, "max_egress_batch": 8}
}"#;
        let points = parse_points(json);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].0, "wire: encode REPLY (n=8, read)");
        assert!((points[0].1 - 4067552.9).abs() < 1e-6);
        assert_eq!(points[1].0, "e2e: tcp write op, sharded(4) (4x16)");
        assert!((points[1].1 - 13865.0).abs() < 1e-6);
    }

    #[test]
    fn empty_or_garbage_yields_no_points() {
        assert!(parse_points("{}").is_empty());
        assert!(parse_points("\"name\": \"x\" no number").is_empty());
    }

    #[test]
    fn within_budget_passes_over_the_intersection_only() {
        let baseline = points(&[("a", 100.0), ("renamed-away", 50.0)]);
        let current = points(&[("a", 80.0), ("brand-new", 9000.0)]);
        let (lines, verdict) = compare_points(&current, &baseline, 30.0);
        assert_eq!(verdict, Verdict::Pass { shared: 1 });
        assert!(lines.iter().any(|l| l.contains("(gone)")));
        assert!(lines.iter().any(|l| l.contains("(new)")));
    }

    #[test]
    fn a_deep_enough_drop_regresses() {
        let baseline = points(&[("a", 100.0), ("b", 100.0)]);
        let current = points(&[("a", 65.0), ("b", 75.0)]);
        let (lines, verdict) = compare_points(&current, &baseline, 30.0);
        assert_eq!(
            verdict,
            Verdict::Regressed {
                regressed: 1,
                shared: 2
            }
        );
        assert!(lines.iter().any(|l| l.contains("REGRESSED")));
    }

    #[test]
    fn an_empty_intersection_is_a_failure_not_a_vacuous_pass() {
        let baseline = points(&[("old-name", 100.0)]);
        let current = points(&[("new-name", 100.0)]);
        let (_, verdict) = compare_points(&current, &baseline, 30.0);
        assert_eq!(verdict, Verdict::DisjointSets);
        // Degenerate edges: one side empty entirely.
        let (_, verdict) = compare_points(&[], &baseline, 30.0);
        assert_eq!(verdict, Verdict::DisjointSets);
        let (_, verdict) = compare_points(&current, &[], 30.0);
        assert_eq!(verdict, Verdict::DisjointSets);
    }
}
