//! Ed25519 signatures (RFC 8032), implemented from scratch.
//!
//! This is the *public-key* signature scheme of the FAUST reproduction:
//! unlike the HMAC scheme in [`crate::sig`], verification keys carry no
//! forging power, so the untrusted server can be handed every
//! [`VerifyingKey`] and still cannot fabricate a single client message —
//! exactly the trust model the paper assumes (see `docs/trust-model.md`
//! at the repository root).
//!
//! Everything is built on the in-tree primitives: [`mod@crate::sha512`] for
//! key expansion, nonces, and challenges; the private `field` and
//! `point` submodules for curve25519 arithmetic; `scalar` for arithmetic
//! modulo the group order L. There are no external crates and no transcribed magic-number
//! tables — curve constants are derived from their defining equations and
//! pinned by the RFC 8032 test vectors below.
//!
//! # Batch verification
//!
//! [`verify_batch`] checks m signatures with one multi-scalar
//! multiplication over 2m + 1 points instead of m double-scalar
//! multiplications, sharing the ~252 point doublings across the whole
//! batch (the classical random-linear-combination batch equation, with
//! deterministic Fiat–Shamir-style coefficients derived by hashing the
//! batch). It answers only "is every signature valid?"; callers that
//! must identify culprits re-verify individually on failure, which is
//! what the `verify_batch` of [`crate::sig::VerifierRegistry`] does.
//!
//! # Example
//!
//! ```
//! use faust_crypto::ed25519::SigningKey;
//!
//! let sk = SigningKey::from_seed(&[7u8; 32]);
//! let sig = sk.sign(b"attack at dawn");
//! assert!(sk.verifying_key().verify(b"attack at dawn", &sig));
//! assert!(!sk.verifying_key().verify(b"attack at dusk", &sig));
//! ```

pub(crate) mod field;
pub(crate) mod point;
pub(crate) mod scalar;

use crate::sha512::Sha512;
use point::Point;
use scalar::Scalar;
use std::fmt;

/// Byte length of an Ed25519 signature (R ‖ s).
pub const SIGNATURE_LEN: usize = 64;

/// Byte length of a compressed public key.
pub const PUBLIC_KEY_LEN: usize = 32;

/// Byte length of a private seed.
pub const SEED_LEN: usize = 32;

/// An Ed25519 signing key: the 32-byte seed plus its expansion.
///
/// Holding a `SigningKey` is the capability to sign; the corresponding
/// [`VerifyingKey`] can be shared with anyone — including the untrusted
/// server — without granting any forging power.
#[derive(Clone)]
pub struct SigningKey {
    /// Clamped secret scalar `a` (reduced mod L — harmless, since B has
    /// order L).
    a: Scalar,
    /// The nonce prefix (second half of SHA-512(seed)).
    prefix: [u8; 32],
    public: VerifyingKey,
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SigningKey")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

/// An Ed25519 public key: the compressed point A = a·B plus its cached
/// decompression.
#[derive(Clone, Copy)]
pub struct VerifyingKey {
    compressed: [u8; PUBLIC_KEY_LEN],
    point: Point,
    /// −A, precomputed for the verification equation R = s·B − h·A.
    neg_point: Point,
}

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.compressed[..6]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        write!(f, "VerifyingKey({hex}..)")
    }
}

impl PartialEq for VerifyingKey {
    fn eq(&self, other: &Self) -> bool {
        self.compressed == other.compressed
    }
}
impl Eq for VerifyingKey {}

impl SigningKey {
    /// Derives a signing key from a 32-byte seed (RFC 8032 §5.1.5).
    pub fn from_seed(seed: &[u8; SEED_LEN]) -> SigningKey {
        let mut h = Sha512::new();
        h.update(seed);
        let expanded = h.finalize();
        let mut a_bytes = [0u8; 32];
        a_bytes.copy_from_slice(&expanded[..32]);
        // Clamp: clear the cofactor bits, set bit 254.
        a_bytes[0] &= 0xf8;
        a_bytes[31] &= 0x7f;
        a_bytes[31] |= 0x40;
        let a = Scalar::from_bytes_reduced(&a_bytes);
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&expanded[32..]);
        let public_point = point::mul_base(a.as_bytes());
        let public = VerifyingKey {
            compressed: public_point.compress(),
            point: public_point,
            neg_point: public_point.neg(),
        };
        SigningKey { a, prefix, public }
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs `message`, deterministically (RFC 8032 §5.1.6).
    pub fn sign(&self, message: &[u8]) -> [u8; SIGNATURE_LEN] {
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(message);
        let r = Scalar::from_bytes_wide(&h.finalize());
        let r_point = point::mul_base(r.as_bytes());
        let r_bytes = r_point.compress();
        let hram = challenge(&r_bytes, &self.public.compressed, message);
        let s = Scalar::mul_add(&hram, &self.a, &r);
        let mut sig = [0u8; SIGNATURE_LEN];
        sig[..32].copy_from_slice(&r_bytes);
        sig[32..].copy_from_slice(s.as_bytes());
        sig
    }
}

/// h = SHA-512(R ‖ A ‖ M) mod L.
fn challenge(r_bytes: &[u8; 32], public: &[u8; 32], message: &[u8]) -> Scalar {
    let mut h = Sha512::new();
    h.update(r_bytes);
    h.update(public);
    h.update(message);
    Scalar::from_bytes_wide(&h.finalize())
}

/// The parsed, validated parts of a signature: decompressed R and
/// canonical s.
struct ParsedSig {
    r_bytes: [u8; 32],
    r_point: Point,
    s: Scalar,
}

fn parse_signature(sig: &[u8; SIGNATURE_LEN]) -> Option<ParsedSig> {
    let mut r_bytes = [0u8; 32];
    r_bytes.copy_from_slice(&sig[..32]);
    let r_point = Point::decompress(&r_bytes)?;
    let mut s_bytes = [0u8; 32];
    s_bytes.copy_from_slice(&sig[32..]);
    // RFC 8032: reject s ≥ L (signature malleability).
    let s = Scalar::from_canonical_bytes(&s_bytes)?;
    Some(ParsedSig {
        r_bytes,
        r_point,
        s,
    })
}

impl VerifyingKey {
    /// Reconstructs a public key from its compressed encoding; `None` if
    /// the bytes are not a valid point encoding.
    pub fn from_bytes(bytes: &[u8; PUBLIC_KEY_LEN]) -> Option<VerifyingKey> {
        let point = Point::decompress(bytes)?;
        Some(VerifyingKey {
            compressed: *bytes,
            point,
            neg_point: point.neg(),
        })
    }

    /// The compressed 32-byte encoding.
    pub fn as_bytes(&self) -> &[u8; PUBLIC_KEY_LEN] {
        &self.compressed
    }

    /// Verifies `sig` over `message` (RFC 8032 §5.1.7, cofactorless:
    /// the equation s·B = R + h·A is checked exactly, by comparing the
    /// canonical encoding of s·B − h·A against the signature's R).
    pub fn verify(&self, message: &[u8], sig: &[u8; SIGNATURE_LEN]) -> bool {
        let Some(parsed) = parse_signature(sig) else {
            return false;
        };
        let h = challenge(&parsed.r_bytes, &self.compressed, message);
        // s·B + h·(−A), one interleaved double-scalar multiplication
        // (B's multiples table is cached across calls).
        let candidate = point::vartime_double_scalar_mul_base(
            parsed.s.as_bytes(),
            h.as_bytes(),
            &self.neg_point,
        );
        // R decompressed, so comparing points (not bytes) is exact.
        candidate.eq_vartime(&parsed.r_point)
    }
}

/// One (public key, message, signature) triple for [`verify_batch`].
#[derive(Clone)]
pub struct BatchItem<'a> {
    /// The claimed signer.
    pub public: &'a VerifyingKey,
    /// The signed message.
    pub message: &'a [u8],
    /// The 64-byte signature.
    pub sig: &'a [u8; SIGNATURE_LEN],
}

/// Verifies a whole batch with one (2m+1)-point multi-scalar
/// multiplication. Returns `true` iff — up to the standard cofactor
/// slack — *every* signature in the batch verifies; an empty batch is
/// vacuously valid. On `false`, at least one item is bad, but the batch
/// equation cannot say which: re-verify individually to identify it.
///
/// The random coefficients zᵢ that prevent cross-item cancellation are
/// derived by hashing the entire batch (public keys, signatures,
/// messages), so a forger must commit to every signature before learning
/// any zᵢ — the usual Fiat–Shamir replacement for an RNG, which this
/// crate deliberately does not have (reproducibility).
///
/// The batch equation is checked after multiplying by the cofactor 8, as
/// in RFC 8032's suggested batch method; adversarially crafted
/// signatures involving small-order components can therefore pass the
/// batch while failing [`VerifyingKey::verify`]'s cofactorless check.
/// No such signature can alter signed *content*, and the registry layer
/// falls back to per-item verification whenever the batch fails.
pub fn verify_batch(items: &[BatchItem<'_>]) -> bool {
    if items.is_empty() {
        return true;
    }
    let mut parsed = Vec::with_capacity(items.len());
    for item in items {
        match parse_signature(item.sig) {
            Some(p) => parsed.push(p),
            None => return false,
        }
    }

    // Transcript hash binding every signature in the batch.
    let mut transcript = Sha512::new();
    transcript.update(b"faust-ed25519-batch/v1");
    for item in items {
        transcript.update(item.public.as_bytes());
        transcript.update(item.sig);
        transcript.update(&(item.message.len() as u64).to_be_bytes());
        transcript.update(item.message);
    }
    let seed = transcript.finalize();

    // Σ zᵢ·sᵢ on B  ==  Σ zᵢ·Rᵢ + Σ (zᵢ·hᵢ)·Aᵢ   (×8 on both sides).
    let mut s_agg = Scalar::ZERO;
    let mut scalars = Vec::with_capacity(2 * items.len());
    let mut points = Vec::with_capacity(2 * items.len());
    for (i, (item, sig)) in items.iter().zip(&parsed).enumerate() {
        let z = batch_coefficient(&seed, i as u64);
        let h = challenge(&sig.r_bytes, item.public.as_bytes(), item.message);
        s_agg = s_agg.add(&z.mul(&sig.s));
        scalars.push(*z.as_bytes());
        points.push(sig.r_point);
        scalars.push(*z.mul(&h).as_bytes());
        points.push(item.public.point);
    }
    let lhs = point::mul_base(s_agg.as_bytes());
    let rhs = point::vartime_multiscalar_mul(&scalars, &points);
    lhs.add(&rhs.neg()).mul_by_cofactor().is_identity()
}

/// The i-th 128-bit batch coefficient, never zero.
fn batch_coefficient(seed: &[u8; 64], i: u64) -> Scalar {
    let mut h = Sha512::new();
    h.update(seed);
    h.update(&i.to_be_bytes());
    let digest = h.finalize();
    let mut z = [0u8; 32];
    z[..16].copy_from_slice(&digest[..16]);
    if z == [0u8; 32] {
        z[0] = 1; // probability 2⁻¹²⁸, but never hand out a useless zᵢ
    }
    Scalar::from_canonical_bytes(&z).expect("128-bit value is below L")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    fn seed32(s: &str) -> [u8; 32] {
        unhex(s).try_into().expect("32 bytes")
    }

    struct Rfc8032Vector {
        seed: &'static str,
        public: &'static str,
        message: &'static str,
        signature: &'static str,
    }

    /// RFC 8032 §7.1, TEST 1–3.
    const VECTORS: &[Rfc8032Vector] = &[
        Rfc8032Vector {
            seed: "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
            public: "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
            message: "",
            signature: "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
                        5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
        },
        Rfc8032Vector {
            seed: "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
            public: "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
            message: "72",
            signature: "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
                        085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
        },
        Rfc8032Vector {
            seed: "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
            public: "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
            message: "af82",
            signature: "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
                        18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
        },
    ];

    #[test]
    fn rfc8032_vectors_sign_and_verify() {
        for (i, v) in VECTORS.iter().enumerate() {
            let sk = SigningKey::from_seed(&seed32(v.seed));
            assert_eq!(
                sk.verifying_key().as_bytes().to_vec(),
                unhex(v.public),
                "public key, vector {i}"
            );
            let msg = unhex(v.message);
            let sig = sk.sign(&msg);
            assert_eq!(sig.to_vec(), unhex(v.signature), "signature, vector {i}");
            assert!(sk.verifying_key().verify(&msg, &sig), "verify, vector {i}");
        }
    }

    #[test]
    fn wrong_message_or_key_rejected() {
        let sk = SigningKey::from_seed(&[1u8; 32]);
        let other = SigningKey::from_seed(&[2u8; 32]);
        let sig = sk.sign(b"msg");
        assert!(!sk.verifying_key().verify(b"msG", &sig));
        assert!(!other.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn corrupted_signature_bits_rejected() {
        let sk = SigningKey::from_seed(&[3u8; 32]);
        let sig = sk.sign(b"payload");
        for byte in [0usize, 31, 32, 63] {
            let mut bad = sig;
            bad[byte] ^= 0x01;
            assert!(
                !sk.verifying_key().verify(b"payload", &bad),
                "flipped byte {byte}"
            );
        }
    }

    #[test]
    fn non_canonical_s_rejected() {
        // s' = s + L re-encodes the same residue non-canonically; a
        // malleable verifier would accept it.
        let sk = SigningKey::from_seed(&[4u8; 32]);
        let sig = sk.sign(b"m");
        let mut s = [0u8; 32];
        s.copy_from_slice(&sig[32..]);
        // add L to s (little-endian byte addition).
        let l_bytes: [u8; 32] = {
            let mut b = [0u8; 32];
            b[..8].copy_from_slice(&0x5812631a5cf5d3ed_u64.to_le_bytes());
            b[8..16].copy_from_slice(&0x14def9dea2f79cd6_u64.to_le_bytes());
            b[24..32].copy_from_slice(&0x1000000000000000_u64.to_le_bytes());
            b
        };
        let mut carry = 0u16;
        let mut s_plus_l = [0u8; 32];
        for i in 0..32 {
            let acc = s[i] as u16 + l_bytes[i] as u16 + carry;
            s_plus_l[i] = acc as u8;
            carry = acc >> 8;
        }
        assert_eq!(carry, 0, "s + L fits 256 bits");
        let mut bad = sig;
        bad[32..].copy_from_slice(&s_plus_l);
        assert!(!sk.verifying_key().verify(b"m", &bad));
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let sk = SigningKey::from_seed(&[5u8; 32]);
        let pk = sk.verifying_key();
        let rebuilt = VerifyingKey::from_bytes(pk.as_bytes()).expect("valid encoding");
        assert_eq!(rebuilt, pk);
        let sig = sk.sign(b"roundtrip");
        assert!(rebuilt.verify(b"roundtrip", &sig));
    }

    #[test]
    fn invalid_public_key_bytes_rejected() {
        let mut off_curve = [0u8; 32];
        off_curve[0] = 2;
        assert!(VerifyingKey::from_bytes(&off_curve).is_none());
    }

    #[test]
    fn batch_accepts_honest_and_rejects_tampered() {
        let keys: Vec<SigningKey> = (0..6u8).map(|i| SigningKey::from_seed(&[i; 32])).collect();
        let messages: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 7 + i as usize]).collect();
        let sigs: Vec<[u8; 64]> = keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
        let publics: Vec<VerifyingKey> = keys.iter().map(|k| k.verifying_key()).collect();
        let items: Vec<BatchItem<'_>> = publics
            .iter()
            .zip(&messages)
            .zip(&sigs)
            .map(|((public, message), sig)| BatchItem {
                public,
                message,
                sig,
            })
            .collect();
        assert!(verify_batch(&items));
        assert!(verify_batch(&[]), "empty batch is vacuously valid");

        // One flipped signature bit fails the whole batch.
        let mut bad_sigs = sigs.clone();
        bad_sigs[3][40] ^= 0x10;
        let bad_items: Vec<BatchItem<'_>> = publics
            .iter()
            .zip(&messages)
            .zip(&bad_sigs)
            .map(|((public, message), sig)| BatchItem {
                public,
                message,
                sig,
            })
            .collect();
        assert!(!verify_batch(&bad_items));

        // Swapping two valid (message, signature) pairs also fails.
        let mut swapped: Vec<BatchItem<'_>> = items.clone();
        swapped[0].sig = items[1].sig;
        swapped[1].sig = items[0].sig;
        assert!(!verify_batch(&swapped));
    }

    #[test]
    fn batch_agrees_with_individual_verification_on_random_corruption() {
        let keys: Vec<SigningKey> = (10..14u8)
            .map(|i| SigningKey::from_seed(&[i; 32]))
            .collect();
        let msg = b"same message for everyone";
        let mut sigs: Vec<[u8; 64]> = keys.iter().map(|k| k.sign(msg)).collect();
        sigs[2][0] ^= 0xFF; // corrupt R of one signature
        let publics: Vec<VerifyingKey> = keys.iter().map(|k| k.verifying_key()).collect();
        let per_item: Vec<bool> = publics
            .iter()
            .zip(&sigs)
            .map(|(p, s)| p.verify(msg, s))
            .collect();
        assert_eq!(per_item, vec![true, true, false, true]);
        let items: Vec<BatchItem<'_>> = publics
            .iter()
            .zip(&sigs)
            .map(|(public, sig)| BatchItem {
                public,
                message: msg,
                sig,
            })
            .collect();
        assert!(!verify_batch(&items));
    }
}
