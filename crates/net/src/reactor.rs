//! Non-blocking reactor transport: one thread, many connections,
//! explicit admission control.
//!
//! The [`tcp`](crate::tcp) transport spends one OS thread per connection,
//! which caps a server at the thread limit long before the engine
//! saturates. [`ReactorTransport`] replaces that model with a single
//! readiness-driven event loop (epoll on Linux, `poll(2)` elsewhere — see
//! [`sys`]): non-blocking accept, per-connection incremental frame
//! decoding via [`faust_types::frame::FrameDecoder`], and write-interest
//! driven egress over the same coalescing buffers the TCP transport
//! introduced. It implements [`ServerTransport`], so `ServerEngine`,
//! group commit, and sharding run on top unchanged — the reactor *is*
//! the serve thread: all socket work happens inside `recv`/`send` calls
//! on the engine loop's own thread.
//!
//! # Admission control
//!
//! Untrusted clients get bounded resources, enforced per connection and
//! globally (the Fustor stability playbook: bounded queues, slow-consumer
//! excision, suspect isolation):
//!
//! * **Bounded ingress queues.** Each connection may have at most
//!   [`ReactorConfig::ingress_queue_msgs`] decoded messages waiting for
//!   the engine; past that the reactor *stops reading its socket*
//!   (clears read interest) instead of buffering unboundedly, and resumes
//!   at half occupancy. Backpressure propagates to the peer's kernel
//!   send buffer, exactly like a slow single-threaded server would.
//! * **Global caps with shed-on-accept.** At most
//!   [`ReactorConfig::max_conns`] connections are admitted; beyond that
//!   (or while total buffered bytes exceed
//!   [`ReactorConfig::max_buffered_bytes`]) new connections are closed
//!   immediately at accept with a typed shed reason, so overload degrades
//!   to "late joiners are refused" rather than "everyone times out".
//! * **Slow-consumer egress limits.** A client that stops reading its
//!   replies accumulates egress; past
//!   [`ReactorConfig::max_egress_bytes`] it is disconnected with
//!   [`DisconnectReason::SlowConsumer`] rather than ballooning memory.
//! * **Suspect-peer isolation.** A stalled HELLO is reaped after
//!   [`ReactorConfig::hello_timeout`]; a malformed frame, an oversized
//!   header, or an I/O error excises exactly that connection with a
//!   typed [`DisconnectReason`]. A connection that has not completed
//!   HELLO may buffer at most [`MAX_HELLO_INGRESS`] undecoded bytes —
//!   a HELLO frame is a dozen bytes, so a pre-registration peer cannot
//!   park a near-[`MAX_FRAME_LEN`](faust_types::frame::MAX_FRAME_LEN)
//!   frame outside the per-client accounting. No single peer can wedge
//!   the loop: every read is non-blocking and budgeted, every write is
//!   non-blocking, and all verdicts are per-connection.
//!
//! Memory accounting is explicit: `buffered_bytes` tracks every byte the
//! reactor holds for peers (undecoded ingress + decoded-but-undelivered
//! messages + pending egress), and the peak is exported via
//! [`ReactorStats::peak_buffered_bytes`] so tests can *assert* bounded
//! memory instead of hoping for it.
//!
//! The HELLO contract matches the TCP transport: identification, not
//! authentication (see [`tcp`](crate::tcp)); one connection per distinct
//! client id over the transport's lifetime; [`Incoming::Closed`] once all
//! `n` expected clients have connected and departed.

pub mod sys;

use crate::{Incoming, ServerTransport};
use faust_types::frame::{frame_into, FrameDecoder};
use faust_types::{ClientId, UstorMsg};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};
use sys::{Poller, ReadyEvent};

/// Admission-control knobs for [`ReactorTransport`]. The defaults are
/// deliberately generous for trusted benchmarks and tight enough that a
/// hostile peer cannot make the reactor balloon; production deployments
/// tune them per `docs/networking.md`.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Maximum simultaneously open connections (registered or still in
    /// HELLO). Accepts beyond this are shed immediately.
    pub max_conns: usize,
    /// Maximum decoded-but-undelivered messages per connection before
    /// the reactor stops reading that socket (resumes at half).
    pub ingress_queue_msgs: usize,
    /// Maximum pending egress bytes per connection before it is
    /// disconnected as a slow consumer.
    pub max_egress_bytes: usize,
    /// Global cap on bytes buffered for all peers together (ingress,
    /// queued messages, and egress). Above it, new accepts are shed and
    /// registered connections stop being read until it halves.
    pub max_buffered_bytes: usize,
    /// How long a freshly accepted connection gets to complete its
    /// HELLO frame before being reaped.
    pub hello_timeout: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_conns: 1024,
            ingress_queue_msgs: 64,
            max_egress_bytes: 4 << 20,
            max_buffered_bytes: 64 << 20,
            hello_timeout: Duration::from_secs(5),
        }
    }
}

/// Why the reactor excised a connection. Typed so tests (and operators
/// reading stats) can tell overload shedding from protocol violations
/// from ordinary departures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectReason {
    /// The peer closed the connection (ordinary departure).
    PeerClosed,
    /// The connection never completed its HELLO within the timeout.
    HelloTimeout,
    /// The HELLO frame was missing, malformed, or out of range.
    BadHello,
    /// A HELLO for a client id that already had its one connection.
    DuplicateClient,
    /// A malformed or oversized frame after HELLO.
    Malformed,
    /// The peer stopped reading and its egress exceeded the cap.
    SlowConsumer,
    /// A socket error while reading or writing.
    Io,
    /// Shed at accept: the connection cap was reached.
    ShedOverCapacity,
    /// Shed at accept: the global memory budget was exhausted.
    ShedMemoryPressure,
}

impl std::fmt::Display for DisconnectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DisconnectReason::PeerClosed => "peer closed",
            DisconnectReason::HelloTimeout => "hello timeout",
            DisconnectReason::BadHello => "bad hello",
            DisconnectReason::DuplicateClient => "duplicate client",
            DisconnectReason::Malformed => "malformed frame",
            DisconnectReason::SlowConsumer => "slow consumer",
            DisconnectReason::Io => "io error",
            DisconnectReason::ShedOverCapacity => "shed: over connection cap",
            DisconnectReason::ShedMemoryPressure => "shed: memory pressure",
        };
        f.write_str(s)
    }
}

/// Reactor counters, mirroring the [`EngineStats`] merge convention:
/// counters add, high-water marks take the maximum —
/// [`ReactorStats::merge`] is the one sanctioned aggregation.
///
/// [`EngineStats`]: https://docs.rs/faust-ustor
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Connections admitted past the accept-time checks.
    pub accepted: u64,
    /// Accepts refused because the connection cap was reached.
    pub shed_over_capacity: u64,
    /// Accepts refused because the global memory budget was exhausted.
    pub shed_memory_pressure: u64,
    /// Complete messages decoded and handed toward the engine.
    pub msgs_in: u64,
    /// Raw bytes read off sockets.
    pub bytes_in: u64,
    /// Frames encoded for egress.
    pub frames_out: u64,
    /// Raw bytes written to sockets.
    pub bytes_out: u64,
    /// Successful `write` syscalls (coalescing proof: stays well below
    /// `frames_out` under load).
    pub socket_writes: u64,
    /// Times a connection's read interest was cleared because its
    /// ingress queue filled (backpressure engaged).
    pub read_pauses: u64,
    /// Times a connection's read interest was cleared because the
    /// global memory budget was exhausted.
    pub global_pauses: u64,
    /// Poller wakeups.
    pub polls: u64,
    /// Most simultaneously open connections.
    pub peak_conns: usize,
    /// Most bytes ever buffered for peers at once (ingress + queued
    /// messages + egress) — the bounded-memory witness.
    pub peak_buffered_bytes: usize,
    /// Connections reaped for never completing HELLO.
    pub hello_timeouts: u64,
    /// Connections dropped for a missing/invalid HELLO.
    pub bad_hellos: u64,
    /// Connections dropped for reusing an already-seen client id.
    pub duplicate_clients: u64,
    /// Connections dropped for malformed or oversized frames.
    pub malformed: u64,
    /// Connections dropped for exceeding the egress cap.
    pub slow_consumers: u64,
    /// Connections dropped on socket errors.
    pub io_errors: u64,
    /// Ordinary departures (peer closed).
    pub departed: u64,
}

impl ReactorStats {
    /// Accumulates `other` into `self`: counters add, high-water marks
    /// take the maximum.
    pub fn merge(&mut self, other: &ReactorStats) {
        self.accepted += other.accepted;
        self.shed_over_capacity += other.shed_over_capacity;
        self.shed_memory_pressure += other.shed_memory_pressure;
        self.msgs_in += other.msgs_in;
        self.bytes_in += other.bytes_in;
        self.frames_out += other.frames_out;
        self.bytes_out += other.bytes_out;
        self.socket_writes += other.socket_writes;
        self.read_pauses += other.read_pauses;
        self.global_pauses += other.global_pauses;
        self.polls += other.polls;
        self.peak_conns = self.peak_conns.max(other.peak_conns);
        self.peak_buffered_bytes = self.peak_buffered_bytes.max(other.peak_buffered_bytes);
        self.hello_timeouts += other.hello_timeouts;
        self.bad_hellos += other.bad_hellos;
        self.duplicate_clients += other.duplicate_clients;
        self.malformed += other.malformed;
        self.slow_consumers += other.slow_consumers;
        self.io_errors += other.io_errors;
        self.departed += other.departed;
    }

    /// [`ReactorStats::merge`] over any number of stats, starting from
    /// zero.
    pub fn merged<'a>(stats: impl IntoIterator<Item = &'a ReactorStats>) -> ReactorStats {
        let mut out = ReactorStats::default();
        for s in stats {
            out.merge(s);
        }
        out
    }

    /// Total connections shed at accept, either cause.
    pub fn shed(&self) -> u64 {
        self.shed_over_capacity + self.shed_memory_pressure
    }
}

/// How many bytes one readiness event may read from one socket before
/// yielding to the rest of the loop — level-triggered polling re-arms the
/// leftover, so a firehose peer cannot starve its neighbours.
const READ_BUDGET: usize = 64 * 1024;

/// Bounded log of recent disconnects (id if registered, typed reason).
const RECENT_DISCONNECTS: usize = 32;

/// Most undecoded bytes a connection may hold before its HELLO frame
/// registers it. A HELLO is a framed [`ClientId`] — a dozen bytes — so a
/// buffer past this bound means the peer's first frame header claims a
/// payload that cannot be a HELLO, and the connection is excised with
/// [`DisconnectReason::BadHello`] instead of being allowed to buffer up
/// to a full frame (16 MiB) per connection outside the per-client queue
/// accounting.
pub const MAX_HELLO_INGRESS: usize = 64;

/// How long the listener backs off after an accept failure other than
/// `WouldBlock` (EMFILE/ENFILE under fd exhaustion): read interest is
/// dropped for this long so the still-pending backlog entry does not
/// re-fire the level-triggered listener event in a hot loop.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

struct Conn {
    stream: TcpStream,
    /// `Some` once the HELLO frame has registered the peer.
    id: Option<ClientId>,
    decoder: FrameDecoder,
    /// Messages from this connection currently queued for the engine.
    queued_msgs: usize,
    queued_bytes: usize,
    /// Pending egress: encoded frames not yet written, `egress_start`
    /// marking the written prefix (compacted lazily like the decoder).
    egress: Vec<u8>,
    egress_start: usize,
    /// Write interest is armed (egress blocked on a full kernel buffer).
    want_write: bool,
    /// Read interest cleared: this connection's ingress queue is full.
    paused_queue: bool,
    /// Read interest cleared: the global memory budget is exhausted.
    paused_global: bool,
    hello_deadline: Instant,
}

impl Conn {
    fn egress_pending(&self) -> usize {
        self.egress.len() - self.egress_start
    }

    fn wants_read(&self) -> bool {
        !self.paused_queue && !self.paused_global
    }
}

/// One slab slot. The generation guards queued messages and interest
/// updates against slot reuse: a message enqueued by connection A must
/// not decrement the counters of connection B that later landed in A's
/// slot.
struct Slot {
    gen: u64,
    conn: Option<Conn>,
}

struct Ready {
    slot: usize,
    gen: u64,
    from: ClientId,
    msg: UstorMsg,
    bytes: usize,
}

/// Readiness-based server transport: one event loop, many connections.
/// See the [module docs](self) for the architecture and admission-control
/// contract.
pub struct ReactorTransport {
    listener: TcpListener,
    local_addr: SocketAddr,
    poller: Poller,
    events: Vec<ReadyEvent>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Client id → live slot, for egress addressing.
    by_client: Vec<Option<usize>>,
    /// One connection per distinct client id, ever (same rule as the
    /// TCP transport: reconnects must not consume another id's slot).
    registered: Vec<bool>,
    /// Decoded messages awaiting delivery to the engine.
    ready: VecDeque<Ready>,
    expected: usize,
    seen: usize,
    active: usize,
    open_conns: usize,
    pending_hellos: usize,
    /// Bytes held for peers right now: undecoded ingress + queued
    /// messages + pending egress.
    buffered_bytes: usize,
    /// Connections currently paused by the global budget.
    global_paused: usize,
    /// Listener read interest is parked until this instant after an
    /// accept failure (fd exhaustion) — see [`ACCEPT_BACKOFF`].
    accept_backoff_until: Option<Instant>,
    cfg: ReactorConfig,
    stats: ReactorStats,
    recent: VecDeque<(Option<ClientId>, DisconnectReason)>,
    chunk: Vec<u8>,
}

/// Listener registration token; connection tokens are `slot + 1`.
const LISTENER_TOKEN: usize = 0;

impl ReactorTransport {
    /// Binds a listener with default [`ReactorConfig`], expecting `n`
    /// distinct clients over the transport's lifetime.
    ///
    /// # Errors
    ///
    /// Propagates socket and poller creation errors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`crate::MAX_CLIENTS`].
    pub fn bind(addr: impl ToSocketAddrs, n: usize) -> io::Result<Self> {
        Self::bind_with(addr, n, ReactorConfig::default())
    }

    /// Binds with explicit admission-control configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket and poller creation errors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`crate::MAX_CLIENTS`], or if
    /// `cfg.max_conns` is zero.
    pub fn bind_with(addr: impl ToSocketAddrs, n: usize, cfg: ReactorConfig) -> io::Result<Self> {
        assert!(
            n > 0 && n <= crate::MAX_CLIENTS,
            "client count out of range"
        );
        assert!(cfg.max_conns > 0, "max_conns must admit at least one");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
        Ok(ReactorTransport {
            listener,
            local_addr,
            poller,
            events: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            by_client: vec![None; n],
            registered: vec![false; n],
            ready: VecDeque::new(),
            expected: n,
            seen: 0,
            active: 0,
            open_conns: 0,
            pending_hellos: 0,
            buffered_bytes: 0,
            global_paused: 0,
            accept_backoff_until: None,
            cfg,
            stats: ReactorStats::default(),
            recent: VecDeque::new(),
            chunk: vec![0; 8192],
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The reactor's counters so far.
    pub fn stats(&self) -> &ReactorStats {
        &self.stats
    }

    /// Bytes currently buffered for peers (ingress + queued + egress).
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_bytes
    }

    /// The most recent disconnects, oldest first: the client id if the
    /// connection had completed HELLO, and the typed reason.
    pub fn recent_disconnects(&self) -> Vec<(Option<ClientId>, DisconnectReason)> {
        self.recent.iter().cloned().collect()
    }

    fn note_buffered(&mut self, delta: usize) {
        self.buffered_bytes += delta;
        self.stats.peak_buffered_bytes = self.stats.peak_buffered_bytes.max(self.buffered_bytes);
    }

    fn closed(&self) -> bool {
        self.seen == self.expected && self.active == 0 && self.ready.is_empty()
    }

    /// Re-arms poller interest from a connection's current flags.
    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.slots[slot].conn.as_ref() else {
            return;
        };
        let _ = self.poller.modify(
            conn.stream.as_raw_fd(),
            slot + 1,
            conn.wants_read(),
            conn.want_write,
        );
    }

    fn record_disconnect(&mut self, id: Option<ClientId>, reason: DisconnectReason) {
        match reason {
            DisconnectReason::PeerClosed => self.stats.departed += 1,
            DisconnectReason::HelloTimeout => self.stats.hello_timeouts += 1,
            DisconnectReason::BadHello => self.stats.bad_hellos += 1,
            DisconnectReason::DuplicateClient => self.stats.duplicate_clients += 1,
            DisconnectReason::Malformed => self.stats.malformed += 1,
            DisconnectReason::SlowConsumer => self.stats.slow_consumers += 1,
            DisconnectReason::Io => self.stats.io_errors += 1,
            DisconnectReason::ShedOverCapacity => self.stats.shed_over_capacity += 1,
            DisconnectReason::ShedMemoryPressure => self.stats.shed_memory_pressure += 1,
        }
        if self.recent.len() == RECENT_DISCONNECTS {
            self.recent.pop_front();
        }
        self.recent.push_back((id, reason));
    }

    /// Excises one connection with a typed reason. Messages it already
    /// queued stay deliverable (their byte accounting resolves when the
    /// engine pops them — the generation check skips the dead conn).
    fn disconnect(&mut self, slot: usize, reason: DisconnectReason) {
        let Some(conn) = self.slots[slot].conn.take() else {
            return;
        };
        self.slots[slot].gen += 1;
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        // Queued-message bytes are NOT released here: they release
        // unconditionally when popped from `ready`.
        self.buffered_bytes -= conn.decoder.pending_bytes() + conn.egress_pending();
        if conn.paused_global {
            self.global_paused -= 1;
        }
        match conn.id {
            Some(id) => {
                self.active -= 1;
                self.by_client[id.index()] = None;
            }
            None => self.pending_hellos -= 1,
        }
        self.open_conns -= 1;
        self.free.push(slot);
        self.record_disconnect(conn.id, reason);
        // `conn.stream` drops here, closing the socket.
    }

    /// Drains the accept backlog, applying shed-on-accept admission.
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EMFILE/ENFILE and friends: the backlog entry stays
                    // pending and the listener stays level-triggered
                    // readable, so retrying immediately would busy-spin.
                    // Park listener interest and retry after a backoff.
                    let _ =
                        self.poller
                            .modify(self.listener.as_raw_fd(), LISTENER_TOKEN, false, false);
                    self.accept_backoff_until = Some(Instant::now() + ACCEPT_BACKOFF);
                    return;
                }
            };
            if self.open_conns >= self.cfg.max_conns {
                // Shed: closing immediately tells the peer (EOF before
                // any reply) that it was refused, rather than leaving it
                // to time out against a wedged server.
                self.record_disconnect(None, DisconnectReason::ShedOverCapacity);
                continue;
            }
            if self.buffered_bytes >= self.cfg.max_buffered_bytes {
                self.record_disconnect(None, DisconnectReason::ShedMemoryPressure);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                self.record_disconnect(None, DisconnectReason::Io);
                continue;
            }
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            let slot = match self.free.pop() {
                Some(s) => s,
                None => {
                    self.slots.push(Slot { gen: 0, conn: None });
                    self.slots.len() - 1
                }
            };
            if self.poller.register(fd, slot + 1, true, false).is_err() {
                self.free.push(slot);
                self.record_disconnect(None, DisconnectReason::Io);
                continue;
            }
            self.slots[slot].conn = Some(Conn {
                stream,
                id: None,
                decoder: FrameDecoder::new(),
                queued_msgs: 0,
                queued_bytes: 0,
                egress: Vec::new(),
                egress_start: 0,
                want_write: false,
                paused_queue: false,
                paused_global: false,
                hello_deadline: Instant::now() + self.cfg.hello_timeout,
            });
            self.open_conns += 1;
            self.pending_hellos += 1;
            self.stats.accepted += 1;
            self.stats.peak_conns = self.stats.peak_conns.max(self.open_conns);
        }
    }

    /// Handles a readable (or hangup) event on a connection: budgeted
    /// non-blocking reads, incremental decode, HELLO registration, and
    /// backpressure bookkeeping.
    fn handle_readable(&mut self, slot: usize, hangup: bool) {
        {
            let Some(conn) = self.slots[slot].conn.as_ref() else {
                return;
            };
            // Paused connections keep their data in the kernel buffer,
            // but ERR/HUP is reported regardless of the interest mask:
            // returning without consuming it would make the next poll
            // re-fire the same event in a hot loop, so a hung-up paused
            // connection is excised here (its already-queued messages
            // stay deliverable via the generation check).
            if !conn.wants_read() {
                if hangup {
                    self.disconnect(slot, DisconnectReason::PeerClosed);
                }
                return;
            }
        }
        // Any connection arriving here while the budget is blown gets
        // globally paused instead of read — pre-HELLO ones included
        // (the HELLO timeout reaps them if the pressure outlasts them).
        if self.buffered_bytes >= self.cfg.max_buffered_bytes {
            let conn = self.slots[slot].conn.as_mut().expect("checked above");
            conn.paused_global = true;
            self.global_paused += 1;
            self.stats.global_pauses += 1;
            self.update_interest(slot);
            return;
        }

        // Read phase: up to READ_BUDGET bytes, then yield to the loop.
        let mut eof = false;
        let mut budget = READ_BUDGET;
        loop {
            let conn = self.slots[slot].conn.as_mut().expect("present");
            match conn.stream.read(&mut self.chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.decoder.extend(&self.chunk[..n]);
                    self.stats.bytes_in += n as u64;
                    self.note_buffered(n);
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.disconnect(slot, DisconnectReason::Io);
                    return;
                }
            }
        }

        // Decode phase. HELLO first if still pending — the decoder then
        // keeps serving protocol frames from the same buffer, so a HELLO
        // and a first SUBMIT arriving in one segment both land.
        if self.slots[slot]
            .conn
            .as_ref()
            .is_some_and(|c| c.id.is_none())
        {
            let conn = self.slots[slot].conn.as_mut().expect("present");
            let before = conn.decoder.pending_bytes();
            match conn.decoder.next_frame::<ClientId>() {
                Ok(Some(id)) => {
                    let consumed = before - conn.decoder.pending_bytes();
                    if id.index() >= self.expected {
                        self.buffered_bytes -= consumed;
                        self.disconnect(slot, DisconnectReason::BadHello);
                        return;
                    }
                    if self.registered[id.index()] {
                        self.buffered_bytes -= consumed;
                        self.disconnect(slot, DisconnectReason::DuplicateClient);
                        return;
                    }
                    conn.id = Some(id);
                    self.buffered_bytes -= consumed;
                    self.registered[id.index()] = true;
                    self.by_client[id.index()] = Some(slot);
                    self.seen += 1;
                    self.active += 1;
                    self.pending_hellos -= 1;
                }
                Ok(None) => {
                    // A HELLO frame is tiny; an incomplete one with this
                    // much buffered means the first header claims a
                    // payload no HELLO could have — excise it now rather
                    // than buffering toward the 16 MiB frame cap on a
                    // connection the per-client accounting cannot see.
                    if conn.decoder.pending_bytes() > MAX_HELLO_INGRESS {
                        self.disconnect(slot, DisconnectReason::BadHello);
                        return;
                    }
                    if eof {
                        self.disconnect(slot, DisconnectReason::PeerClosed);
                    }
                    return;
                }
                Err(_) => {
                    self.disconnect(slot, DisconnectReason::BadHello);
                    return;
                }
            }
        }

        // Protocol frames.
        loop {
            let conn = self.slots[slot].conn.as_mut().expect("present");
            let before = conn.decoder.pending_bytes();
            match conn.decoder.next_frame::<UstorMsg>() {
                Ok(Some(msg)) => {
                    let bytes = before - conn.decoder.pending_bytes();
                    let from = conn.id.expect("registered above");
                    let gen = self.slots[slot].gen;
                    let conn = self.slots[slot].conn.as_mut().expect("present");
                    conn.queued_msgs += 1;
                    conn.queued_bytes += bytes;
                    self.ready.push_back(Ready {
                        slot,
                        gen,
                        from,
                        msg,
                        bytes,
                    });
                    self.stats.msgs_in += 1;
                }
                Ok(None) => break,
                Err(_) => {
                    self.disconnect(slot, DisconnectReason::Malformed);
                    return;
                }
            }
        }

        // Backpressure: queue full → stop reading this socket.
        let cap = self.cfg.ingress_queue_msgs;
        let conn = self.slots[slot].conn.as_mut().expect("present");
        if conn.queued_msgs >= cap && !conn.paused_queue {
            conn.paused_queue = true;
            self.stats.read_pauses += 1;
            self.update_interest(slot);
        }

        if eof {
            self.disconnect(slot, DisconnectReason::PeerClosed);
        }
    }

    /// Writes as much pending egress as the socket accepts; arms or
    /// clears write interest accordingly.
    fn flush_egress(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.slots[slot].conn.as_mut() else {
                return;
            };
            if conn.egress_pending() == 0 {
                conn.egress.clear();
                conn.egress_start = 0;
                if conn.want_write {
                    conn.want_write = false;
                    self.update_interest(slot);
                }
                return;
            }
            match conn.stream.write(&conn.egress[conn.egress_start..]) {
                Ok(0) => {
                    self.disconnect(slot, DisconnectReason::Io);
                    return;
                }
                Ok(n) => {
                    conn.egress_start += n;
                    self.buffered_bytes -= n;
                    self.stats.bytes_out += n as u64;
                    self.stats.socket_writes += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !conn.want_write {
                        conn.want_write = true;
                        self.update_interest(slot);
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.disconnect(slot, DisconnectReason::Io);
                    return;
                }
            }
        }
    }

    /// Encodes a batch into the per-connection egress buffer (one flush
    /// attempt afterwards → one socket write per client per batch when
    /// the socket keeps up), enforcing the slow-consumer cap per frame
    /// so a non-reading peer is excised mid-batch instead of after the
    /// whole batch ballooned.
    fn enqueue_egress(&mut self, to: ClientId, msgs: &[UstorMsg]) {
        let Some(slot) = self.by_client.get(to.index()).copied().flatten() else {
            return; // departed client: best-effort drop
        };
        for msg in msgs {
            let Some(conn) = self.slots[slot].conn.as_mut() else {
                return;
            };
            // Lazy compaction, same policy as the frame decoder.
            if conn.egress_start > 0 && conn.egress_start >= conn.egress.len() / 2 {
                conn.egress.drain(..conn.egress_start);
                conn.egress_start = 0;
            }
            let before = conn.egress.len();
            frame_into(&mut conn.egress, msg);
            let added = conn.egress.len() - before;
            let pending = conn.egress_pending();
            self.note_buffered(added);
            self.stats.frames_out += 1;
            if pending > self.cfg.max_egress_bytes {
                self.disconnect(slot, DisconnectReason::SlowConsumer);
                return;
            }
        }
        self.flush_egress(slot);
        self.maybe_release_global();
    }

    /// Resumes globally paused connections once the budget has halved.
    fn maybe_release_global(&mut self) {
        if self.global_paused == 0 || self.buffered_bytes > self.cfg.max_buffered_bytes / 2 {
            return;
        }
        for slot in 0..self.slots.len() {
            let resumed = {
                let Some(conn) = self.slots[slot].conn.as_mut() else {
                    continue;
                };
                if !conn.paused_global {
                    continue;
                }
                conn.paused_global = false;
                true
            };
            if resumed {
                self.global_paused -= 1;
                self.update_interest(slot);
            }
        }
    }

    /// Delivers the next queued message, resolving its byte accounting
    /// and releasing backpressure on its (still-live) connection.
    fn pop_ready(&mut self) -> Option<Incoming> {
        let r = self.ready.pop_front()?;
        self.buffered_bytes -= r.bytes;
        if self.slots[r.slot].gen == r.gen {
            let resume = {
                let conn = self.slots[r.slot].conn.as_mut().expect("gen matches");
                conn.queued_msgs -= 1;
                conn.queued_bytes -= r.bytes;
                if conn.paused_queue && conn.queued_msgs <= self.cfg.ingress_queue_msgs / 2 {
                    conn.paused_queue = false;
                    true
                } else {
                    false
                }
            };
            if resume {
                self.update_interest(r.slot);
            }
        }
        self.maybe_release_global();
        Some(Incoming::Msg(r.from, r.msg))
    }

    /// Next HELLO deadline among still-unregistered connections.
    fn next_hello_deadline(&self) -> Option<Instant> {
        if self.pending_hellos == 0 {
            return None;
        }
        self.slots
            .iter()
            .filter_map(|s| s.conn.as_ref())
            .filter(|c| c.id.is_none())
            .map(|c| c.hello_deadline)
            .min()
    }

    /// Reaps connections whose HELLO never arrived in time.
    fn reap_hello_timeouts(&mut self) {
        if self.pending_hellos == 0 {
            return;
        }
        let now = Instant::now();
        let overdue: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.conn
                    .as_ref()
                    .is_some_and(|c| c.id.is_none() && now >= c.hello_deadline)
            })
            .map(|(i, _)| i)
            .collect();
        for slot in overdue {
            self.disconnect(slot, DisconnectReason::HelloTimeout);
        }
    }

    /// One turn of the event loop: wait (bounded by `timeout` and the
    /// next HELLO deadline), then service every ready fd.
    fn pump(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let now = Instant::now();
        if let Some(resume) = self.accept_backoff_until {
            if now >= resume {
                // Backoff elapsed: re-arm the listener; the still-pending
                // backlog makes it readable again on the next wait.
                self.accept_backoff_until = None;
                let _ = self
                    .poller
                    .modify(self.listener.as_raw_fd(), LISTENER_TOKEN, true, false);
            }
        }
        let mut wait = timeout;
        for deadline in [self.next_hello_deadline(), self.accept_backoff_until]
            .into_iter()
            .flatten()
        {
            let until = deadline.saturating_duration_since(now);
            wait = Some(match wait {
                Some(t) => t.min(until),
                None => until,
            });
        }
        let mut events = std::mem::take(&mut self.events);
        let res = self.poller.wait(&mut events, wait);
        self.stats.polls += 1;
        let outcome = match res {
            Ok(()) => {
                // Accepts first: a slot excised by a connection event
                // below must not be reused by an accept in this same
                // batch, or a still-queued event for the old fd (same
                // token) would be delivered to the new occupant. Slots
                // freed here are only handed out on the next pump, when
                // no stale events can remain.
                for ev in &events {
                    if ev.token == LISTENER_TOKEN {
                        self.accept_ready();
                    }
                }
                for ev in &events {
                    if ev.token == LISTENER_TOKEN {
                        continue;
                    }
                    let slot = ev.token - 1;
                    if slot >= self.slots.len() || self.slots[slot].conn.is_none() {
                        continue; // excised earlier in this same batch
                    }
                    if ev.readable || ev.hangup {
                        self.handle_readable(slot, ev.hangup);
                    }
                    if ev.writable {
                        self.flush_egress(slot);
                    }
                }
                Ok(())
            }
            Err(e) => Err(e),
        };
        self.events = events;
        // Writable-event egress drain may have freed budget even though
        // nothing was enqueued or popped this turn — without this,
        // globally paused connections would never resume (and `recv`
        // would block forever) after a pressure episode whose bytes were
        // all pending egress.
        self.maybe_release_global();
        self.reap_hello_timeouts();
        outcome
    }
}

impl ServerTransport for ReactorTransport {
    fn recv(&mut self) -> Incoming {
        loop {
            if let Some(msg) = self.pop_ready() {
                return msg;
            }
            if self.closed() {
                return Incoming::Closed;
            }
            if self.pump(None).is_err() {
                return Incoming::Closed; // poller failure is fatal
            }
        }
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Incoming {
        loop {
            if let Some(msg) = self.pop_ready() {
                return msg;
            }
            if self.closed() {
                return Incoming::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Incoming::TimedOut;
            }
            if self.pump(Some(deadline - now)).is_err() {
                return Incoming::Closed;
            }
        }
    }

    fn try_recv(&mut self) -> Incoming {
        if let Some(msg) = self.pop_ready() {
            return msg;
        }
        if self.closed() {
            return Incoming::Closed;
        }
        if self.pump(Some(Duration::ZERO)).is_err() {
            return Incoming::Closed;
        }
        match self.pop_ready() {
            Some(msg) => msg,
            None if self.closed() => Incoming::Closed,
            None => Incoming::Idle,
        }
    }

    fn send(&mut self, to: ClientId, msg: UstorMsg) {
        self.enqueue_egress(to, std::slice::from_ref(&msg));
    }

    fn send_batch(&mut self, to: ClientId, msgs: Vec<UstorMsg>) {
        self.enqueue_egress(to, &msgs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::connect;
    use faust_crypto::Signature;
    use faust_types::frame::{write_frame, MAX_FRAME_LEN};
    use faust_types::{CommitMsg, Version};

    fn msg(n: usize) -> UstorMsg {
        UstorMsg::Commit(CommitMsg {
            version: Version::initial(n),
            commit_sig: Signature::garbage(),
            proof_sig: Signature::garbage(),
        })
    }

    #[test]
    fn loopback_roundtrip_and_close() {
        let mut server = ReactorTransport::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let c0 = connect(addr, ClientId::new(0)).unwrap();
        let c1 = connect(addr, ClientId::new(1)).unwrap();

        c0.send(&msg(2)).unwrap();
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected a message");
        };
        assert_eq!(from, ClientId::new(0));

        c1.send(&msg(2)).unwrap();
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected a message");
        };
        assert_eq!(from, ClientId::new(1));
        server.send(ClientId::new(1), msg(2));
        assert!(c1.recv().is_ok());

        drop(c0);
        drop(c1);
        assert!(matches!(server.recv(), Incoming::Closed));
        assert_eq!(server.stats().accepted, 2);
        assert_eq!(server.stats().departed, 2);
        assert_eq!(server.buffered_bytes(), 0);
    }

    #[test]
    fn send_batch_coalesces_but_delivers_every_frame_in_order() {
        let mut server = ReactorTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let c0 = connect(addr, ClientId::new(0)).unwrap();
        c0.send(&msg(1)).unwrap();
        let Incoming::Msg(_, _) = server.recv() else {
            panic!("expected a message");
        };
        let batch: Vec<UstorMsg> = (0..5).map(|_| msg(1)).collect();
        server.send_batch(ClientId::new(0), batch);
        for _ in 0..5 {
            assert!(matches!(c0.recv(), Ok(UstorMsg::Commit(_))));
        }
        assert_eq!(server.stats().frames_out, 5);
        // The whole batch went out in one coalesced write.
        assert_eq!(server.stats().socket_writes, 1);
        drop(c0);
        assert!(matches!(server.recv(), Incoming::Closed));
    }

    #[test]
    fn recv_deadline_times_out_then_still_delivers() {
        let mut server = ReactorTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let c0 = connect(addr, ClientId::new(0)).unwrap();
        let deadline = Instant::now() + Duration::from_millis(20);
        assert!(matches!(server.recv_deadline(deadline), Incoming::TimedOut));
        c0.send(&msg(1)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        assert!(matches!(server.recv_deadline(deadline), Incoming::Msg(..)));
        drop(c0);
        assert!(matches!(server.recv(), Incoming::Closed));
    }

    #[test]
    fn bad_hello_is_rejected_but_good_clients_proceed() {
        let mut server = ReactorTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let bogus = connect(addr, ClientId::new(9)).unwrap();
        let good = connect(addr, ClientId::new(0)).unwrap();
        good.send(&msg(1)).unwrap();
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected a message");
        };
        assert_eq!(from, ClientId::new(0));
        drop(bogus);
        drop(good);
        assert!(matches!(server.recv(), Incoming::Closed));
        assert_eq!(server.stats().bad_hellos, 1);
    }

    #[test]
    fn reconnecting_client_cannot_consume_another_clients_slot() {
        let mut server = ReactorTransport::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();

        let c0 = connect(addr, ClientId::new(0)).unwrap();
        c0.send(&msg(2)).unwrap();
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected a message");
        };
        assert_eq!(from, ClientId::new(0));
        drop(c0);

        let again = connect(addr, ClientId::new(0)).unwrap();

        let c1 = connect(addr, ClientId::new(1)).unwrap();
        c1.send(&msg(2)).unwrap();
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected client 1's message; transport closed early");
        };
        assert_eq!(from, ClientId::new(1));

        drop(again);
        drop(c1);
        assert!(matches!(server.recv(), Incoming::Closed));
        assert_eq!(server.stats().duplicate_clients, 1);
    }

    #[test]
    fn byte_at_a_time_frames_still_decode() {
        let mut server = ReactorTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        // A slow-loris-shaped honest client: HELLO then one frame,
        // dribbled a byte per write.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &ClientId::new(0)).unwrap();
        write_frame(&mut bytes, &msg(1)).unwrap();
        let handle = std::thread::spawn(move || {
            for b in bytes {
                stream.write_all(&[b]).unwrap();
                stream.flush().unwrap();
            }
            stream
        });
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected the dribbled message");
        };
        assert_eq!(from, ClientId::new(0));
        drop(handle.join().unwrap());
        assert!(matches!(server.recv(), Incoming::Closed));
    }

    #[test]
    fn shed_over_capacity_refuses_but_serves_admitted() {
        let cfg = ReactorConfig {
            max_conns: 1,
            ..ReactorConfig::default()
        };
        let mut server = ReactorTransport::bind_with("127.0.0.1:0", 1, cfg).unwrap();
        let addr = server.local_addr();
        let admitted = connect(addr, ClientId::new(0)).unwrap();
        admitted.send(&msg(1)).unwrap();
        let Incoming::Msg(_, _) = server.recv() else {
            panic!("expected the admitted client's message");
        };
        // Beyond the cap: the extra connection is shed at accept.
        let mut extra = std::net::TcpStream::connect(addr).unwrap();
        // Pump the reactor so the accept+shed happens.
        while server.stats().shed() == 0 {
            let _ = server.recv_deadline(Instant::now() + Duration::from_millis(20));
        }
        assert_eq!(server.stats().shed_over_capacity, 1);
        // The shed peer observes EOF, not a hang.
        let mut buf = [0u8; 1];
        extra
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(extra.read(&mut buf).unwrap(), 0);
        // The admitted client is still served.
        server.send(ClientId::new(0), msg(1));
        assert!(admitted.recv().is_ok());
        drop(admitted);
        assert!(matches!(server.recv(), Incoming::Closed));
    }

    #[test]
    fn malformed_frame_excises_only_the_offender() {
        let mut server = ReactorTransport::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let good = connect(addr, ClientId::new(0)).unwrap();
        good.send(&msg(2)).unwrap();
        let Incoming::Msg(_, _) = server.recv() else {
            panic!("expected good client's message");
        };
        // A registered client that then sends an oversized header.
        let mut evil = std::net::TcpStream::connect(addr).unwrap();
        write_frame(&mut evil, &ClientId::new(1)).unwrap();
        evil.write_all(&u32::MAX.to_be_bytes()).unwrap();
        while server.stats().malformed == 0 {
            let _ = server.recv_deadline(Instant::now() + Duration::from_millis(20));
        }
        assert_eq!(
            server.recent_disconnects().last(),
            Some(&(Some(ClientId::new(1)), DisconnectReason::Malformed))
        );
        // The honest client still gets replies.
        server.send(ClientId::new(0), msg(2));
        assert!(good.recv().is_ok());
        drop(good);
        assert!(matches!(server.recv(), Incoming::Closed));
    }

    #[test]
    fn oversized_pre_hello_claim_is_rejected_without_buffering() {
        let mut server = ReactorTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let mut evil = std::net::TcpStream::connect(addr).unwrap();
        // A frame header claiming the maximum frame length, then a slab
        // of payload: without the pre-HELLO ingress cap the reactor
        // would buffer toward 16 MiB per connection waiting for the
        // HELLO decode, outside all per-client accounting.
        evil.write_all(&MAX_FRAME_LEN.to_be_bytes()).unwrap();
        evil.write_all(&[0u8; 1024]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().bad_hellos == 0 {
            assert!(Instant::now() < deadline, "oversized HELLO never rejected");
            let _ = server.recv_deadline(Instant::now() + Duration::from_millis(20));
        }
        assert_eq!(server.buffered_bytes(), 0);
        // Nowhere near the 16 MiB the header claimed.
        assert!(server.stats().peak_buffered_bytes < 64 * 1024);
    }

    #[test]
    fn hangup_while_paused_is_excised_not_spun_on() {
        let cfg = ReactorConfig {
            ingress_queue_msgs: 1,
            ..ReactorConfig::default()
        };
        let mut server = ReactorTransport::bind_with("127.0.0.1:0", 1, cfg).unwrap();
        let addr = server.local_addr();
        // Raw stream, no reader thread: the reply sent below stays unread
        // in this socket's kernel buffer.
        let mut c0 = std::net::TcpStream::connect(addr).unwrap();
        write_frame(&mut c0, &ClientId::new(0)).unwrap();
        for _ in 0..3 {
            write_frame(&mut c0, &msg(1)).unwrap();
        }
        // Pump without popping until backpressure clears read interest.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().read_pauses == 0 {
            assert!(Instant::now() < deadline, "backpressure never engaged");
            server.pump(Some(Duration::from_millis(10))).unwrap();
        }
        // Leave unread data in the client's kernel buffer so its close
        // turns into an RST — the OS then reports ERR/HUP even though
        // the paused connection's interest mask is empty.
        server.send(ClientId::new(0), msg(1));
        drop(c0);
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().departed == 0 {
            assert!(
                Instant::now() < deadline,
                "paused connection never excised on hangup"
            );
            server.pump(Some(Duration::from_millis(10))).unwrap();
        }
        // Its already-queued messages still deliver, then the transport
        // closes instead of waiting on the dead connection forever.
        let mut delivered = 0;
        loop {
            match server.recv() {
                Incoming::Msg(from, _) => {
                    assert_eq!(from, ClientId::new(0));
                    delivered += 1;
                }
                Incoming::Closed => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(delivered >= 1);
    }

    #[test]
    fn egress_drain_releases_globally_paused_connections() {
        let cfg = ReactorConfig {
            max_buffered_bytes: 64 * 1024,
            max_egress_bytes: 256 << 20,
            ..ReactorConfig::default()
        };
        let mut server = ReactorTransport::bind_with("127.0.0.1:0", 2, cfg).unwrap();
        let addr = server.local_addr();
        let c0 = connect(addr, ClientId::new(0)).unwrap();
        let c1 = connect(addr, ClientId::new(1)).unwrap();
        c0.send(&msg(2)).unwrap();
        c1.send(&msg(2)).unwrap();
        for _ in 0..2 {
            assert!(matches!(server.recv(), Incoming::Msg(..)));
        }
        // c0 stops reading: once the kernel buffers fill, frames pile up
        // as pending egress until the global budget is blown.
        let mut sent = 0usize;
        while server.buffered_bytes() < 64 * 1024 {
            let batch: Vec<UstorMsg> = (0..256).map(|_| msg(2)).collect();
            sent += batch.len();
            server.send_batch(ClientId::new(0), batch);
            assert!(sent < 2_000_000, "kernel buffers never filled");
        }
        // c1's next message arrives while the budget is blown: its
        // readable event parks it as globally paused instead of reading.
        c1.send(&msg(2)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().global_pauses == 0 {
            assert!(Instant::now() < deadline, "global pause never engaged");
            let _ = server.recv_deadline(Instant::now() + Duration::from_millis(20));
        }
        // Drain c0 from another thread. All budget now frees via
        // writable-event egress flushes inside `pump` — nothing is
        // enqueued or popped — so only pump's own release check can
        // resume c1 and let its message (and this recv) complete.
        let drainer = std::thread::spawn(move || {
            for _ in 0..sent {
                c0.recv().unwrap();
            }
            c0
        });
        let got = server.recv_deadline(Instant::now() + Duration::from_secs(30));
        let Incoming::Msg(from, _) = got else {
            panic!("globally paused connection was never resumed: {got:?}");
        };
        assert_eq!(from, ClientId::new(1));
        // Finish flushing so the drainer's remaining reads are all
        // satisfiable from kernel buffers, then wind down.
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.buffered_bytes() > 0 {
            assert!(Instant::now() < deadline, "egress never fully drained");
            let _ = server.recv_deadline(Instant::now() + Duration::from_millis(20));
        }
        let c0 = drainer.join().unwrap();
        drop(c0);
        drop(c1);
        assert!(matches!(server.recv(), Incoming::Closed));
        assert_eq!(server.buffered_bytes(), 0);
        assert!(server.stats().slow_consumers == 0);
    }

    #[test]
    fn stats_merge_adds_counters_and_maxes_peaks() {
        let mut a = ReactorStats {
            accepted: 2,
            peak_conns: 5,
            peak_buffered_bytes: 100,
            ..ReactorStats::default()
        };
        let b = ReactorStats {
            accepted: 3,
            peak_conns: 4,
            peak_buffered_bytes: 200,
            ..ReactorStats::default()
        };
        a.merge(&b);
        assert_eq!(a.accepted, 5);
        assert_eq!(a.peak_conns, 5);
        assert_eq!(a.peak_buffered_bytes, 200);
        let m = ReactorStats::merged([&a, &b]);
        assert_eq!(m.accepted, 8);
    }
}
