//! Property-based tests for the protocol data model: the version order of
//! Definition 7 is a genuine partial order, wire encodings round-trip, and
//! the stream framing survives arbitrary chunk boundaries.
//!
//! Property-style without an external framework: every case derives from a
//! seeded [`SmallRng`], so a failure reproduces exactly from its case
//! number.

use faust_crypto::{sha256, Digest};
use faust_sim::SmallRng;
use faust_types::frame::{frame_bytes, FrameDecoder};
use faust_types::{
    ClientId, CommitMsg, DigestVec, InvocationTuple, OpKind, ReadReply, ReplyMsg, SignedVersion,
    SubmitMsg, TimestampVec, UstorMsg, Value, Version, VersionCmp, Wire,
};

const N: usize = 4;
const CASES: u64 = 256;

fn arb_digest(rng: &mut SmallRng) -> Option<Digest> {
    // A small pool of digests so that equal-timestamp entries sometimes
    // have equal and sometimes different digests.
    if rng.gen_bool(0.3) {
        None
    } else {
        Some(sha256(&[rng.gen_index(6) as u8]))
    }
}

/// Versions shaped like the ones the protocol actually commits: a digest
/// entry is `⊥` exactly when the timestamp entry is 0 (no operation of
/// that client reflected yet).
fn arb_version(rng: &mut SmallRng) -> Version {
    let v: Vec<u64> = (0..N).map(|_| rng.gen_range_inclusive(0, 3)).collect();
    let m: Vec<Option<Digest>> = v
        .iter()
        .map(|&t| {
            if t == 0 {
                None
            } else {
                arb_digest(rng).or(Some(sha256(b"fill")))
            }
        })
        .collect();
    Version::new(TimestampVec::from_vec(v), DigestVec::from_vec(m))
}

fn arb_sig(rng: &mut SmallRng) -> faust_crypto::Signature {
    let digest = sha256(&[rng.gen_index(16) as u8]).into_bytes();
    if rng.gen_bool(0.5) {
        faust_crypto::Signature::Mac(digest)
    } else {
        let mut raw = [0u8; 64];
        raw[..32].copy_from_slice(&digest);
        raw[32..].copy_from_slice(&digest);
        faust_crypto::Signature::Ed25519(raw)
    }
}

fn arb_value(rng: &mut SmallRng) -> Value {
    let len = rng.gen_index(64);
    Value::new((0..len).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>())
}

fn arb_kind(rng: &mut SmallRng) -> OpKind {
    if rng.gen_bool(0.5) {
        OpKind::Read
    } else {
        OpKind::Write
    }
}

fn arb_tuple(rng: &mut SmallRng) -> InvocationTuple {
    InvocationTuple {
        client: ClientId::new(rng.gen_index(N) as u32),
        kind: arb_kind(rng),
        register: ClientId::new(rng.gen_index(N) as u32),
        sig: arb_sig(rng),
    }
}

fn arb_signed_version(rng: &mut SmallRng) -> SignedVersion {
    SignedVersion {
        version: arb_version(rng),
        sig: rng.gen_bool(0.5).then(|| arb_sig(rng)),
    }
}

fn arb_submit(rng: &mut SmallRng) -> SubmitMsg {
    SubmitMsg {
        timestamp: rng.gen_range_inclusive(0, 999),
        tuple: arb_tuple(rng),
        value: rng.gen_bool(0.5).then(|| arb_value(rng)),
        data_sig: arb_sig(rng),
        piggyback: rng.gen_bool(0.4).then(|| CommitMsg {
            version: arb_version(rng),
            commit_sig: arb_sig(rng),
            proof_sig: arb_sig(rng),
        }),
    }
}

fn arb_reply(rng: &mut SmallRng) -> ReplyMsg {
    ReplyMsg {
        last_committer: ClientId::new(rng.gen_index(N) as u32),
        commit_version: arb_signed_version(rng),
        read: rng.gen_bool(0.5).then(|| ReadReply {
            writer_version: arb_signed_version(rng),
            mem_timestamp: rng.gen_range_inclusive(0, 99),
            mem_value: rng.gen_bool(0.5).then(|| arb_value(rng)),
            mem_data_sig: rng.gen_bool(0.5).then(|| arb_sig(rng)),
        }),
        pending: {
            let len = rng.gen_index(4);
            (0..len).map(|_| arb_tuple(rng)).collect()
        },
        proofs: (0..N)
            .map(|_| rng.gen_bool(0.5).then(|| arb_sig(rng)))
            .collect(),
    }
}

fn arb_msg(rng: &mut SmallRng) -> UstorMsg {
    match rng.gen_index(3) {
        0 => UstorMsg::Submit(arb_submit(rng)),
        1 => UstorMsg::Reply(arb_reply(rng)),
        _ => UstorMsg::Commit(CommitMsg {
            version: arb_version(rng),
            commit_sig: arb_sig(rng),
            proof_sig: arb_sig(rng),
        }),
    }
}

/// Runs `CASES` seeded cases through `f`.
fn for_cases(label: &str, mut f: impl FnMut(&mut SmallRng)) {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case.wrapping_mul(0x9E37) ^ 0xFA57);
        f(&mut rng);
        let _ = (label, case); // labels appear in panics via closures
    }
}

#[test]
fn version_le_is_reflexive() {
    for_cases("reflexive", |rng| {
        let v = arb_version(rng);
        assert!(v.le(&v));
        assert_eq!(v.compare(&v), VersionCmp::Equal);
    });
}

#[test]
fn version_le_is_antisymmetric() {
    for_cases("antisymmetric", |rng| {
        let (a, b) = (arb_version(rng), arb_version(rng));
        if a.le(&b) && b.le(&a) {
            assert_eq!(a, b);
        }
    });
}

#[test]
fn version_le_is_transitive() {
    for_cases("transitive", |rng| {
        let (a, b, c) = (arb_version(rng), arb_version(rng), arb_version(rng));
        if a.le(&b) && b.le(&c) {
            assert!(a.le(&c));
        }
    });
}

#[test]
fn version_compare_is_consistent_with_le() {
    for_cases("compare", |rng| {
        let (a, b) = (arb_version(rng), arb_version(rng));
        match a.compare(&b) {
            VersionCmp::Equal => assert!(a.le(&b) && b.le(&a)),
            VersionCmp::Less => assert!(a.le(&b) && !b.le(&a)),
            VersionCmp::Greater => assert!(!a.le(&b) && b.le(&a)),
            VersionCmp::Incomparable => assert!(!a.le(&b) && !b.le(&a)),
        }
    });
}

#[test]
fn version_le_implies_pointwise_le() {
    for_cases("pointwise", |rng| {
        let (a, b) = (arb_version(rng), arb_version(rng));
        if a.le(&b) {
            assert!(a.v().le(b.v()));
        }
    });
}

#[test]
fn initial_version_below_everything() {
    for_cases("initial", |rng| {
        let v = arb_version(rng);
        assert!(Version::initial(N).le(&v));
    });
}

#[test]
fn signing_bytes_injective_on_samples() {
    for_cases("signing-bytes", |rng| {
        let (a, b) = (arb_version(rng), arb_version(rng));
        if a != b {
            assert_ne!(a.signing_bytes(), b.signing_bytes());
        }
    });
}

#[test]
fn submit_roundtrips() {
    for_cases("submit", |rng| {
        let m = arb_submit(rng);
        assert_eq!(SubmitMsg::decode(&m.encode()), Ok(m));
    });
}

#[test]
fn reply_roundtrips() {
    for_cases("reply", |rng| {
        let m = arb_reply(rng);
        assert_eq!(ReplyMsg::decode(&m.encode()), Ok(m));
    });
}

#[test]
fn commit_roundtrips() {
    for_cases("commit", |rng| {
        let m = CommitMsg {
            version: arb_version(rng),
            commit_sig: arb_sig(rng),
            proof_sig: arb_sig(rng),
        };
        assert_eq!(CommitMsg::decode(&m.encode()), Ok(m));
    });
}

#[test]
fn enum_roundtrips() {
    for_cases("enum", |rng| {
        let m = arb_msg(rng);
        assert_eq!(UstorMsg::decode(&m.encode()), Ok(m));
    });
}

#[test]
fn decode_never_panics_on_junk() {
    for_cases("junk", |rng| {
        let len = rng.gen_index(256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = UstorMsg::decode(&bytes);
        let _ = ReplyMsg::decode(&bytes);
        let _ = SubmitMsg::decode(&bytes);
        let _ = CommitMsg::decode(&bytes);
    });
}

#[test]
fn encoded_len_matches_encode() {
    for_cases("encoded-len", |rng| {
        let m = arb_reply(rng);
        assert_eq!(m.encoded_len(), m.encode().len());
    });
}

/// Stream-framing property: any sequence of messages framed back to back
/// and split at arbitrary byte boundaries decodes to the same sequence.
#[test]
fn framed_streams_roundtrip_across_arbitrary_splits() {
    for_cases("framing", |rng| {
        let msgs: Vec<UstorMsg> = (0..1 + rng.gen_index(5)).map(|_| arb_msg(rng)).collect();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&frame_bytes(m));
        }
        // Split the byte stream into random chunks (including empties).
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let chunk = 1 + rng.gen_index(17.min(stream.len() - pos));
            decoder.extend(&stream[pos..pos + chunk]);
            pos += chunk;
            while let Some(m) = decoder.next_frame::<UstorMsg>().expect("valid stream") {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, msgs);
        assert_eq!(decoder.pending_bytes(), 0);
    });
}
