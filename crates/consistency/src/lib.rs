//! History recording and consistency checkers for the FAUST reproduction.
//!
//! The paper's guarantees are stated as properties of execution histories:
//! linearizability and wait-freedom with a correct server, causal
//! consistency always, and weak fork-linearizability under a Byzantine
//! server (Definitions 2–6). This crate turns each of those definitions
//! into a decision procedure over the [`faust_types::History`] recorded by
//! the simulation drivers:
//!
//! * [`check_linearizability`] / [`find_linearization`] — Definition 2;
//! * [`check_causal_consistency`] — Definition 3 (potential causality of
//!   Lamport/Hutto-Ahamad, via the reads-from relation);
//! * [`check_fork_linearizability`] — fork-linearizability with the
//!   no-join condition (Mazières-Shasha);
//! * [`check_fork_star_linearizability`] — fork-*-linearizability
//!   (Li-Mazières, adapted per Section 4): full real-time order and
//!   at-most-one-join, but no causality — incomparable with weak
//!   fork-linearizability, demonstrated in both directions;
//! * [`check_weak_fork_linearizability`] — Definition 6: causally closed
//!   views, *weak* real-time order (each client's last operation exempt),
//!   and at-most-one-join;
//! * [`check_wait_freedom`] — Definition 4.
//!
//! The checkers perform budgeted exhaustive search (histories are capped
//! at 64 operations) and return [`Verdict::Unknown`] rather than a wrong
//! answer when the budget runs out.
//!
//! For whole session histories — far beyond the search budget — the
//! offline auditor uses [`certify_linearizable`] ([`audit`] module):
//! dbcop-style constraint saturation that decides linearizability in
//! near-linear time when written values are unique, falling back to the
//! budgeted search only on the small residue it cannot settle.
//!
//! # Example
//!
//! ```
//! use faust_consistency::{check_linearizability, Budget, Verdict};
//! use faust_types::{ClientId, History, Value};
//!
//! let mut h = History::new();
//! let w = h.begin_write(ClientId::new(0), Value::from("x"), 0);
//! h.complete_write(w, 1, None);
//! let r = h.begin_read(ClientId::new(1), ClientId::new(0), 2);
//! h.complete_read(r, 3, Some(Value::from("x")), None);
//! assert_eq!(check_linearizability(&h, &Budget::default()), Verdict::Satisfied);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod checkers;
pub mod order;
pub mod spec;
pub mod views;

pub use audit::{certify_linearizable, CertifyOutcome};
pub use checkers::{
    check_causal_consistency, check_fork_linearizability, check_fork_sequential_consistency,
    check_fork_star_linearizability, check_linearizability, check_wait_freedom,
    check_weak_fork_linearizability, find_linearization, Budget, Verdict,
};
pub use order::{compute_orders, Orders, Relation, MAX_OPS};
pub use spec::{check_sequence, RegisterSim, SpecError};
