//! HMAC-SHA256 (RFC 2104), built on the from-scratch [`mod@crate::sha256`]
//! implementation and verified against the RFC 4231 test vectors.

use crate::sha256::{Digest, Sha256};

const BLOCK_LEN: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte SHA-256 block are first hashed, per RFC
/// 2104; shorter keys are zero-padded.
///
/// # Example
///
/// ```
/// use faust_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     tag.to_hex(),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA256 computation.
///
/// # Example
///
/// ```
/// use faust_crypto::hmac::{hmac_sha256, HmacSha256};
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"part one, ");
/// mac.update(b"part two");
/// assert_eq!(mac.finalize(), hmac_sha256(b"key", b"part one, part two"));
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// The key XORed with OPAD, kept for the outer hash at finalization.
    opad_key: [u8; BLOCK_LEN],
}

impl std::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacSha256").finish_non_exhaustive()
    }
}

/// Derives the padded key block per RFC 2104 (hash long keys, zero-pad
/// short ones).
fn block_key(key: &[u8]) -> [u8; BLOCK_LEN] {
    let mut block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let hashed = crate::sha256::sha256(key);
        block[..hashed.as_bytes().len()].copy_from_slice(hashed.as_bytes());
    } else {
        block[..key.len()].copy_from_slice(key);
    }
    block
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let block_key = block_key(key);
        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = block_key[i] ^ IPAD;
            opad_key[i] = block_key[i] ^ OPAD;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, message: &[u8]) {
        self.inner.update(message);
    }

    /// Completes the MAC computation and returns the tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

/// A keyed HMAC-SHA256 state with both pad blocks pre-absorbed.
///
/// [`HmacSha256::new`] spends two SHA-256 compression runs per MAC on the
/// key schedule: absorbing the 64-byte `ipad` block and, at finalization,
/// the 64-byte `opad` block. When many MACs are computed under the *same*
/// key — the server engine verifying a batch of SUBMIT signatures — those
/// runs can be paid once and cloned. For the short messages the protocol
/// signs (~50–130 bytes), this roughly halves the per-MAC cost, which is
/// what makes batched ingress verification measurably faster than
/// per-message verification.
///
/// # Example
///
/// ```
/// use faust_crypto::hmac::{hmac_sha256, PreparedHmac};
/// let prepared = PreparedHmac::new(b"key");
/// assert_eq!(prepared.mac(&[b"msg"]), hmac_sha256(b"key", b"msg"));
/// ```
#[derive(Clone)]
pub struct PreparedHmac {
    /// SHA-256 state after absorbing `key ⊕ ipad`.
    inner: Sha256,
    /// SHA-256 state after absorbing `key ⊕ opad`.
    outer: Sha256,
}

impl std::fmt::Debug for PreparedHmac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedHmac").finish_non_exhaustive()
    }
}

impl PreparedHmac {
    /// Precomputes the keyed midstates for `key`.
    pub fn new(key: &[u8]) -> Self {
        let block_key = block_key(key);
        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = block_key[i] ^ IPAD;
            opad_key[i] = block_key[i] ^ OPAD;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        let mut outer = Sha256::new();
        outer.update(&opad_key);
        PreparedHmac { inner, outer }
    }

    /// Computes the MAC of the concatenation of `parts` (avoids the caller
    /// allocating a joined buffer).
    pub fn mac(&self, parts: &[&[u8]]) -> Digest {
        let mut inner = self.inner.clone();
        for part in parts {
            inner.update(part);
        }
        let inner_digest = inner.finalize();
        let mut outer = self.outer.clone();
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

/// Compares two digests in constant time.
///
/// Ordinary `==` on byte arrays short-circuits, leaking the position of the
/// first mismatch through timing. Verifiers use this instead.
pub fn constant_time_eq(a: &Digest, b: &Digest) -> bool {
    let mut acc = 0u8;
    for (x, y) in a.as_bytes().iter().zip(b.as_bytes()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(key: &[u8], data: &[u8], expect_hex: &str) {
        assert_eq!(hmac_sha256(key, data).to_hex(), expect_hex);
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        check(
            &[0x0b; 20],
            b"Hi There",
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        );
    }

    /// RFC 4231 test case 2 (short key).
    #[test]
    fn rfc4231_case_2() {
        check(
            b"Jefe",
            b"what do ya want for nothing?",
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        );
    }

    /// RFC 4231 test case 3 (50 bytes of 0xdd).
    #[test]
    fn rfc4231_case_3() {
        check(
            &[0xaa; 20],
            &[0xdd; 50],
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        );
    }

    /// RFC 4231 test case 4 (incrementing key, 50 bytes of 0xcd).
    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1..=25).collect();
        check(
            &key,
            &[0xcd; 50],
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
        );
    }

    /// RFC 4231 test case 6 (key longer than block size).
    #[test]
    fn rfc4231_case_6() {
        check(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        );
    }

    /// RFC 4231 test case 7 (large key and large data).
    #[test]
    fn rfc4231_case_7() {
        check(
            &[0xaa; 131],
            b"This is a test using a larger than block-size key and a larger \
than block-size data. The key needs to be hashed before being used by the HMAC algorithm.",
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let key = b"incremental key";
        let msg: Vec<u8> = (0..500u16).map(|i| (i % 251) as u8).collect();
        let expect = hmac_sha256(key, &msg);
        for split in [0, 1, 64, 65, 250, 499, 500] {
            let mut mac = HmacSha256::new(key);
            mac.update(&msg[..split]);
            mac.update(&msg[split..]);
            assert_eq!(mac.finalize(), expect, "mismatch at split {split}");
        }
    }

    #[test]
    fn different_keys_different_tags() {
        let a = hmac_sha256(b"key-a", b"msg");
        let b = hmac_sha256(b"key-b", b"msg");
        assert_ne!(a, b);
    }

    #[test]
    fn constant_time_eq_agrees_with_eq() {
        let a = hmac_sha256(b"k", b"m1");
        let b = hmac_sha256(b"k", b"m2");
        assert!(constant_time_eq(&a, &a));
        assert!(!constant_time_eq(&a, &b));
    }
}

#[cfg(test)]
mod prepared_tests {
    use super::*;

    #[test]
    fn prepared_matches_one_shot() {
        let keys: [&[u8]; 3] = [b"short", &[0xAA; 64], &[0xBB; 131]];
        for key in keys {
            let prepared = PreparedHmac::new(key);
            for msg_len in [0usize, 1, 55, 56, 63, 64, 65, 200] {
                let msg: Vec<u8> = (0..msg_len).map(|i| i as u8).collect();
                assert_eq!(
                    prepared.mac(&[&msg]),
                    hmac_sha256(key, &msg),
                    "key len {} msg len {msg_len}",
                    key.len()
                );
            }
        }
    }

    #[test]
    fn prepared_concatenates_parts() {
        let prepared = PreparedHmac::new(b"key");
        assert_eq!(
            prepared.mac(&[b"part one, ", b"part two"]),
            hmac_sha256(b"key", b"part one, part two")
        );
        assert_eq!(prepared.mac(&[]), hmac_sha256(b"key", b""));
    }
}
