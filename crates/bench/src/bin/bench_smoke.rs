//! CI bench smoke: a quick-mode pass over one representative metric per
//! subsystem (wire codec, crypto, protocol engine, persistence), emitted
//! as JSON so the CI `bench-smoke` job can archive a perf trajectory
//! point per commit.
//!
//! Quick mode trades precision for wall time (seconds, not minutes);
//! the numbers are for *trend* plots, not for the README's tables —
//! regenerate those with the full benches.
//!
//! Usage: `cargo run -p faust-bench --bin bench_smoke --release -- [--json PATH]`

use faust_bench::timing::{bench_quiet_with, Measurement, TimingConfig};
use faust_crypto::sha256::sha256;
use faust_crypto::sig::{KeySet, SigContext, Signer};
use faust_store::codec::LogRecord;
use faust_store::log::Wal;
use faust_store::testutil::{self, run_op};
use faust_store::{Durability, PersistentServer, StoreConfig};
use faust_types::{ClientId, UstorMsg, Value, Wire};
use faust_ustor::{Server, ServerEngine, UstorClient, UstorServer};
use std::io::Write as _;
use std::time::Instant;

fn clients(n: usize) -> Vec<UstorClient> {
    testutil::clients(n, b"bench-smoke")
}

/// One data point of the smoke report.
struct Point {
    name: &'static str,
    ns_per_iter: f64,
    per_second: f64,
}

impl From<(&'static str, Measurement)> for Point {
    fn from((name, m): (&'static str, Measurement)) -> Self {
        Point {
            name,
            ns_per_iter: m.ns_per_iter,
            per_second: m.per_second(),
        }
    }
}

fn collect(quick: TimingConfig) -> Vec<Point> {
    let mut points: Vec<Point> = Vec::new();
    let mut add = |name: &'static str, m: Measurement| {
        println!(
            "{name:<44} {:>12.1} ns/iter {:>14.0} iter/s",
            m.ns_per_iter,
            m.per_second()
        );
        points.push(Point::from((name, m)));
    };

    // Wire codec: a REPLY for 8 clients, encode and decode.
    let mut cs = clients(8);
    let mut server = UstorServer::new(8);
    for i in 0..8usize {
        let submit = cs[i].begin_write(Value::unique(i as u32, 0)).unwrap();
        run_op(&mut server, &mut cs[i], submit);
    }
    let submit = cs[0].begin_read(ClientId::new(1)).unwrap();
    let (_, reply) = server.on_submit(ClientId::new(0), submit).pop().unwrap();
    let reply = UstorMsg::Reply(reply);
    let encoded = reply.encode();
    add(
        "wire: encode REPLY (n=8, read)",
        bench_quiet_with(quick, "", || {
            std::hint::black_box(reply.encode());
        }),
    );
    add(
        "wire: decode REPLY (n=8, read)",
        bench_quiet_with(quick, "", || {
            std::hint::black_box(UstorMsg::decode(&encoded).expect("valid"));
        }),
    );

    // Crypto: the store's checksum primitive and the HMAC hot path.
    let kib = vec![0xA5u8; 1024];
    add(
        "crypto: sha256 (1 KiB)",
        bench_quiet_with(quick, "", || {
            std::hint::black_box(sha256(&kib));
        }),
    );
    let keys = KeySet::generate(1, b"bench-smoke-sign");
    let keypair = keys.keypair(0).unwrap().clone();
    let msg = vec![0x5Au8; 64];
    add(
        "crypto: hmac sign (64 B)",
        bench_quiet_with(quick, "", || {
            std::hint::black_box(keypair.sign(SigContext::Submit, &msg));
        }),
    );

    // Protocol: one full write op through the transport-agnostic engine.
    let mut engine_cs = clients(1);
    let mut engine = ServerEngine::new(1, Box::new(UstorServer::new(1)));
    add(
        "engine: write op (submit+commit, n=1)",
        bench_quiet_with(quick, "", || {
            let submit = engine_cs[0].begin_write(Value::from("x")).unwrap();
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(submit));
            engine.process_all();
            let (_, UstorMsg::Reply(reply)) = engine.poll_output().expect("reply") else {
                panic!("expected reply");
            };
            let (commit, _) = engine_cs[0].handle_reply(reply).expect("correct");
            engine.enqueue(
                ClientId::new(0),
                UstorMsg::Commit(commit.expect("immediate")),
            );
            engine.process_all();
        }),
    );

    // Store: raw append, logged op, and a 2k-record recovery.
    let no_sync = StoreConfig {
        durability: Durability::Never,
        snapshot_every: 0,
    };
    let dir = testutil::scratch_dir("smoke-append");
    let mut wal = Wal::create(&dir, 1, 0, false).expect("create");
    let mut wal_client = clients(1).remove(0);
    let record = LogRecord::Submit {
        from: ClientId::new(0),
        msg: wal_client.begin_write(Value::new(vec![0xA5; 64])).unwrap(),
    };
    add(
        "store: wal append fsync-off (64 B value)",
        bench_quiet_with(quick, "", || {
            wal.append(&record, false).expect("append");
        }),
    );
    drop(wal);
    std::fs::remove_dir_all(&dir).ok();

    let dir = testutil::scratch_dir("smoke-op");
    let mut persistent = PersistentServer::open(&dir, 1, no_sync.clone()).expect("open");
    let mut store_cs = clients(1);
    add(
        "store: logged write op fsync-off",
        bench_quiet_with(quick, "", || {
            let submit = store_cs[0].begin_write(Value::from("x")).unwrap();
            run_op(&mut persistent, &mut store_cs[0], submit);
        }),
    );
    drop(persistent);
    std::fs::remove_dir_all(&dir).ok();

    // Recovery: not an iteration bench — one timed scan+replay of a
    // 2000-record log, best of 3.
    let dir = testutil::scratch_dir("smoke-recover");
    {
        let mut server = PersistentServer::open(&dir, 2, no_sync.clone()).expect("open");
        let mut cs = clients(2);
        let mut round = 0u64;
        while server.next_seq() < 2_000 {
            let i = (round % 2) as usize;
            let submit = cs[i].begin_write(Value::unique(i as u32, round)).unwrap();
            run_op(&mut server, &mut cs[i], submit);
            round += 1;
        }
    }
    let mut best = f64::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let server = PersistentServer::recover(&dir, 2, no_sync.clone()).expect("recover");
        assert_eq!(server.next_seq(), 2_000);
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "{:<44} {:>12.1} ns/iter {:>14.0} iter/s",
        "store: recover 2000-record log",
        best,
        1e9 / best
    );
    points.push(Point {
        name: "store: recover 2000-record log",
        ns_per_iter: best,
        per_second: 1e9 / best,
    });

    points
}

/// Hand-rolled JSON (names are fixed ASCII literals, so no escaping is
/// needed beyond what the format string provides).
fn to_json(points: &[Point]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"mode\": \"quick\",\n  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"per_second\": {:.1}}}{}\n",
            p.name,
            p.ns_per_iter,
            p.per_second,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut json_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_smoke [--json PATH]");
                std::process::exit(2);
            }
        }
    }

    println!("FAUST bench smoke (quick mode)");
    println!("==============================");
    let points = collect(TimingConfig::quick());
    let json = to_json(&points);
    match json_path {
        Some(path) => {
            let mut file = std::fs::File::create(&path).expect("create json output");
            file.write_all(json.as_bytes()).expect("write json output");
            println!("\nwrote {} results to {path}", points.len());
        }
        None => print!("\n{json}"),
    }
}
