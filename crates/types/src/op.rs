//! Operations, invocation tuples, and the canonical byte strings that get
//! signed.
//!
//! USTOR signs four kinds of statements (Section 5 of the paper). The exact
//! bytes matter — client and server must agree on them, and a Byzantine
//! server must not be able to move a signature from one statement to
//! another — so all of them are built here, in one place:
//!
//! * SUBMIT: `SUBMIT ‖ oc ‖ j ‖ t` over the opcode, target register, and
//!   timestamp ([`submit_signing_bytes`]);
//! * DATA: `DATA ‖ t ‖ x̄` over the timestamp and the hash of the signer's
//!   most recently written value ([`data_signing_bytes`]);
//! * COMMIT: `COMMIT ‖ V ‖ M` over a version
//!   ([`crate::version::Version::signing_bytes`]);
//! * PROOF: `PROOF ‖ M[i]` over the signer's own digest entry
//!   ([`proof_signing_bytes`]).

use crate::ids::{ClientId, Timestamp};
use faust_crypto::sig::Signature;
use faust_crypto::Digest;
use std::fmt;

/// Whether an operation reads or writes a register (the paper's `oc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `read_i(j)` — read register `X_j`.
    Read,
    /// `write_i(x)` — write the caller's own register `X_i`.
    Write,
}

impl OpKind {
    /// Wire/signing tag byte.
    pub fn tag(self) -> u8 {
        match self {
            OpKind::Read => 0,
            OpKind::Write => 1,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpKind::Read => "READ",
            OpKind::Write => "WRITE",
        })
    }
}

/// The paper's invocation tuple `(i, oc, j, σ)`: client `C_i` performs
/// operation `oc` on register `X_j`, with SUBMIT-signature `σ`.
///
/// The server keeps the tuples of submitted-but-uncommitted operations in
/// its list `L` and forwards them in REPLY messages so clients can account
/// for concurrent operations.
#[derive(Clone, PartialEq, Eq)]
pub struct InvocationTuple {
    /// The invoking client `C_i`.
    pub client: ClientId,
    /// Read or write.
    pub kind: OpKind,
    /// The target register `X_j` (equals `client` for writes).
    pub register: ClientId,
    /// SUBMIT-signature `σ` by `client` over `(kind, register, timestamp)`.
    pub sig: Signature,
}

impl fmt::Debug for InvocationTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, X{}, σ)",
            self.client,
            self.kind,
            self.register.index()
        )
    }
}

/// Canonical bytes for the SUBMIT-signature: `SUBMIT ‖ oc ‖ j ‖ t`.
///
/// Signed by the invoking client when submitting; re-verified by every
/// other client when the tuple shows up in a REPLY's pending list, against
/// the timestamp that client *expects* (Algorithm 1 line 43).
pub fn submit_signing_bytes(kind: OpKind, register: ClientId, t: Timestamp) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(b"submit:");
    out.push(kind.tag());
    out.extend_from_slice(&register.as_u32().to_be_bytes());
    out.extend_from_slice(&t.to_be_bytes());
    out
}

/// Canonical bytes for the DATA-signature: `DATA ‖ t ‖ x̄`.
///
/// `value_hash` is the hash of the signer's most recently written value, or
/// `None` if the signer has never written (`x̄ = ⊥`).
pub fn data_signing_bytes(t: Timestamp, value_hash: Option<Digest>) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    out.extend_from_slice(b"data:");
    out.extend_from_slice(&t.to_be_bytes());
    match value_hash {
        None => out.push(0),
        Some(d) => {
            out.push(1);
            out.extend_from_slice(d.as_bytes());
        }
    }
    out
}

/// Canonical bytes for the PROOF-signature: `PROOF ‖ M[i]`.
///
/// `entry` is the signer's own digest-vector entry (`None` = `⊥`, which
/// only occurs before the client's first operation).
pub fn proof_signing_bytes(entry: Option<Digest>) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    out.extend_from_slice(b"proof:");
    match entry {
        None => out.push(0),
        Some(d) => {
            out.push(1);
            out.extend_from_slice(d.as_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::sha256;

    #[test]
    fn submit_bytes_bind_all_fields() {
        let base = submit_signing_bytes(OpKind::Read, ClientId::new(1), 5);
        assert_ne!(
            base,
            submit_signing_bytes(OpKind::Write, ClientId::new(1), 5)
        );
        assert_ne!(
            base,
            submit_signing_bytes(OpKind::Read, ClientId::new(2), 5)
        );
        assert_ne!(
            base,
            submit_signing_bytes(OpKind::Read, ClientId::new(1), 6)
        );
    }

    #[test]
    fn data_bytes_bind_timestamp_and_hash() {
        let h = sha256(b"x");
        let base = data_signing_bytes(3, Some(h));
        assert_ne!(base, data_signing_bytes(4, Some(h)));
        assert_ne!(base, data_signing_bytes(3, None));
        assert_ne!(base, data_signing_bytes(3, Some(sha256(b"y"))));
    }

    #[test]
    fn proof_bytes_distinguish_bottom() {
        assert_ne!(
            proof_signing_bytes(None),
            proof_signing_bytes(Some(sha256(b"m")))
        );
    }

    #[test]
    fn domains_do_not_collide() {
        // Even with adversarially chosen contents, the role prefixes keep
        // the three byte formats disjoint.
        let s = submit_signing_bytes(OpKind::Read, ClientId::new(0), 0);
        let d = data_signing_bytes(0, None);
        let p = proof_signing_bytes(None);
        assert_ne!(s, d);
        assert_ne!(s, p);
        assert_ne!(d, p);
    }

    #[test]
    fn opkind_display() {
        assert_eq!(OpKind::Read.to_string(), "READ");
        assert_eq!(OpKind::Write.to_string(), "WRITE");
    }
}
