//! Umbrella crate for the FAUST reproduction.
//!
//! Re-exports the full protocol stack. See the individual crates for
//! details; start with [`core`] for the fail-aware service and [`ustor`]
//! for the underlying storage protocol.

#![forbid(unsafe_code)]

pub use faust_baseline as baseline;
pub use faust_consistency as consistency;
pub use faust_core as core;
pub use faust_crypto as crypto;
pub use faust_sim as sim;
pub use faust_types as types;
pub use faust_ustor as ustor;
