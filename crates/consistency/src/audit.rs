//! Constrained history certification for the offline auditor.
//!
//! The budgeted checkers in [`crate::checkers`] search permutations and
//! therefore cap histories at [`MAX_OPS`] operations. The
//! auditor replays whole session histories — thousands of operations — so
//! it needs a decision procedure that scales. This module implements the
//! dbcop-style *saturation* approach: derive every ordering constraint
//! that any valid linearization must satisfy, check the constraint graph
//! for cycles, and only fall back to search on the (small) residue the
//! constraints cannot settle.
//!
//! For the paper's SWMR register model with unique written values the
//! constraints are *complete*: reads-from is a function (each read value
//! identifies its writer), writes to one register are totally ordered by
//! the owner's session order, and a read is wedged between the write it
//! observed and the owner's next write. Under those edges **every**
//! topological order of the graph is a valid linearization, so
//! acyclicity alone decides the question in `O(V + E)` — no search.
//!
//! When written values are not unique (the driver never produces this,
//! but the auditor must not trust its input) the module falls back to the
//! budgeted [`check_linearizability`] for
//! small histories and reports [`CertifyOutcome::Unknown`] for large
//! ones, never a wrong answer.

use std::collections::HashMap;

use faust_types::{History, OpId, OpKind, OpOutcome, OpRecord};

use crate::checkers::{check_linearizability, Budget, Verdict};
use crate::order::MAX_OPS;
use crate::spec::check_sequence;

/// Result of certifying a history as linearizable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyOutcome {
    /// The history is linearizable; `order` is a witness linearization
    /// (ids of the scheduled operations, in order).
    Linearizable {
        /// Witness linearization over the certified operations.
        order: Vec<OpId>,
    },
    /// The history is **not** linearizable: the two operations form an
    /// ordering cycle (each must precede the other), or a read returned
    /// a value no write produced.
    Violated {
        /// A pair of operations witnessing the contradiction.
        witness: (OpId, OpId),
        /// Human-readable explanation of the contradiction.
        reason: String,
    },
    /// The procedure could not decide within its structural assumptions
    /// or search budget. Never returned for histories with unique
    /// written values.
    Unknown(String),
}

/// Certifies that `history` is linearizable with respect to the SWMR
/// register spec, using constraint saturation (see module docs).
///
/// Incomplete (pending) operations impose no constraints and are ignored,
/// except for pending *writes* whose value some completed read returned:
/// those must have taken effect and are scheduled like completed writes.
pub fn certify_linearizable(history: &History) -> CertifyOutcome {
    if !history.is_well_formed() {
        return CertifyOutcome::Unknown("history is not well-formed".into());
    }
    if !history.written_values_unique() {
        // Reads-from is ambiguous; saturation does not apply. Small
        // histories go to the exhaustive checker, large ones are
        // undecided (better than a wrong answer).
        if history.len() <= MAX_OPS {
            return match check_linearizability(history, &Budget::default()) {
                Verdict::Satisfied => CertifyOutcome::Linearizable { order: Vec::new() },
                Verdict::Violated(why) => {
                    let id = history.ops().first().map(|op| op.id).unwrap_or(OpId(0));
                    CertifyOutcome::Violated {
                        witness: (id, id),
                        reason: why,
                    }
                }
                Verdict::Unknown(why) => CertifyOutcome::Unknown(why),
            };
        }
        return CertifyOutcome::Unknown(
            "written values are not unique and the history exceeds the search budget".into(),
        );
    }

    let graph = match ConstraintGraph::build(history) {
        Ok(graph) => graph,
        Err(outcome) => return outcome,
    };
    graph.certify()
}

/// The saturation constraint graph: one node per scheduled operation,
/// edges for every ordering any linearization must respect.
struct ConstraintGraph<'a> {
    /// Scheduled operations (completed ops + read-from pending writes).
    nodes: Vec<&'a OpRecord>,
    /// `succ[u]` = nodes that must come after `u`.
    succ: Vec<Vec<usize>>,
}

impl<'a> ConstraintGraph<'a> {
    fn build(history: &'a History) -> Result<Self, CertifyOutcome> {
        // Which pending writes were observed by a completed read? Those
        // took effect and must be scheduled.
        let mut value_writer: HashMap<&[u8], usize> = HashMap::new();
        let mut observed: Vec<bool> = vec![false; history.len()];
        for op in history.ops() {
            if op.kind == OpKind::Read {
                if let OpOutcome::ReadReturned(Some(value)) = &op.outcome {
                    for w in history.ops() {
                        if w.kind == OpKind::Write
                            && w.written.as_ref().map(|v| v.as_bytes()) == Some(value.as_bytes())
                        {
                            observed[w.id.0 as usize] = true;
                        }
                    }
                }
            }
        }

        let mut nodes: Vec<&OpRecord> = Vec::new();
        let mut index_of: HashMap<OpId, usize> = HashMap::new();
        for op in history.ops() {
            let scheduled =
                op.is_complete() || (op.kind == OpKind::Write && observed[op.id.0 as usize]);
            if scheduled {
                index_of.insert(op.id, nodes.len());
                if op.kind == OpKind::Write {
                    if let Some(value) = &op.written {
                        value_writer.insert(value.as_bytes(), nodes.len());
                    }
                }
                nodes.push(op);
            }
        }

        let mut graph = ConstraintGraph {
            succ: vec![Vec::new(); nodes.len()],
            nodes,
        };

        // Per-register write order: SWMR means all writes to register j
        // are by client j, already in that client's session order.
        let mut register_writes: HashMap<u32, Vec<usize>> = HashMap::new();
        for (u, op) in graph.nodes.iter().enumerate() {
            if op.kind == OpKind::Write {
                register_writes
                    .entry(op.register.index() as u32)
                    .or_default()
                    .push(u);
            }
        }

        // Session order: each client's operations are sequential in
        // invocation order (histories are per-client sequential).
        let mut last_of_client: HashMap<u32, usize> = HashMap::new();
        let mut by_invocation: Vec<usize> = (0..graph.nodes.len()).collect();
        by_invocation.sort_by_key(|&u| (graph.nodes[u].invoked_at, graph.nodes[u].id.0));
        for &u in &by_invocation {
            let client = graph.nodes[u].client.index() as u32;
            if let Some(&prev) = last_of_client.get(&client) {
                graph.succ[prev].push(u);
            }
            last_of_client.insert(client, u);
        }

        // Real-time order, transitively reduced. An edge `a -> c` is
        // *required* (not implied) iff `resp(a) < inv(c)` and no
        // completed `b` fits entirely in the gap (`inv(b) > resp(a)` and
        // `resp(b) < inv(c)`). Writing `B` for the completed ops ending
        // before `inv(c)` and `I* = max{inv(b) : b in B}`, that is
        // exactly `{a in B : resp(a) >= I*}` — a frontier that shrinks
        // whenever a later-starting op finishes. Sweeping targets by
        // invocation and absorbing completions by response keeps this
        // O(E_reduced + V log V); implied edges follow by induction on
        // invocation order (the in-gap `b` received `a -> b` earlier and
        // gives `b -> c` here).
        let mut by_resp: Vec<usize> = (0..graph.nodes.len())
            .filter(|&u| graph.nodes[u].responded_at.is_some())
            .collect();
        by_resp.sort_by_key(|&u| graph.nodes[u].responded_at.unwrap());
        let mut next_done = 0usize;
        let mut frontier: Vec<usize> = Vec::new();
        let mut istar: Option<u64> = None;
        for &c in &by_invocation {
            let inv = graph.nodes[c].invoked_at;
            while next_done < by_resp.len()
                && graph.nodes[by_resp[next_done]].responded_at.unwrap() < inv
            {
                let b = by_resp[next_done];
                next_done += 1;
                let ib = graph.nodes[b].invoked_at;
                if istar.is_none_or(|i| ib > i) {
                    istar = Some(ib);
                    frontier.retain(|&a| graph.nodes[a].responded_at.unwrap() >= ib);
                }
                // `resp(b) > inv(b') > I*`-chain: b always joins.
                frontier.push(b);
            }
            for &a in &frontier {
                graph.succ[a].push(c);
            }
        }

        // Reads-from and wedging edges.
        for (u, op) in graph.nodes.iter().enumerate() {
            if op.kind != OpKind::Read {
                continue;
            }
            let register = op.register.index() as u32;
            let writes = register_writes.get(&register);
            match &op.outcome {
                OpOutcome::ReadReturned(Some(value)) => {
                    let Some(&w) = value_writer.get(value.as_bytes()) else {
                        return Err(CertifyOutcome::Violated {
                            witness: (op.id, op.id),
                            reason: format!("read {:?} returned a value no write produced", op.id),
                        });
                    };
                    if graph.nodes[w].register != op.register {
                        return Err(CertifyOutcome::Violated {
                            witness: (op.id, graph.nodes[w].id),
                            reason: format!(
                                "read {:?} of register {} returned a value written to register {}",
                                op.id,
                                op.register.index(),
                                graph.nodes[w].register.index()
                            ),
                        });
                    }
                    // w -> r, and r -> the owner's next write (if any).
                    graph.succ[w].push(u);
                    if let Some(order) = writes {
                        if let Some(pos) = order.iter().position(|&x| x == w) {
                            if let Some(&next) = order.get(pos + 1) {
                                graph.succ[u].push(next);
                            }
                        }
                    }
                }
                OpOutcome::ReadReturned(None) => {
                    // The read precedes every write to the register.
                    if let Some(order) = writes {
                        if let Some(&first) = order.first() {
                            graph.succ[u].push(first);
                        }
                    }
                }
                _ => {}
            }
        }

        Ok(graph)
    }

    /// Kahn's algorithm; a full topological order is a witness
    /// linearization, a stuck state yields a cycle witness.
    fn certify(&self) -> CertifyOutcome {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for succ in &self.succ {
            for &v in succ {
                indegree[v] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&u| indegree[u] == 0).collect();
        // Prefer earlier invocation times so the witness order reads
        // naturally; correctness does not depend on the tie-break.
        ready.sort_by_key(|&u| std::cmp::Reverse(self.nodes[u].invoked_at));
        let mut order = Vec::with_capacity(n);
        while let Some(u) = ready.pop() {
            order.push(u);
            for &v in &self.succ[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    ready.push(v);
                }
            }
            ready.sort_by_key(|&u| std::cmp::Reverse(self.nodes[u].invoked_at));
        }
        if order.len() < n {
            let (a, b) = self.cycle_witness(&indegree);
            return CertifyOutcome::Violated {
                witness: (self.nodes[a].id, self.nodes[b].id),
                reason: format!(
                    "operations {:?} and {:?} lie on an ordering cycle: \
                     real-time and data-dependency constraints require each \
                     to precede the other",
                    self.nodes[a].id, self.nodes[b].id
                ),
            };
        }
        // Belt and braces: the witness order must satisfy the register
        // spec. With complete constraints it always does; a failure here
        // means the certifier itself is wrong, so refuse to certify.
        if let Err(err) = check_sequence(order.iter().map(|&u| self.nodes[u])) {
            return CertifyOutcome::Unknown(format!(
                "internal: witness order failed the register spec ({err:?})"
            ));
        }
        CertifyOutcome::Linearizable {
            order: order.into_iter().map(|u| self.nodes[u].id).collect(),
        }
    }

    /// Finds two distinct operations on a cycle among nodes Kahn's could
    /// not schedule (indegree still positive).
    fn cycle_witness(&self, indegree: &[usize]) -> (usize, usize) {
        let stuck: Vec<usize> = (0..self.nodes.len()).filter(|&u| indegree[u] > 0).collect();
        // Walk successor pointers inside the stuck set; within it every
        // node has a stuck successor, so the walk must revisit a node.
        let in_stuck = |u: usize| indegree[u] > 0;
        let start = stuck[0];
        let mut seen = vec![false; self.nodes.len()];
        let mut path = vec![start];
        seen[start] = true;
        let mut cur = start;
        loop {
            let Some(&next) = self.succ[cur].iter().find(|&&v| in_stuck(v)) else {
                // Shouldn't happen (stuck nodes lie on cycles), but keep
                // the witness well-defined.
                return (start, *path.last().unwrap());
            };
            if seen[next] {
                let pos = path.iter().position(|&u| u == next).unwrap_or(0);
                let cycle = &path[pos..];
                let a = cycle[0];
                let b = cycle.get(1).copied().unwrap_or(a);
                return (a, b);
            }
            seen[next] = true;
            path.push(next);
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_types::{ClientId, Value};

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn empty_history_certifies() {
        let h = History::new();
        assert!(matches!(
            certify_linearizable(&h),
            CertifyOutcome::Linearizable { .. }
        ));
    }

    #[test]
    fn simple_write_read_certifies() {
        let mut h = History::new();
        let w = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(w, 1, None);
        let r = h.begin_read(c(1), c(0), 2);
        h.complete_read(r, 3, Some(Value::from("a")), None);
        match certify_linearizable(&h) {
            CertifyOutcome::Linearizable { order } => assert_eq!(order.len(), 2),
            other => panic!("expected certification, got {other:?}"),
        }
    }

    #[test]
    fn stale_read_after_newer_write_violates() {
        // w(a); w(b); then a read strictly after both returns "a" — the
        // read must follow w(b) in real time but precede it to observe
        // "a": a cycle.
        let mut h = History::new();
        let w1 = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(w1, 1, None);
        let w2 = h.begin_write(c(0), Value::from("b"), 2);
        h.complete_write(w2, 3, None);
        let r = h.begin_read(c(1), c(0), 4);
        h.complete_read(r, 5, Some(Value::from("a")), None);
        match certify_linearizable(&h) {
            CertifyOutcome::Violated { .. } => {}
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn none_read_after_write_violates() {
        let mut h = History::new();
        let w = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(w, 1, None);
        let r = h.begin_read(c(1), c(0), 2);
        h.complete_read(r, 3, None, None);
        match certify_linearizable(&h) {
            CertifyOutcome::Violated { .. } => {}
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn read_of_unwritten_value_violates() {
        let mut h = History::new();
        let w = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(w, 1, None);
        let r = h.begin_read(c(1), c(0), 2);
        h.complete_read(r, 3, Some(Value::from("phantom")), None);
        match certify_linearizable(&h) {
            CertifyOutcome::Violated { witness, .. } => {
                assert_eq!(witness.0, witness.1);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn pending_observed_write_is_scheduled() {
        // A write that never completed but whose value a read returned
        // must be placed in the linearization.
        let mut h = History::new();
        let _w = h.begin_write(c(0), Value::from("a"), 0);
        let r = h.begin_read(c(1), c(0), 2);
        h.complete_read(r, 3, Some(Value::from("a")), None);
        match certify_linearizable(&h) {
            CertifyOutcome::Linearizable { order } => assert_eq!(order.len(), 2),
            other => panic!("expected certification, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_reads_both_orders_certify() {
        // Two concurrent reads around a write: one sees the old value,
        // one the new — fine, they are concurrent with the write.
        let mut h = History::new();
        let w0 = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(w0, 1, None);
        let w1 = h.begin_write(c(0), Value::from("b"), 10);
        h.complete_write(w1, 20, None);
        let r1 = h.begin_read(c(1), c(0), 11);
        h.complete_read(r1, 19, Some(Value::from("a")), None);
        let r2 = h.begin_read(c(2), c(0), 12);
        h.complete_read(r2, 18, Some(Value::from("b")), None);
        assert!(matches!(
            certify_linearizable(&h),
            CertifyOutcome::Linearizable { .. }
        ));
    }

    #[test]
    fn large_history_certifies_fast() {
        // Well beyond MAX_OPS: the whole point of saturation.
        let mut h = History::new();
        let mut t = 0u64;
        for round in 0..200u32 {
            let w = h.begin_write(c(0), Value::from(format!("v{round}").into_bytes()), t);
            h.complete_write(w, t + 1, None);
            let r = h.begin_read(c(1), c(0), t + 2);
            h.complete_read(
                r,
                t + 3,
                Some(Value::from(format!("v{round}").into_bytes())),
                None,
            );
            t += 4;
        }
        match certify_linearizable(&h) {
            CertifyOutcome::Linearizable { order } => assert_eq!(order.len(), 400),
            other => panic!("expected certification, got {other:?}"),
        }
    }

    #[test]
    fn large_violation_is_found_fast() {
        let mut h = History::new();
        let mut t = 0u64;
        for round in 0..150u32 {
            let w = h.begin_write(c(0), Value::from(format!("v{round}").into_bytes()), t);
            h.complete_write(w, t + 1, None);
            t += 2;
        }
        // Strictly after all writes, read an old value.
        let r = h.begin_read(c(1), c(0), t + 1);
        h.complete_read(r, t + 2, Some(Value::from("v0")), None);
        assert!(matches!(
            certify_linearizable(&h),
            CertifyOutcome::Violated { .. }
        ));
    }
}
