//! Corner-case histories for the consistency checkers: concurrency at
//! the linearization point, cross-register interleavings, and the
//! lattice of notions (linearizable ⇒ fork-lin ⇒ weak-fork-lin ⇒ causal).

use faust_consistency::{
    check_causal_consistency, check_fork_linearizability, check_fork_sequential_consistency,
    check_fork_star_linearizability, check_linearizability, check_weak_fork_linearizability,
    Budget, Verdict,
};
use faust_types::{ClientId, History, Value};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn b() -> Budget {
    Budget::default()
}

/// A read concurrent with a write may return the old value…
#[test]
fn concurrent_read_may_see_old_value() {
    let mut h = History::new();
    let w1 = h.begin_write(c(0), Value::from("old"), 0);
    h.complete_write(w1, 1, None);
    let w2 = h.begin_write(c(0), Value::from("new"), 10);
    let r = h.begin_read(c(1), c(0), 12); // overlaps w2 (completes at 20)
    h.complete_read(r, 14, Some(Value::from("old")), None);
    h.complete_write(w2, 20, None);
    assert_eq!(check_linearizability(&h, &b()), Verdict::Satisfied);
}

/// …or the new value; both linearize.
#[test]
fn concurrent_read_may_see_new_value() {
    let mut h = History::new();
    let w1 = h.begin_write(c(0), Value::from("old"), 0);
    h.complete_write(w1, 1, None);
    let w2 = h.begin_write(c(0), Value::from("new"), 10);
    let r = h.begin_read(c(1), c(0), 12);
    h.complete_read(r, 14, Some(Value::from("new")), None);
    h.complete_write(w2, 20, None);
    assert_eq!(check_linearizability(&h, &b()), Verdict::Satisfied);
}

/// Two sequential reads across a write's linearization point must not
/// travel backwards: new then old is NOT linearizable.
#[test]
fn value_reversal_not_linearizable() {
    let mut h = History::new();
    let w1 = h.begin_write(c(0), Value::from("old"), 0);
    h.complete_write(w1, 1, None);
    let w2 = h.begin_write(c(0), Value::from("new"), 10);
    h.complete_write(w2, 30, None);
    // Both reads overlap w2; first returns new, second returns old.
    let r1 = h.begin_read(c(1), c(0), 12);
    h.complete_read(r1, 14, Some(Value::from("new")), None);
    let r2 = h.begin_read(c(1), c(0), 16);
    h.complete_read(r2, 18, Some(Value::from("old")), None);
    assert!(check_linearizability(&h, &b()).is_violated());
    // It is not even causally consistent: reads-from(w2) then w1, with
    // w1 →program w2 at the writer.
    assert!(check_causal_consistency(&h, &b()).is_violated());
}

/// Independent registers commute: with all cross-client operations
/// pairwise concurrent, two readers may observe the two writes in
/// opposite orders and still linearize (the writes slot in between).
#[test]
fn cross_register_observations_commute() {
    let mut h = History::new();
    let w0 = h.begin_write(c(0), Value::from("x"), 0);
    let w1 = h.begin_write(c(1), Value::from("y"), 0);
    h.complete_write(w0, 30, None);
    h.complete_write(w1, 30, None);
    // Phase 1 (both reads concurrent): C2 already sees y, C3 does not.
    let r2y = h.begin_read(c(2), c(1), 2);
    h.complete_read(r2y, 10, Some(Value::from("y")), None);
    let r3y = h.begin_read(c(3), c(1), 2);
    h.complete_read(r3y, 10, None, None);
    // Phase 2 (both reads concurrent): C3 already sees x, C2 does not.
    let r2x = h.begin_read(c(2), c(0), 12);
    h.complete_read(r2x, 20, None, None);
    let r3x = h.begin_read(c(3), c(0), 12);
    h.complete_read(r3x, 20, Some(Value::from("x")), None);
    // Witness: r3y, w1, r2y, r2x, w0, r3x.
    assert_eq!(check_linearizability(&h, &b()), Verdict::Satisfied);
}

/// The notion lattice on a genuinely forked (but clean) history:
/// fork-linearizable but not linearizable implies all weaker notions.
#[test]
fn notion_lattice_on_forked_history() {
    // C1 is shown an old state forever (split brain).
    let mut h = History::new();
    let w1 = h.begin_write(c(0), Value::from("v1"), 0);
    h.complete_write(w1, 1, None);
    let w2 = h.begin_write(c(0), Value::from("v2"), 2);
    h.complete_write(w2, 3, None);
    let r = h.begin_read(c(1), c(0), 10);
    h.complete_read(r, 11, Some(Value::from("v1")), None);

    assert!(check_linearizability(&h, &b()).is_violated());
    assert_eq!(check_fork_linearizability(&h, &b()), Verdict::Satisfied);
    assert_eq!(
        check_fork_star_linearizability(&h, &b()),
        Verdict::Satisfied
    );
    assert_eq!(
        check_weak_fork_linearizability(&h, &b()),
        Verdict::Satisfied
    );
    assert_eq!(check_causal_consistency(&h, &b()), Verdict::Satisfied);
}

/// An empty history satisfies everything.
#[test]
fn empty_history_trivially_consistent() {
    let h = History::new();
    assert_eq!(check_linearizability(&h, &b()), Verdict::Satisfied);
    assert_eq!(check_causal_consistency(&h, &b()), Verdict::Satisfied);
    assert_eq!(check_fork_linearizability(&h, &b()), Verdict::Satisfied);
    assert_eq!(
        check_weak_fork_linearizability(&h, &b()),
        Verdict::Satisfied
    );
}

/// Single-client histories reduce to sequential-spec checking.
#[test]
fn single_client_histories() {
    let mut h = History::new();
    let w = h.begin_write(c(0), Value::from("mine"), 0);
    h.complete_write(w, 1, None);
    let r = h.begin_read(c(0), c(0), 2);
    h.complete_read(r, 3, Some(Value::from("mine")), None);
    assert_eq!(check_linearizability(&h, &b()), Verdict::Satisfied);

    // Reading one's own register *wrong* is a violation everywhere —
    // even forking semantics cannot explain a client disagreeing with
    // itself.
    let mut bad = History::new();
    let w = bad.begin_write(c(0), Value::from("mine"), 0);
    bad.complete_write(w, 1, None);
    let r = bad.begin_read(c(0), c(0), 2);
    bad.complete_read(r, 3, None, None); // reads ⊥ after own write!
    assert!(check_linearizability(&bad, &b()).is_violated());
    assert!(check_weak_fork_linearizability(&bad, &b()).is_violated());
    assert!(check_causal_consistency(&bad, &b()).is_violated());
}

/// Weak fork-linearizability's last-op exemption only covers each
/// client's *final* operation: hiding a write from a reader's
/// NON-final interaction sequence still fails when causality forces it.
#[test]
fn weak_fork_lin_exemption_is_limited() {
    // Like Figure 3, but the reader then reads a third client's register
    // that causally depends on the hidden write being revealed...
    // Simpler limit test: the writer writes twice; the reader sees ⊥
    // then v1 then... v1 again after the writer's second write is shown
    // as pending. Construct: reads ⊥, v2 (joined), then ⊥ again — the
    // regression breaks every notion.
    let mut h = History::new();
    let w1 = h.begin_write(c(0), Value::from("v1"), 0);
    h.complete_write(w1, 1, None);
    let r1 = h.begin_read(c(1), c(0), 10);
    h.complete_read(r1, 11, Some(Value::from("v1")), None);
    let r2 = h.begin_read(c(1), c(0), 12);
    h.complete_read(r2, 13, None, None); // back to ⊥: impossible
    assert!(check_weak_fork_linearizability(&h, &b()).is_violated());
    assert!(check_causal_consistency(&h, &b()).is_violated());
}

/// Fork-sequential-consistency drops all real-time requirements: the
/// Figure 3 history, which fork-linearizability rejects, passes — the
/// reader's view simply schedules the (completed!) write after its first
/// read. Linearizable histories pass trivially.
#[test]
fn fork_sequential_consistency_is_weaker_than_fork_linearizability() {
    // Figure 3: write completes, reader sees ⊥ then the value.
    let mut h = History::new();
    let w = h.begin_write(c(0), Value::from("u"), 0);
    h.complete_write(w, 5, None);
    let r1 = h.begin_read(c(1), c(0), 10);
    h.complete_read(r1, 15, None, None);
    let r2 = h.begin_read(c(1), c(0), 20);
    h.complete_read(r2, 25, Some(Value::from("u")), None);

    assert!(check_fork_linearizability(&h, &b()).is_violated());
    assert_eq!(
        check_fork_sequential_consistency(&h, &b()),
        Verdict::Satisfied
    );

    // A self-inconsistent client fails even fork-sequential-consistency.
    let mut bad = History::new();
    let w = bad.begin_write(c(0), Value::from("v"), 0);
    bad.complete_write(w, 1, None);
    let r = bad.begin_read(c(0), c(0), 2);
    bad.complete_read(r, 3, None, None);
    assert!(check_fork_sequential_consistency(&bad, &b()).is_violated());
}
