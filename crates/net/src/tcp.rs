//! Length-prefixed TCP transport over `std::net`.
//!
//! Frames use the stream framing of [`faust_types::frame`]: a 4-byte
//! big-endian length followed by the exact wire encoding of the message.
//! A connection starts with a single HELLO frame carrying the client's
//! [`ClientId`].
//!
//! The HELLO is *identification, not authentication*: USTOR's security
//! argument never trusts the server or the channel — every statement that
//! matters is client-signed and re-verified by clients. A peer that lies
//! about its id can at worst submit messages whose signatures do not
//! verify, which the per-client checks (and the engine's optional ingress
//! verification) reject.
//!
//! Threading model: the server runs one accept loop plus one reader thread
//! per connection, all funnelling into a single event queue consumed by
//! [`TcpServerTransport::recv`]; writes go directly to the per-client
//! socket. Clients ([`connect`]) spawn one reader thread and receive
//! through an in-process queue, so [`ClientConn::recv_timeout`] works the
//! same as on the channel transport.
//!
//! [`ClientConn::recv_timeout`]: crate::ClientConn::recv_timeout

use crate::conn::{ClientConn, ConnSender, SenderInner, TcpWriter};
use crate::{Incoming, ServerTransport};
use faust_types::frame::{frame_into, read_frame, write_frame, FrameDecoder};
use faust_types::{ClientId, UstorMsg};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a freshly accepted connection gets to produce its HELLO
/// frame before the accept loop gives up on it. Bounds how long one
/// silent connector can stall the (serial) handshake pipeline.
pub const HELLO_TIMEOUT: Duration = Duration::from_secs(5);

/// One client's write slot. Per-client locking: a blocking write to one
/// stalled client must never hold up replies to the others.
type WriterSlot = Mutex<Option<TcpStream>>;

/// Upper bound on clients per server transport; keeps a hostile HELLO from
/// sizing any table.
pub const MAX_CLIENTS: usize = 4096;

enum TcpEvent {
    Connected,
    Msg(ClientId, UstorMsg),
    Disconnected(ClientId),
}

/// Server side of the TCP transport.
///
/// Bound with [`TcpServerTransport::bind`]; expects exactly `n` distinct
/// clients to connect over the transport's lifetime and reports
/// [`Incoming::Closed`] once all of them have connected and subsequently
/// disconnected. One connection per client: a second HELLO for an
/// already-seen id is rejected. Session resumption is deliberately a
/// *session*-layer feature, not a transport one — a reconnecting client
/// resumes against a fresh server incarnation (the client replays its
/// resend window; the engine answers duplicates from its reply cache —
/// see docs/client-api.md), so within one transport incarnation an id
/// reuse is always an impostor or a bug and is refused.
pub struct TcpServerTransport {
    events: Receiver<TcpEvent>,
    writers: Arc<Vec<WriterSlot>>,
    local_addr: SocketAddr,
    expected: usize,
    seen: usize,
    active: usize,
    /// Reused frame-assembly buffer: single sends and whole egress
    /// batches alike are encoded here and written with one `write_all`
    /// per client (the sockets run `TCP_NODELAY`, so that one write is
    /// what bounds both syscall count and latency).
    sendbuf: Vec<u8>,
}

impl TcpServerTransport {
    /// Binds a listener and starts accepting up to `n` client connections
    /// in the background.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`MAX_CLIENTS`].
    pub fn bind(addr: impl ToSocketAddrs, n: usize) -> std::io::Result<Self> {
        assert!(n > 0 && n <= MAX_CLIENTS, "client count out of range");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let writers: Arc<Vec<WriterSlot>> = Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let (tx, events) = channel();
        let accept_writers = Arc::clone(&writers);
        std::thread::spawn(move || accept_loop(listener, n, accept_writers, tx));
        Ok(TcpServerTransport {
            events,
            writers,
            local_addr,
            expected: n,
            seen: 0,
            active: 0,
            sendbuf: Vec::with_capacity(4096),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can abruptly sever every established connection
    /// from another thread — see [`TcpSever`].
    pub fn sever_handle(&self) -> TcpSever {
        TcpSever {
            writers: Arc::clone(&self.writers),
        }
    }
}

/// Severs a [`TcpServerTransport`]'s connections from outside the serve
/// loop: every established socket is `shutdown(Both)` and its writer
/// slot cleared, so clients observe EOF immediately and the per-
/// connection reader threads unblock and exit. Merely *dropping* the
/// transport does neither — the reader threads hold their own clones of
/// each stream, which keep the file descriptors open.
///
/// This is the socket-level half of an abrupt server kill (chaos
/// testing); pair it with [`crate::chaos::KillableTransport`], which
/// makes the serve loop itself stand down.
pub struct TcpSever {
    writers: Arc<Vec<WriterSlot>>,
}

impl TcpSever {
    /// Shuts down every established connection, both directions.
    /// Idempotent; connections accepted after the call are unaffected
    /// (there are none in practice — a severed incarnation is dead).
    pub fn sever_all(&self) {
        for slot in self.writers.iter() {
            if let Some(stream) = slot.lock().expect("writer slot poisoned").take() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    n: usize,
    writers: Arc<Vec<WriterSlot>>,
    tx: Sender<TcpEvent>,
) {
    // One connection per distinct client id, ever: counting raw accepts
    // would let one client connect/disconnect/reconnect and consume
    // another client's slot, after which the transport could report
    // `Closed` with a legitimate client locked out.
    let mut registered = vec![false; n];
    let mut accepted = 0;
    while accepted < n {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        let _ = stream.set_nodelay(true);
        // HELLO: the connecting client's id, as one frame. The read is
        // bounded by HELLO_TIMEOUT so a connector that sends nothing
        // cannot wedge acceptance of the remaining clients forever.
        let _ = stream.set_read_timeout(Some(HELLO_TIMEOUT));
        let id = match read_frame::<_, ClientId>(&mut stream) {
            Ok(Some(id)) if id.index() < n => id,
            _ => continue, // bad, missing, or overdue hello: reject
        };
        if stream.set_read_timeout(None).is_err() {
            continue;
        }
        if registered[id.index()] {
            continue; // duplicate or reconnecting id: reject
        }
        {
            let mut slot = writers[id.index()].lock().expect("writer slot poisoned");
            let Ok(write_half) = stream.try_clone() else {
                continue;
            };
            *slot = Some(write_half);
        }
        registered[id.index()] = true;
        accepted += 1;
        if tx.send(TcpEvent::Connected).is_err() {
            return; // transport dropped
        }
        let reader_tx = tx.clone();
        std::thread::spawn(move || reader_loop(stream, id, reader_tx));
    }
}

/// Pumps one connection through an incremental [`FrameDecoder`] until EOF
/// or a protocol violation.
fn reader_loop(mut stream: TcpStream, id: ClientId, tx: Sender<TcpEvent>) {
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(got) => {
                decoder.extend(&chunk[..got]);
                loop {
                    match decoder.next_frame::<UstorMsg>() {
                        Ok(Some(msg)) => {
                            if tx.send(TcpEvent::Msg(id, msg)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break,
                        // Garbage on the stream: hang up on this client.
                        Err(_) => {
                            let _ = tx.send(TcpEvent::Disconnected(id));
                            return;
                        }
                    }
                }
            }
        }
    }
    let _ = tx.send(TcpEvent::Disconnected(id));
}

impl TcpServerTransport {
    /// Applies one connection-state event; `Some` if it terminates the
    /// receive loop with a result.
    fn apply(&mut self, event: TcpEvent) -> Option<Incoming> {
        match event {
            TcpEvent::Connected => {
                self.seen += 1;
                self.active += 1;
                None
            }
            TcpEvent::Msg(from, msg) => Some(Incoming::Msg(from, msg)),
            TcpEvent::Disconnected(id) => {
                self.active -= 1;
                *self.writers[id.index()]
                    .lock()
                    .expect("writer slot poisoned") = None;
                (self.seen == self.expected && self.active == 0).then_some(Incoming::Closed)
            }
        }
    }
}

impl TcpServerTransport {
    /// Writes the assembled `sendbuf` to `to`'s socket in one
    /// `write_all`, dropping the writer on error (client gone).
    fn write_assembled(writers: &[WriterSlot], to: ClientId, buf: &[u8]) {
        let Some(slot) = writers.get(to.index()) else {
            return;
        };
        // Only this client's slot is locked: a peer with a full kernel
        // send buffer blocks its own replies, never anyone else's.
        let mut slot = slot.lock().expect("writer slot poisoned");
        if let Some(stream) = slot.as_mut() {
            if stream.write_all(buf).is_err() {
                *slot = None; // client gone; stop writing to it
            }
        }
    }
}

impl ServerTransport for TcpServerTransport {
    fn recv(&mut self) -> Incoming {
        loop {
            match self.events.recv() {
                Ok(event) => {
                    if let Some(out) = self.apply(event) {
                        return out;
                    }
                }
                Err(_) => return Incoming::Closed,
            }
        }
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Incoming {
        loop {
            let timeout = deadline.saturating_duration_since(Instant::now());
            match self.events.recv_timeout(timeout) {
                Ok(event) => {
                    if let Some(out) = self.apply(event) {
                        return out;
                    }
                }
                Err(RecvTimeoutError::Timeout) => return Incoming::TimedOut,
                Err(RecvTimeoutError::Disconnected) => return Incoming::Closed,
            }
        }
    }

    fn try_recv(&mut self) -> Incoming {
        loop {
            match self.events.try_recv() {
                Ok(event) => {
                    if let Some(out) = self.apply(event) {
                        return out;
                    }
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => return Incoming::Idle,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => return Incoming::Closed,
            }
        }
    }

    fn send(&mut self, to: ClientId, msg: UstorMsg) {
        self.sendbuf.clear();
        frame_into(&mut self.sendbuf, &msg);
        Self::write_assembled(&self.writers, to, &self.sendbuf);
    }

    fn send_batch(&mut self, to: ClientId, msgs: Vec<UstorMsg>) {
        // Coalesce the whole per-client batch into one buffer and one
        // socket write — the `writev`-style egress path: syscalls scale
        // with *clients touched per round*, not with frames sent.
        self.sendbuf.clear();
        for msg in &msgs {
            frame_into(&mut self.sendbuf, msg);
        }
        Self::write_assembled(&self.writers, to, &self.sendbuf);
    }
}

/// Connects to a server transport as client `id` and performs the HELLO
/// handshake.
///
/// # Errors
///
/// Propagates socket errors from connecting or the handshake write.
pub fn connect(addr: SocketAddr, id: ClientId) -> std::io::Result<ClientConn> {
    finish_connect(TcpStream::connect(addr)?, id)
}

/// Like [`connect`], but gives up on the TCP handshake after `timeout` —
/// the per-attempt bound an auto-reconnecting client's backoff schedule
/// needs (a plain `connect` against a black-holed address can block for
/// minutes).
///
/// # Errors
///
/// Propagates socket errors from connecting or the handshake write,
/// including [`std::io::ErrorKind::TimedOut`].
pub fn connect_timeout(
    addr: SocketAddr,
    id: ClientId,
    timeout: Duration,
) -> std::io::Result<ClientConn> {
    finish_connect(TcpStream::connect_timeout(&addr, timeout)?, id)
}

fn finish_connect(mut stream: TcpStream, id: ClientId) -> std::io::Result<ClientConn> {
    stream.set_nodelay(true)?;
    write_frame(&mut stream, &id)?;
    let read_half = stream.try_clone()?;
    let (tx, rx) = channel();
    std::thread::spawn(move || client_reader_loop(read_half, tx));
    Ok(ClientConn {
        id,
        tx: ConnSender(SenderInner::Tcp {
            writer: Arc::new(Mutex::new(TcpWriter::new(stream))),
        }),
        rx,
    })
}

fn client_reader_loop(mut stream: TcpStream, tx: Sender<UstorMsg>) {
    while let Ok(Some(msg)) = read_frame::<_, UstorMsg>(&mut stream) {
        if tx.send(msg).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::Signature;
    use faust_types::{CommitMsg, Version};

    fn msg(n: usize) -> UstorMsg {
        UstorMsg::Commit(CommitMsg {
            version: Version::initial(n),
            commit_sig: Signature::garbage(),
            proof_sig: Signature::garbage(),
        })
    }

    #[test]
    fn loopback_roundtrip_and_close() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();
        let c0 = connect(addr, ClientId::new(0)).unwrap();
        let c1 = connect(addr, ClientId::new(1)).unwrap();

        // Replies follow traffic from the same client (as in the real
        // protocol), which guarantees the server has seen its HELLO.
        c0.send(&msg(2)).unwrap();
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected a message");
        };
        assert_eq!(from, ClientId::new(0));

        c1.send(&msg(2)).unwrap();
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected a message");
        };
        assert_eq!(from, ClientId::new(1));
        server.send(ClientId::new(1), msg(2));
        assert!(c1.recv().is_ok());

        drop(c0);
        drop(c1);
        assert!(matches!(server.recv(), Incoming::Closed));
    }

    #[test]
    fn send_batch_coalesces_but_delivers_every_frame_in_order() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let c0 = connect(addr, ClientId::new(0)).unwrap();
        c0.send(&msg(1)).unwrap();
        let Incoming::Msg(_, _) = server.recv() else {
            panic!("expected a message");
        };
        // One coalesced write carrying 5 frames; the client's incremental
        // decoder must recover each one, in order.
        let batch: Vec<UstorMsg> = (0..5).map(|_| msg(1)).collect();
        server.send_batch(ClientId::new(0), batch);
        for _ in 0..5 {
            assert!(matches!(c0.recv(), Ok(UstorMsg::Commit(_))));
        }
        drop(c0);
        assert!(matches!(server.recv(), Incoming::Closed));
    }

    #[test]
    fn recv_deadline_times_out_then_still_delivers() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        let c0 = connect(addr, ClientId::new(0)).unwrap();
        // Nothing in flight: the deadline elapses.
        let deadline = Instant::now() + Duration::from_millis(20);
        assert!(matches!(server.recv_deadline(deadline), Incoming::TimedOut));
        // Traffic arrives well before a generous deadline.
        c0.send(&msg(1)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        assert!(matches!(server.recv_deadline(deadline), Incoming::Msg(..)));
        drop(c0);
        assert!(matches!(server.recv(), Incoming::Closed));
    }

    #[test]
    fn bad_hello_is_rejected_but_good_clients_proceed() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr();
        // An out-of-range id: the server must drop this connection.
        let bogus = connect(addr, ClientId::new(9)).unwrap();
        // A valid client still gets through afterwards.
        let good = connect(addr, ClientId::new(0)).unwrap();
        good.send(&msg(1)).unwrap();
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected a message");
        };
        assert_eq!(from, ClientId::new(0));
        drop(bogus);
        drop(good);
        assert!(matches!(server.recv(), Incoming::Closed));
    }
}

#[cfg(test)]
mod reconnect_tests {
    use super::*;
    use faust_crypto::Signature;
    use faust_types::{CommitMsg, Version};

    fn msg(n: usize) -> UstorMsg {
        UstorMsg::Commit(CommitMsg {
            version: Version::initial(n),
            commit_sig: Signature::garbage(),
            proof_sig: Signature::garbage(),
        })
    }

    #[test]
    fn reconnecting_client_cannot_consume_another_clients_slot() {
        let mut server = TcpServerTransport::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr();

        // Client 0 connects, talks, and leaves.
        let c0 = connect(addr, ClientId::new(0)).unwrap();
        c0.send(&msg(2)).unwrap();
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected a message");
        };
        assert_eq!(from, ClientId::new(0));
        drop(c0);

        // Client 0 "reconnects": the duplicate HELLO must be rejected
        // rather than consuming client 1's accept slot.
        let again = connect(addr, ClientId::new(0)).unwrap();

        // Client 1 still gets in and is served.
        let c1 = connect(addr, ClientId::new(1)).unwrap();
        c1.send(&msg(2)).unwrap();
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected client 1's message; transport closed early");
        };
        assert_eq!(from, ClientId::new(1));

        drop(again);
        drop(c1);
        assert!(matches!(server.recv(), Incoming::Closed));
    }
}
