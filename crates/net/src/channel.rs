//! In-process channel transport: `std::sync::mpsc` queues between client
//! threads and the engine thread.
//!
//! This replaces the bespoke channel plumbing the thread-per-client
//! runtimes used to carry around: all clients share one sender into the
//! engine's inbox, and each client owns a private reply queue.

use crate::conn::{ClientConn, ConnSender, SenderInner};
use crate::{Incoming, ServerTransport};
use faust_types::{ClientId, UstorMsg};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Instant;

/// Server side of the in-process channel transport.
pub struct ChannelServerTransport {
    rx: Receiver<(ClientId, UstorMsg)>,
    txs: Vec<Sender<UstorMsg>>,
}

impl ServerTransport for ChannelServerTransport {
    fn recv(&mut self) -> Incoming {
        match self.rx.recv() {
            Ok((from, msg)) => Incoming::Msg(from, msg),
            // All client connections dropped.
            Err(_) => Incoming::Closed,
        }
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Incoming {
        let timeout = deadline.saturating_duration_since(Instant::now());
        match self.rx.recv_timeout(timeout) {
            Ok((from, msg)) => Incoming::Msg(from, msg),
            Err(RecvTimeoutError::Timeout) => Incoming::TimedOut,
            Err(RecvTimeoutError::Disconnected) => Incoming::Closed,
        }
    }

    fn try_recv(&mut self) -> Incoming {
        match self.rx.try_recv() {
            Ok((from, msg)) => Incoming::Msg(from, msg),
            Err(std::sync::mpsc::TryRecvError::Empty) => Incoming::Idle,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Incoming::Closed,
        }
    }

    fn send(&mut self, to: ClientId, msg: UstorMsg) {
        if let Some(tx) = self.txs.get(to.index()) {
            // A departed client only means the run is ending.
            let _ = tx.send(msg);
        }
    }
}

/// Builds the channel transport for `n` clients: the server half plus one
/// [`ClientConn`] per client.
///
/// # Example
///
/// ```
/// let (_server, conns) = faust_net::channel::pair(2);
/// assert_eq!(conns.len(), 2);
/// ```
pub fn pair(n: usize) -> (ChannelServerTransport, Vec<ClientConn>) {
    let (inbox_tx, inbox_rx) = channel();
    let mut txs = Vec::with_capacity(n);
    let mut conns = Vec::with_capacity(n);
    for i in 0..n {
        let id = ClientId::new(i as u32);
        let (reply_tx, reply_rx) = channel();
        txs.push(reply_tx);
        conns.push(ClientConn {
            id,
            tx: ConnSender(SenderInner::Channel {
                id,
                tx: inbox_tx.clone(),
            }),
            rx: reply_rx,
        });
    }
    (ChannelServerTransport { rx: inbox_rx, txs }, conns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_crypto::Signature;
    use faust_types::{CommitMsg, Version};

    fn msg(n: usize) -> UstorMsg {
        UstorMsg::Commit(CommitMsg {
            version: Version::initial(n),
            commit_sig: Signature::garbage(),
            proof_sig: Signature::garbage(),
        })
    }

    #[test]
    fn roundtrip_and_close() {
        let (mut server, mut conns) = pair(2);
        conns[0].send(&msg(2)).unwrap();
        let Incoming::Msg(from, _) = server.recv() else {
            panic!("expected message");
        };
        assert_eq!(from, ClientId::new(0));
        server.send(ClientId::new(0), msg(2));
        assert!(conns[0].recv().is_ok());
        // Dropping every conn closes the transport.
        conns.clear();
        assert!(matches!(server.recv(), Incoming::Closed));
    }

    #[test]
    fn send_to_departed_client_is_dropped() {
        let (mut server, mut conns) = pair(2);
        conns.remove(1); // client 1 leaves
        server.send(ClientId::new(1), msg(2)); // must not panic
        conns[0].send(&msg(2)).unwrap();
        assert!(matches!(server.recv(), Incoming::Msg(..)));
    }
}
