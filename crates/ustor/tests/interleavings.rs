//! Message-level property tests: random interleavings of SUBMIT / COMMIT
//! processing at a correct server. The driver tests randomize *network
//! delays*; these randomize the *schedule itself*, including commits that
//! arrive arbitrarily late (clients with many operations in between).
//!
//! Property-style without an external framework: each case is generated
//! from a seeded [`SmallRng`], so failures reproduce exactly by seed.

use faust_crypto::sig::KeySet;
use faust_sim::SmallRng;
use faust_types::{ClientId, CommitMsg, ReplyMsg, Value};
use faust_ustor::{Server, UstorClient, UstorServer};
use std::collections::VecDeque;

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

fn clients(n: usize, seed: &[u8]) -> Vec<UstorClient> {
    let keys = KeySet::generate(n, seed);
    (0..n)
        .map(|i| {
            UstorClient::new(
                c(i as u32),
                n,
                keys.keypair(i as u32).unwrap().clone(),
                keys.registry(),
            )
        })
        .collect()
}

/// A message queued towards the server (the client→server FIFO).
enum ToServer {
    Submit(faust_types::SubmitMsg),
    Commit(CommitMsg),
}

/// Random schedules: at each step one client either starts its next
/// operation (enqueuing the SUBMIT on its FIFO towards the server), has
/// the head of that FIFO processed, or receives its next REPLY. The FIFO
/// guarantees the paper assumes (a COMMIT is processed before the same
/// client's next SUBMIT) hold by construction; under them, a correct
/// server never trips a check, versions grow strictly, and the pending
/// list stays bounded by n.
#[test]
fn random_message_interleavings_stay_consistent() {
    for case in 0u64..48 {
        let mut rng = SmallRng::seed_from_u64(0x1317_EAF0 ^ case);
        let n = 2 + rng.gen_index(3); // 2..5
        let steps = 10 + rng.gen_index(70); // 10..80
        run_case(&mut rng, n, steps, case);
    }
}

fn run_case(rng: &mut SmallRng, n: usize, steps: usize, case: u64) {
    let mut server = UstorServer::new(n);
    let mut cs = clients(n, b"interleave");
    let mut to_server: Vec<VecDeque<ToServer>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut to_client: Vec<VecDeque<ReplyMsg>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut seq: Vec<u64> = vec![0; n];
    let mut last_version: Vec<Option<faust_types::Version>> = vec![None; n];

    for _ in 0..steps {
        let i = rng.gen_index(n);
        match rng.gen_index(3) {
            // Start a new op: SUBMIT goes to the back of the FIFO.
            0 => {
                if !cs[i].is_busy() && cs[i].fault().is_none() {
                    seq[i] += 1;
                    let submit = if rng.gen_index(2) == 0 {
                        cs[i].begin_write(Value::unique(i as u32, seq[i]))
                    } else {
                        cs[i].begin_read(c(rng.gen_index(n) as u32))
                    };
                    if let Ok(msg) = submit {
                        to_server[i].push_back(ToServer::Submit(msg));
                    }
                }
            }
            // Server processes the head of client i's FIFO.
            1 => match to_server[i].pop_front() {
                Some(ToServer::Submit(msg)) => {
                    for (rcpt, reply) in server.on_submit(c(i as u32), msg) {
                        to_client[rcpt.index()].push_back(reply);
                    }
                }
                Some(ToServer::Commit(commit)) => {
                    server.on_commit(c(i as u32), commit);
                }
                None => {}
            },
            // Client i receives its next REPLY.
            _ => {
                if let Some(reply) = to_client[i].pop_front() {
                    let (commit, done) = cs[i]
                        .handle_reply(reply)
                        .expect("correct server never trips a check");
                    if let Some(prev) = &last_version[i] {
                        assert!(prev.lt(&done.version), "case {case}: versions must grow");
                    }
                    last_version[i] = Some(done.version.clone());
                    if let Some(commit) = commit {
                        to_server[i].push_back(ToServer::Commit(commit));
                    }
                }
            }
        }
        assert!(server.pending_len() <= n, "case {case}: L grew beyond n");
    }
}

/// A reply misdirected to a different client is detected, not silently
/// accepted: either the victim is idle (unsolicited) or the reply's
/// contents disagree with the victim's own state.
#[test]
fn misdirected_reply_detected() {
    let n = 2;
    let mut server = UstorServer::new(n);
    let mut cs = clients(n, b"misdirect");

    // Both clients submit writes concurrently.
    let s0 = cs[0].begin_write(Value::from("a")).unwrap();
    let s1 = cs[1].begin_write(Value::from("b")).unwrap();
    let r0 = server.on_submit(c(0), s0).pop().unwrap().1;
    let r1 = server.on_submit(c(1), s1).pop().unwrap().1;

    // Swap the replies: C0 gets C1's and vice versa.
    // C0's op has timestamp 1; C1's reply contains C0's op as pending —
    // the client sees *itself* in the pending list (line 43).
    let err0 = cs[0].handle_reply(r1).expect_err("must detect");
    assert_eq!(err0, faust_ustor::Fault::OwnOperationPending);
    // C1 receives C0's reply: pending list is empty there, and the rest
    // happens to be consistent (both initial) — but then C1's digest
    // chain diverges from what it submitted. The immediate effect is
    // that C1 completes with a version that does NOT account for its own
    // pending op correctly; USTOR detects this at the *server's* next
    // interaction or accepts it as a (server-caused) fork. Either way,
    // it must not panic.
    let _ = cs[1].handle_reply(r0);
}

/// Commits arriving extremely late (after many other ops) never confuse
/// a correct server: the schedule order is fixed by SUBMIT processing.
#[test]
fn very_late_commits_are_harmless() {
    let n = 3;
    let mut server = UstorServer::new(n);
    let mut cs = clients(n, b"late");

    // C0 submits and completes, but its commit is withheld.
    let s0 = cs[0].begin_write(Value::from("w0")).unwrap();
    let r0 = server.on_submit(c(0), s0).pop().unwrap().1;
    let (commit0, _) = cs[0].handle_reply(r0).unwrap();

    // Meanwhile C1 and C2 run several full ops each.
    for round in 0..3u64 {
        for i in 1..3usize {
            let s = cs[i].begin_write(Value::unique(i as u32, round)).unwrap();
            let r = server.on_submit(c(i as u32), s).pop().unwrap().1;
            let (commit, _) = cs[i].handle_reply(r).unwrap();
            server.on_commit(c(i as u32), commit.unwrap());
        }
    }
    // The late commit lands now.
    server.on_commit(c(0), commit0.unwrap());

    // Everyone can still operate; C0's next op completes fine.
    let s = cs[0].begin_read(c(1)).unwrap();
    let r = server.on_submit(c(0), s).pop().unwrap().1;
    let (commit, done) = cs[0].handle_reply(r).expect("still consistent");
    server.on_commit(c(0), commit.unwrap());
    assert_eq!(done.read_value, Some(Some(Value::unique(1, 2))));
}
