//! Property-based integration tests: randomized schedules and workloads
//! across the whole stack, validated against the Definition 5 properties.

use faust::consistency::{check_linearizability, check_wait_freedom, Budget, Verdict};
use faust::core::{FaustDriver, FaustDriverConfig, FaustWorkloadOp, Notification};
use faust::sim::{DelayModel, SimConfig};
use faust::types::{ClientId, Value};
use faust::ustor::adversary::SplitBrainServer;
use faust::ustor::{random_workloads, Driver, UstorServer};
use proptest::prelude::*;

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// USTOR with a correct server: every random schedule is linearizable
    /// and wait-free (Definition 5 properties 1–2).
    #[test]
    fn ustor_random_schedules_linearizable(
        seed in 0u64..5_000,
        n in 2usize..5,
        ops in 2usize..6,
        write_fraction in 0.2f64..0.9,
    ) {
        let mut driver = Driver::new(
            n,
            Box::new(UstorServer::new(n)),
            SimConfig {
                seed,
                link_delay: DelayModel::Uniform(1, 25),
                offline_delay: DelayModel::Fixed(50),
            },
            b"prop-lin",
        );
        for (i, w) in random_workloads(n, ops, write_fraction, seed).into_iter().enumerate() {
            driver.push_ops(c(i as u32), w);
        }
        let result = driver.run();
        prop_assert!(!result.detected_fault());
        prop_assert!(check_wait_freedom(&result.history, &[]));
        prop_assert_eq!(
            check_linearizability(&result.history, &Budget::default()),
            Verdict::Satisfied
        );
    }

    /// FAUST timestamps are monotone per client (Definition 5 property 4)
    /// and stability cuts only ever grow.
    #[test]
    fn faust_timestamps_and_cuts_monotone(seed in 0u64..2_000) {
        let n = 3;
        let mut driver = FaustDriver::new(
            n,
            Box::new(UstorServer::new(n)),
            FaustDriverConfig {
                sim: SimConfig {
                    seed,
                    link_delay: DelayModel::Uniform(1, 10),
                    offline_delay: DelayModel::Uniform(10, 40),
                },
                ..FaustDriverConfig::default()
            },
            b"prop-monotone",
        );
        for (i, w) in faust::core::random_faust_workloads(n, 4, 0.5, seed).into_iter().enumerate() {
            driver.push_ops(c(i as u32), w);
        }
        let result = driver.run_until(8_000);
        prop_assert!(result.failures.is_empty());
        for i in 0..n {
            let mut last_stamp = 0;
            let mut last_cut = vec![0u64; n];
            for (_, note) in &result.notifications[i] {
                match note {
                    Notification::Completed(done) => {
                        prop_assert!(done.timestamp > last_stamp);
                        last_stamp = done.timestamp;
                    }
                    Notification::Stable(cut) => {
                        for (a, b) in last_cut.iter().zip(&cut.w) {
                            prop_assert!(b >= a, "cut regressed");
                        }
                        last_cut = cut.w.clone();
                    }
                    Notification::Failed(_) => unreachable!("correct server"),
                }
            }
        }
    }

    /// Detection completeness under random fork points and delays: a
    /// split-brain server is always detected by every client, eventually.
    #[test]
    fn forks_always_detected(seed in 0u64..2_000, fork_after in 0usize..6) {
        let n = 4;
        let server = SplitBrainServer::new(
            n,
            vec![vec![c(0), c(1)], vec![c(2), c(3)]],
            fork_after,
        );
        let mut driver = FaustDriver::new(
            n,
            Box::new(server),
            FaustDriverConfig {
                sim: SimConfig {
                    seed,
                    link_delay: DelayModel::Uniform(1, 10),
                    offline_delay: DelayModel::Uniform(10, 60),
                },
                ..FaustDriverConfig::default()
            },
            b"prop-detect",
        );
        // Every client keeps writing so both branches make progress.
        for i in 0..n as u32 {
            for s in 0..3 {
                driver.push_ops(c(i), vec![
                    FaustWorkloadOp::Write(Value::unique(i, s)),
                    FaustWorkloadOp::Pause(40),
                ]);
            }
        }
        let result = driver.run_until(60_000);
        for i in 0..n {
            prop_assert!(
                result.failure_time(c(i as u32)).is_some(),
                "client {i} never detected the fork (seed {seed}, fork_after {fork_after})"
            );
        }
    }
}
