//! The collaborative-editing scenario of Section 3 and Figure 2: Alice
//! and Bob work from Europe while Carlos (America) is asleep.
//!
//! Alice completes her operation with timestamp 10 and receives the
//! notification `stable_Alice([10, 8, 3])`: she is trivially consistent
//! with herself up to timestamp 10, consistent with Bob up to her
//! operation 8, and consistent with Carlos only up to her operation 3 —
//! Carlos went offline after that. Alice cannot tell whether Carlos is
//! merely asleep or the server is hiding his operations; when Carlos
//! reconnects, all operations eventually become stable at all clients,
//! because the server is in fact correct.
//!
//! Run with: `cargo run --example collaboration`

use faust::core::{FaustConfig, FaustDriver, FaustDriverConfig, FaustWorkloadOp, Notification};
use faust::sim::{DelayModel, SimConfig};
use faust::types::{ClientId, Value};
use faust::ustor::UstorServer;

const ALICE: ClientId = ClientId::new(0);
const BOB: ClientId = ClientId::new(1);
const CARLOS: ClientId = ClientId::new(2);

fn main() {
    let mut driver = FaustDriver::new(
        3,
        Box::new(UstorServer::new(3)),
        FaustDriverConfig {
            sim: SimConfig {
                seed: 2,
                link_delay: DelayModel::Fixed(1),
                offline_delay: DelayModel::Fixed(20),
            },
            faust: FaustConfig {
                // Probes kick in only after the scripted day is over, so
                // the cut [10, 8, 3] is reproduced exactly.
                probe_period: 2_000,
                dummy_reads: false,
                commit_mode: faust::ustor::CommitMode::Immediate,
            },
            tick_period: 25,
        },
        b"figure-2",
    );

    // Alice's working day: 10 operations, timestamps 1..=10.
    driver.push_ops(
        ALICE,
        vec![
            // t = 1, 2, 3: morning edits.
            FaustWorkloadOp::Write(Value::from("alice rev 1")),
            FaustWorkloadOp::Write(Value::from("alice rev 2")),
            FaustWorkloadOp::Write(Value::from("alice rev 3")),
            // Carlos reads rev 3 at ~t=60, then goes to sleep.
            FaustWorkloadOp::Pause(100),
            // t = 4: Alice sees Carlos's state (importing his version,
            // which covers her first three operations).
            FaustWorkloadOp::Read(CARLOS),
            // t = 5..8: afternoon edits.
            FaustWorkloadOp::Write(Value::from("alice rev 4")),
            FaustWorkloadOp::Write(Value::from("alice rev 5")),
            FaustWorkloadOp::Write(Value::from("alice rev 6")),
            FaustWorkloadOp::Write(Value::from("alice rev 7")),
            FaustWorkloadOp::Pause(150),
            // t = 9: Alice sees Bob's state (covering her ops up to 8).
            FaustWorkloadOp::Read(BOB),
            // t = 10: one more edit -> stable_Alice([10, 8, 3]).
            FaustWorkloadOp::Write(Value::from("alice rev 8")),
        ],
    );
    driver.push_ops(
        BOB,
        vec![
            // Bob catches up with Alice's work right after her t=8.
            FaustWorkloadOp::Pause(230),
            FaustWorkloadOp::Read(ALICE),
        ],
    );
    driver.push_ops(
        CARLOS,
        vec![
            // Carlos reads Alice's morning work…
            FaustWorkloadOp::Pause(55),
            FaustWorkloadOp::Read(ALICE),
            // …and then sleeps through the rest of the day.
            FaustWorkloadOp::Disconnect(8_000),
        ],
    );

    let result = driver.run_until(30_000);
    assert!(result.failures.is_empty(), "server is correct");

    println!("Alice's notifications:");
    let mut seen_fig2_cut = false;
    for (time, note) in &result.notifications[ALICE.index()] {
        match note {
            Notification::Completed(c) => {
                println!("  t={time:>5}  completed op with timestamp {}", c.timestamp);
            }
            Notification::Stable(cut) => {
                println!("  t={time:>5}  stable_Alice({cut})");
                if cut.w == vec![10, 8, 3] {
                    seen_fig2_cut = true;
                    println!("           ^^^ the stability cut of Figure 2");
                }
            }
            Notification::Failed(r) => println!("  t={time:>5}  FAIL: {r}"),
        }
    }

    assert!(
        seen_fig2_cut,
        "expected the exact Figure 2 cut [10,8,3]; got {:?}",
        result.last_cut(ALICE)
    );

    // After Carlos reconnects, the offline probe exchange spreads the
    // maximal version, and Alice's operations become stable with respect
    // to everyone.
    let final_cut = result.last_cut(ALICE).expect("cuts were issued");
    assert!(
        final_cut.w.iter().all(|&w| w >= 10),
        "eventual stability after Carlos returns; got {final_cut}"
    );
    println!("\nfinal cut: stable_Alice({final_cut}) — all 10 operations stable");
    println!("(Carlos reconnected; the server was correct all along.)");
}
