//! Property-based integration tests: randomized schedules and workloads
//! across the whole stack, validated against the Definition 5 properties.
//!
//! Property-style without an external framework: every case derives from a
//! seeded [`SmallRng`], so a failure reproduces exactly by case number.

use faust::consistency::{check_linearizability, check_wait_freedom, Budget, Verdict};
use faust::core::{FaustDriver, FaustDriverConfig, FaustWorkloadOp, Notification};
use faust::sim::{DelayModel, SimConfig, SmallRng};
use faust::types::{ClientId, Value};
use faust::ustor::adversary::SplitBrainServer;
use faust::ustor::{random_workloads, Driver, UstorServer};

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

/// USTOR with a correct server: every random schedule is linearizable
/// and wait-free (Definition 5 properties 1–2).
#[test]
fn ustor_random_schedules_linearizable() {
    for case in 0u64..24 {
        let mut rng = SmallRng::seed_from_u64(0xA11CE ^ case);
        let seed = rng.gen_range_inclusive(0, 4_999);
        let n = 2 + rng.gen_index(3); // 2..5
        let ops = 2 + rng.gen_index(4); // 2..6
        let write_fraction = 0.2 + 0.7 * rng.gen_f64();
        let mut driver = Driver::new(
            n,
            Box::new(UstorServer::new(n)),
            SimConfig {
                seed,
                link_delay: DelayModel::Uniform(1, 25),
                offline_delay: DelayModel::Fixed(50),
            },
            b"prop-lin",
        );
        for (i, w) in random_workloads(n, ops, write_fraction, seed)
            .into_iter()
            .enumerate()
        {
            driver.push_ops(c(i as u32), w);
        }
        let result = driver.run();
        assert!(!result.detected_fault(), "case {case}");
        assert!(check_wait_freedom(&result.history, &[]), "case {case}");
        assert_eq!(
            check_linearizability(&result.history, &Budget::default()),
            Verdict::Satisfied,
            "case {case}"
        );
    }
}

/// FAUST timestamps are monotone per client (Definition 5 property 4)
/// and stability cuts only ever grow.
#[test]
fn faust_timestamps_and_cuts_monotone() {
    for case in 0u64..12 {
        let mut rng = SmallRng::seed_from_u64(0x0DD5 ^ case);
        let seed = rng.gen_range_inclusive(0, 1_999);
        let n = 3;
        let mut driver = FaustDriver::new(
            n,
            Box::new(UstorServer::new(n)),
            FaustDriverConfig {
                sim: SimConfig {
                    seed,
                    link_delay: DelayModel::Uniform(1, 10),
                    offline_delay: DelayModel::Uniform(10, 40),
                },
                ..FaustDriverConfig::default()
            },
            b"prop-monotone",
        );
        for (i, w) in faust::core::random_faust_workloads(n, 4, 0.5, seed)
            .into_iter()
            .enumerate()
        {
            driver.push_ops(c(i as u32), w);
        }
        let result = driver.run_until(8_000);
        assert!(result.failures.is_empty(), "case {case}");
        for i in 0..n {
            let mut last_stamp = 0;
            let mut last_cut = vec![0u64; n];
            for (_, note) in &result.notifications[i] {
                match note {
                    Notification::Completed(done) => {
                        assert!(done.timestamp > last_stamp, "case {case}");
                        last_stamp = done.timestamp;
                    }
                    Notification::Stable(cut) => {
                        for (a, b) in last_cut.iter().zip(&cut.w) {
                            assert!(b >= a, "case {case}: cut regressed");
                        }
                        last_cut = cut.w.clone();
                    }
                    Notification::Failed(_) => unreachable!("correct server"),
                }
            }
        }
    }
}

/// Detection completeness under random fork points and delays: a
/// split-brain server is always detected by every client, eventually.
#[test]
fn forks_always_detected() {
    for case in 0u64..10 {
        let mut rng = SmallRng::seed_from_u64(0xF08C ^ case);
        let seed = rng.gen_range_inclusive(0, 1_999);
        let fork_after = rng.gen_index(6);
        let n = 4;
        let server = SplitBrainServer::new(n, vec![vec![c(0), c(1)], vec![c(2), c(3)]], fork_after);
        let mut driver = FaustDriver::new(
            n,
            Box::new(server),
            FaustDriverConfig {
                sim: SimConfig {
                    seed,
                    link_delay: DelayModel::Uniform(1, 10),
                    offline_delay: DelayModel::Uniform(10, 60),
                },
                ..FaustDriverConfig::default()
            },
            b"prop-detect",
        );
        // Every client keeps writing so both branches make progress.
        for i in 0..n as u32 {
            for s in 0..3 {
                driver.push_ops(
                    c(i),
                    vec![
                        FaustWorkloadOp::Write(Value::unique(i, s)),
                        FaustWorkloadOp::Pause(40),
                    ],
                );
            }
        }
        let result = driver.run_until(60_000);
        for i in 0..n {
            assert!(
                result.failure_time(c(i as u32)).is_some(),
                "client {i} never detected the fork (case {case}, seed {seed}, fork_after {fork_after})"
            );
        }
    }
}
