//! Kill-and-restart end-to-end tests over the TCP runtime: the full
//! FAUST stack (stability, probes, failure detection) runs against a
//! persistent server engine behind real loopback sockets; mid-run the
//! server process is killed — engine thread wound down, sockets torn
//! down, all volatile state dropped — and a *new* incarnation is
//! recovered from disk on a fresh socket, with the same FAUST clients
//! (state intact, protocol clock continuing) redialing it.
//!
//! The two claims of the persistent backend, end to end:
//!
//! * **Honest recovery is invisible**: the run completes across the
//!   restart with zero `fail` notifications and stability still
//!   advancing.
//! * **Truncated recovery is a detected violation**: if the log loses
//!   acknowledged records while the server is down, the restarted server
//!   presents a rolled-back schedule and clients flag it.

use faust::core::runtime::spawn_engine;
use faust::core::threaded_faust::{run_faust_session, FaustSession, ThreadedFaustConfig};
use faust::core::{FailReason, FaustConfig, ThreadedFaustReport, UserOp};
use faust::net::{tcp, ClientConn, TcpServerTransport};
use faust::store::{testutil, truncate_tail_records, Durability, PersistentBackend, StoreConfig};
use faust::types::{ClientId, Value};
use faust::ustor::ServerBackend;
use std::time::Duration;

fn c(i: u32) -> ClientId {
    ClientId::new(i)
}

/// CI-friendly timing; dummy reads are disabled so that when a phase's
/// deadline passes every client is quiescent (no operation in flight),
/// which is what makes a clean kill between phases possible — exactly
/// like an operator draining traffic before stopping a process.
fn config() -> ThreadedFaustConfig {
    ThreadedFaustConfig {
        faust: FaustConfig {
            dummy_reads: false,
            ..FaustConfig::default()
        },
        run_for: Duration::from_millis(1200),
        ..ThreadedFaustConfig::default()
    }
}

/// Stands up a server incarnation from `backend` on a fresh loopback
/// socket and runs one phase of `session` against it. When this returns,
/// that incarnation is dead: clients disconnected, engine thread joined.
fn run_phase(
    session: FaustSession,
    backend: &PersistentBackend,
    workloads: Vec<Vec<UserOp>>,
) -> (ThreadedFaustReport, FaustSession) {
    let n = session.num_clients();
    let transport = TcpServerTransport::bind("127.0.0.1:0", n).expect("bind loopback");
    let addr = transport.local_addr();
    let server = backend.build(n).expect("backend builds/recovers");
    let engine_thread = spawn_engine(n, server, transport);
    let conns: Vec<ClientConn> = (0..n)
        .map(|i| tcp::connect(addr, c(i as u32)).expect("connect"))
        .collect();
    run_faust_session(session, workloads, conns, config(), engine_thread)
}

fn phase1_workloads() -> Vec<Vec<UserOp>> {
    vec![
        vec![
            UserOp::Write(Value::from("a1")),
            UserOp::Write(Value::from("a2")),
        ],
        vec![UserOp::Write(Value::from("b1"))],
        vec![UserOp::Read(c(0))],
    ]
}

fn phase2_workloads() -> Vec<Vec<UserOp>> {
    vec![
        vec![UserOp::Read(c(1)), UserOp::Write(Value::from("a3"))],
        vec![UserOp::Read(c(0))],
        vec![UserOp::Write(Value::from("c1"))],
    ]
}

#[test]
fn server_killed_and_recovered_mid_run_is_invisible_to_clients() {
    let n = 3;
    let dir = testutil::scratch_dir("e2e-honest");
    // The real deployment configuration: fsync before acknowledging.
    let backend = PersistentBackend::new(&dir, StoreConfig::default());
    let session = FaustSession::new(n, &config(), b"crash-e2e");

    let (report1, session) = run_phase(session, &backend, phase1_workloads());
    assert!(report1.failures.is_empty(), "{:?}", report1.failures);
    assert_eq!(report1.completions(c(0)), 2);
    assert_eq!(report1.completions(c(1)), 1);
    assert_eq!(report1.completions(c(2)), 1);
    // <-- the server incarnation is dead here; only the log survives.

    let (report2, session) = run_phase(session, &backend, phase2_workloads());
    assert!(
        report2.failures.is_empty(),
        "honest recovery must be invisible over TCP: {:?}",
        report2.failures
    );
    assert_eq!(report2.completions(c(0)), 2);
    assert_eq!(report2.completions(c(1)), 1);
    assert_eq!(report2.completions(c(2)), 1);
    // The restarted engine really served the second phase...
    assert!(report2.engine_stats.submits >= 4);
    assert_eq!(report2.engine_stats.rejected, 0);
    // ...the read crossing the restart saw the pre-crash write...
    let cross_read = report2.notifications[1]
        .iter()
        .find_map(|(_, note)| match note {
            faust::core::Notification::Completed(done) => done.read_value.clone(),
            _ => None,
        })
        .expect("C1's read completed");
    assert_eq!(
        cross_read,
        Some(Value::from("a2")),
        "read after restart must see the last pre-crash value"
    );
    // ...and stability kept advancing across the restart.
    let cut = session.client(c(0)).stability_cut().w;
    assert!(
        cut.iter().all(|&w| w >= 1),
        "stability must survive the restart, got {cut:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Group commit with production-ish knobs scaled for a CI loopback run:
/// small batches, 2 ms max added latency.
fn group_store_config() -> StoreConfig {
    StoreConfig {
        durability: Durability::Group {
            max_records: 8,
            max_wait: Duration::from_millis(2),
        },
        snapshot_every: 0,
    }
}

#[test]
fn group_commit_server_killed_and_recovered_mid_run_is_invisible_to_clients() {
    // The Always-durability kill-and-restart guarantee must survive the
    // group-commit optimization unchanged: replies are only released
    // after their batch's fsync, so the killed incarnation's log holds
    // every acknowledged operation and recovery is invisible.
    let n = 3;
    let dir = testutil::scratch_dir("e2e-group-honest");
    let backend = PersistentBackend::new(&dir, group_store_config());
    let session = FaustSession::new(n, &config(), b"group-crash-e2e");

    let (report1, session) = run_phase(session, &backend, phase1_workloads());
    assert!(report1.failures.is_empty(), "{:?}", report1.failures);
    assert_eq!(report1.completions(c(0)), 2);
    assert_eq!(report1.completions(c(1)), 1);
    assert_eq!(report1.completions(c(2)), 1);

    let (report2, _session) = run_phase(session, &backend, phase2_workloads());
    assert!(
        report2.failures.is_empty(),
        "honest group-commit recovery must be invisible over TCP: {:?}",
        report2.failures
    );
    assert_eq!(report2.completions(c(0)), 2);
    assert_eq!(report2.completions(c(1)), 1);
    assert_eq!(report2.completions(c(2)), 1);
    let cross_read = report2.notifications[1]
        .iter()
        .find_map(|(_, note)| match note {
            faust::core::Notification::Completed(done) => done.read_value.clone(),
            _ => None,
        })
        .expect("C1's read completed");
    assert_eq!(
        cross_read,
        Some(Value::from("a2")),
        "read after restart must see the last pre-crash value"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn group_commit_truncated_log_is_still_detected_as_violation() {
    // Group commit must not weaken rollback detection: acknowledged
    // records removed from the log while the server is down are flagged
    // by clients exactly as under per-record fsync.
    let n = 3;
    let dir = testutil::scratch_dir("e2e-group-truncated");
    let backend = PersistentBackend::new(&dir, group_store_config());
    let session = FaustSession::new(n, &config(), b"group-rollback-e2e");

    let (report1, session) = run_phase(session, &backend, phase1_workloads());
    assert!(report1.failures.is_empty(), "{:?}", report1.failures);

    let kept = truncate_tail_records(&dir, 6).expect("tamper with the log");
    assert!(kept > 0, "a rollback, not a wipe");

    let (report2, _session) = run_phase(session, &backend, phase2_workloads());
    assert!(
        !report2.failures.is_empty(),
        "clients must detect the rolled-back schedule under group commit"
    );
    assert!(
        report2.failures.iter().any(|(_, reason)| matches!(
            reason,
            FailReason::Ustor(_) | FailReason::IncomparableVersions { .. }
        )),
        "expected a protocol-violation reason, got {:?}",
        report2.failures
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn server_recovered_from_truncated_log_is_detected_as_violation() {
    let n = 3;
    let dir = testutil::scratch_dir("e2e-truncated");
    // No auto-snapshots, so the whole acknowledged history sits in the
    // log — and the truncation below provably discards acknowledged
    // operations.
    let backend = PersistentBackend::new(
        &dir,
        StoreConfig {
            durability: Durability::Always,
            snapshot_every: 0,
        },
    );
    let session = FaustSession::new(n, &config(), b"rollback-e2e");

    let (report1, session) = run_phase(session, &backend, phase1_workloads());
    assert!(report1.failures.is_empty(), "{:?}", report1.failures);

    // While the server is down, its log loses the last 6 acknowledged
    // records — truncated at a record boundary, so the recovery itself
    // is locally flawless. This is the rollback attack (or a disk that
    // lied about fsync); either way the schedule the new incarnation
    // serves is a prefix of what clients have signed proof of.
    let kept = truncate_tail_records(&dir, 6).expect("tamper with the log");
    assert!(kept > 0, "a rollback, not a wipe");

    let (report2, _session) = run_phase(session, &backend, phase2_workloads());
    assert!(
        !report2.failures.is_empty(),
        "clients must detect the rolled-back schedule"
    );
    // At least one client pinned it as a protocol violation (the others
    // may learn of it via offline gossip instead).
    assert!(
        report2.failures.iter().any(|(_, reason)| matches!(
            reason,
            FailReason::Ustor(_) | FailReason::IncomparableVersions { .. }
        )),
        "expected a protocol-violation reason, got {:?}",
        report2.failures
    );
    std::fs::remove_dir_all(&dir).ok();
}
