//! USTOR — the weak fork-linearizable untrusted storage protocol of
//! *Fail-Aware Untrusted Storage* (Cachin, Keidar, Shraer; DSN 2009),
//! Algorithms 1 and 2.
//!
//! USTOR emulates `n` single-writer multi-reader registers on an untrusted
//! server. With a correct server every execution is linearizable and
//! wait-free; with a Byzantine server the protocol guarantees *weak
//! fork-linearizability*: views may fork, but each client's view preserves
//! causality, weak real-time order, and at-most-one-join — and any reply
//! inconsistent with those guarantees is detected and pinned on the server
//! ([`Fault`]).
//!
//! The protocol costs one round (SUBMIT → REPLY) per operation plus an
//! asynchronous COMMIT, with `O(n)`-bit message overhead.
//!
//! * [`UstorClient`] — the client state machine (Algorithm 1), sans-io.
//! * [`UstorServer`] — the correct server (Algorithm 2); the [`Server`]
//!   trait abstracts over correct and Byzantine implementations.
//! * [`adversary`] — Byzantine servers: split-brain forks, the Figure 3
//!   stale-read attack, reply tampering, and crash-silence.
//! * [`Driver`] — a deterministic simulation harness producing recorded
//!   histories for tests and experiments.
//!
//! # Invariants
//!
//! * Clients are sequential (one operation in flight) and halt forever on
//!   the first detected [`Fault`] — the paper's `output fail_i; halt`.
//! * All protocol code is scheme-agnostic: signatures come from
//!   `faust-crypto` behind the `Signer`/`Verifier` traits, and the same
//!   stack runs over HMAC or Ed25519 keys
//!   ([`Driver::new_with_scheme`]). Server-side ingress verification
//!   ([`IngressVerification`]) is *sound* only with a public-key
//!   registry — see `docs/trust-model.md` at the repository root.
//!
//! # Example
//!
//! ```
//! use faust_sim::SimConfig;
//! use faust_types::{ClientId, Value};
//! use faust_ustor::{Driver, UstorServer, WorkloadOp};
//!
//! let mut driver = Driver::new(2, Box::new(UstorServer::new(2)), SimConfig::default(), b"seed");
//! driver.push_op(ClientId::new(0), WorkloadOp::Write(Value::from("hello")));
//! driver.push_op(ClientId::new(1), WorkloadOp::Read(ClientId::new(0)));
//! let result = driver.run();
//! assert_eq!(result.incomplete_ops, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod client;
pub mod driver;
pub mod engine;
pub mod fault;
pub mod server;
pub mod shard;

pub use client::{
    BeginError, CommitMode, OpCompletion, PendingOpState, UstorClient, UstorClientState,
};
pub use driver::{random_workloads, Driver, RunResult, WorkloadOp};
pub use engine::{serve, EngineStats, IngressVerification, ServerEngine, Session, SharedVerifier};
pub use fault::{CrashRestartServer, Fault, RestartHook};
pub use server::{
    MemEntry, MemoryBackend, Server, ServerBackend, ServerState, SessionResume, UstorServer,
};
pub use shard::{ShardMember, ShardStatsHandle, ShardedEngine, ShardedServer, VolatileShard};
