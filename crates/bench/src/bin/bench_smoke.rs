//! CI bench smoke: a quick-mode pass over one representative metric per
//! subsystem (wire codec, crypto, protocol engine, persistence, offline
//! audit), emitted
//! as JSON so the CI `bench-smoke` job can archive a perf trajectory
//! point per commit.
//!
//! Quick mode trades precision for wall time (seconds, not minutes);
//! the numbers are for *trend* plots, not for the README's tables —
//! regenerate those with the full benches.
//!
//! Usage: `cargo run -p faust-bench --bin bench_smoke --release -- [--json PATH]`

use faust_audit::SessionHistory;
use faust_bench::pipelined_writes;
use faust_bench::timing::{bench_quiet_with, Measurement, TimingConfig};
use faust_crypto::sha256::sha256;
use faust_crypto::sig::{KeySet, SigContext, Signer};
use faust_crypto::SigScheme;
use faust_store::codec::LogRecord;
use faust_store::log::Wal;
use faust_store::testutil::{self, run_op};
use faust_store::{Durability, PersistentServer, StoreConfig};
use faust_types::{ClientId, UstorMsg, Value, Wire};
use faust_ustor::{serve, EngineStats, Server, ServerEngine, UstorClient, UstorServer};
use std::io::Write as _;
use std::time::{Duration, Instant};

fn clients(n: usize) -> Vec<UstorClient> {
    testutil::clients(n, b"bench-smoke")
}

/// One data point of the smoke report.
struct Point {
    name: &'static str,
    ns_per_iter: f64,
    per_second: f64,
}

impl From<(&'static str, Measurement)> for Point {
    fn from((name, m): (&'static str, Measurement)) -> Self {
        Point {
            name,
            ns_per_iter: m.ns_per_iter,
            per_second: m.per_second(),
        }
    }
}

/// One deterministic pipelined round through the engine: 4 clients × 8
/// pre-signed write submits in a single batch, drained per client. The
/// resulting counters are exact (no timing), so the JSON shows egress
/// batching efficacy — flushes (= would-be socket writes) vs frames —
/// per commit.
fn egress_stats() -> EngineStats {
    let n = 4;
    let keys = KeySet::generate(n, b"bench-smoke-egress");
    let mut engine = ServerEngine::new(n, Box::new(UstorServer::new(n)));
    let mut transport = faust_net::QueueTransport::new();
    for i in 0..n {
        let id = ClientId::new(i as u32);
        for submit in pipelined_writes(&keys, id, 8, 64) {
            transport.push_incoming(id, UstorMsg::Submit(submit));
        }
    }
    serve(&mut engine, &mut transport);
    assert_eq!(transport.drain_outgoing().count() as u64, 8 * n as u64);
    engine.stats().clone()
}

/// The reactor smoke metadata, or `()` where the reactor transport does
/// not exist (non-unix).
#[cfg(unix)]
type ReactorReport = ReactorSmoke;
#[cfg(not(unix))]
type ReactorReport = ();

fn collect(quick: TimingConfig) -> (Vec<Point>, ReactorReport) {
    let mut points: Vec<Point> = Vec::new();
    let mut add = |name: &'static str, m: Measurement| {
        println!(
            "{name:<44} {:>12.1} ns/iter {:>14.0} iter/s",
            m.ns_per_iter,
            m.per_second()
        );
        points.push(Point::from((name, m)));
    };

    // Wire codec: a REPLY for 8 clients, encode and decode.
    let mut cs = clients(8);
    let mut server = UstorServer::new(8);
    for i in 0..8usize {
        let submit = cs[i].begin_write(Value::unique(i as u32, 0)).unwrap();
        run_op(&mut server, &mut cs[i], submit);
    }
    let submit = cs[0].begin_read(ClientId::new(1)).unwrap();
    let (_, reply) = server.on_submit(ClientId::new(0), submit).pop().unwrap();
    let reply = UstorMsg::Reply(reply);
    let encoded = reply.encode();
    add(
        "wire: encode REPLY (n=8, read)",
        bench_quiet_with(quick, "", || {
            std::hint::black_box(reply.encode());
        }),
    );
    add(
        "wire: decode REPLY (n=8, read)",
        bench_quiet_with(quick, "", || {
            std::hint::black_box(UstorMsg::decode(&encoded).expect("valid"));
        }),
    );

    // Crypto: the store's checksum primitive and the HMAC hot path.
    let kib = vec![0xA5u8; 1024];
    add(
        "crypto: sha256 (1 KiB)",
        bench_quiet_with(quick, "", || {
            std::hint::black_box(sha256(&kib));
        }),
    );
    let keys = KeySet::generate(1, b"bench-smoke-sign");
    let keypair = keys.keypair(0).unwrap().clone();
    let msg = vec![0x5Au8; 64];
    add(
        "crypto: hmac sign (64 B)",
        bench_quiet_with(quick, "", || {
            std::hint::black_box(keypair.sign(SigContext::Submit, &msg));
        }),
    );

    // Protocol: one full write op through the transport-agnostic engine.
    let mut engine_cs = clients(1);
    let mut engine = ServerEngine::new(1, Box::new(UstorServer::new(1)));
    add(
        "engine: write op (submit+commit, n=1)",
        bench_quiet_with(quick, "", || {
            let submit = engine_cs[0].begin_write(Value::from("x")).unwrap();
            engine.enqueue(ClientId::new(0), UstorMsg::Submit(submit));
            engine.process_all();
            let (_, UstorMsg::Reply(reply)) = engine.poll_output().expect("reply") else {
                panic!("expected reply");
            };
            let (commit, _) = engine_cs[0].handle_reply(reply).expect("correct");
            engine.enqueue(
                ClientId::new(0),
                UstorMsg::Commit(commit.expect("immediate")),
            );
            engine.process_all();
        }),
    );

    // Store: raw append, logged op, and a 2k-record recovery.
    let no_sync = StoreConfig {
        durability: Durability::Never,
        snapshot_every: 0,
    };
    let dir = testutil::scratch_dir("smoke-append");
    let mut wal = Wal::create(&dir, 1, 0, false).expect("create");
    let mut wal_client = clients(1).remove(0);
    let record = LogRecord::Submit {
        from: ClientId::new(0),
        msg: wal_client.begin_write(Value::new(vec![0xA5; 64])).unwrap(),
    };
    add(
        "store: wal append fsync-off (64 B value)",
        bench_quiet_with(quick, "", || {
            wal.append(&record, false).expect("append");
        }),
    );
    drop(wal);
    std::fs::remove_dir_all(&dir).ok();

    let dir = testutil::scratch_dir("smoke-op");
    let mut persistent = PersistentServer::open(&dir, 1, no_sync.clone()).expect("open");
    let mut store_cs = clients(1);
    add(
        "store: logged write op fsync-off",
        bench_quiet_with(quick, "", || {
            let submit = store_cs[0].begin_write(Value::from("x")).unwrap();
            run_op(&mut persistent, &mut store_cs[0], submit);
        }),
    );
    drop(persistent);
    std::fs::remove_dir_all(&dir).ok();

    // The durability ladder: per-record fsync vs group commit (batch 8),
    // so every commit's JSON carries the amortization trend.
    let dir = testutil::scratch_dir("smoke-op-sync");
    let mut persistent = PersistentServer::open(
        &dir,
        1,
        StoreConfig {
            durability: Durability::Always,
            snapshot_every: 0,
        },
    )
    .expect("open");
    let mut store_cs = clients(1);
    add(
        "store: logged write op fsync-always",
        bench_quiet_with(quick, "", || {
            let submit = store_cs[0].begin_write(Value::from("x")).unwrap();
            run_op(&mut persistent, &mut store_cs[0], submit);
        }),
    );
    drop(persistent);
    std::fs::remove_dir_all(&dir).ok();

    const GROUP_BATCH: usize = 8;
    let dir = testutil::scratch_dir("smoke-op-group");
    let mut persistent = PersistentServer::open(
        &dir,
        GROUP_BATCH,
        StoreConfig {
            durability: Durability::Group {
                max_records: 10 * GROUP_BATCH as u64, // explicit flush decides
                max_wait: Duration::from_secs(3600),
            },
            snapshot_every: 0,
        },
    )
    .expect("open");
    let mut group_cs = clients(GROUP_BATCH);
    let mut round = 0u64;
    let per_round = bench_quiet_with(quick, "", || {
        faust_bench::group_commit_round(&mut persistent, &mut group_cs, round);
        round += 1;
    });
    drop(persistent);
    std::fs::remove_dir_all(&dir).ok();
    let per_op = Measurement {
        name: per_round.name,
        ns_per_iter: per_round.ns_per_iter / GROUP_BATCH as f64,
        batch: per_round.batch,
    };
    add("store: logged write op group-commit(8)", per_op);

    // Recovery: not an iteration bench — one timed scan+replay of a
    // 2000-record log, best of 3.
    let dir = testutil::scratch_dir("smoke-recover");
    {
        let mut server = PersistentServer::open(&dir, 2, no_sync.clone()).expect("open");
        let mut cs = clients(2);
        let mut round = 0u64;
        while server.next_seq() < 2_000 {
            let i = (round % 2) as usize;
            let submit = cs[i].begin_write(Value::unique(i as u32, round)).unwrap();
            run_op(&mut server, &mut cs[i], submit);
            round += 1;
        }
    }
    let mut best = f64::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let server = PersistentServer::recover(&dir, 2, no_sync.clone()).expect("recover");
        assert_eq!(server.next_seq(), 2_000);
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "{:<44} {:>12.1} ns/iter {:>14.0} iter/s",
        "store: recover 2000-record log",
        best,
        1e9 / best
    );
    points.push(Point {
        name: "store: recover 2000-record log",
        ns_per_iter: best,
        per_second: 1e9 / best,
    });

    // Offline audit: decode + replay + certify a 1000-record honest
    // session from its encoded FAUSTHIS container. Like recovery, not
    // an iteration bench — one timed full pass, best of 3, reported
    // per *record* so the point is a replay-throughput trend.
    const AUDIT_RECORDS: usize = 1_000;
    let mut audit_cs = clients(2);
    let mut audit_server = UstorServer::new(2);
    let mut records = Vec::with_capacity(AUDIT_RECORDS);
    for round in 0..(AUDIT_RECORDS as u64 / 2) {
        let i = (round % 2) as usize;
        let id = ClientId::new(i as u32);
        let submit = audit_cs[i]
            .begin_write(Value::unique(i as u32, round))
            .unwrap();
        records.push((
            records.len() as u64,
            LogRecord::Submit {
                from: id,
                msg: submit.clone(),
            },
        ));
        let (_, reply) = audit_server.on_submit(id, submit).pop().expect("reply");
        let (commit, _) = audit_cs[i].handle_reply(reply).expect("correct server");
        let commit = commit.expect("immediate mode");
        records.push((
            records.len() as u64,
            LogRecord::Commit {
                from: id,
                msg: commit.clone(),
            },
        ));
        audit_server.on_commit(id, commit);
    }
    let encoded = faust_audit::export_records(2, SigScheme::Hmac, None, records, None).encode();
    let audit_registry = KeySet::generate(2, b"bench-smoke").registry();
    let mut best = f64::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let session = SessionHistory::decode(&encoded).expect("container decodes");
        let report = faust_audit::audit(&session, &audit_registry).expect("audit runs");
        assert!(report.verdict.is_certified(), "honest session certifies");
        assert_eq!(report.records_replayed, AUDIT_RECORDS as u64);
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    let ns_per_record = best / AUDIT_RECORDS as f64;
    println!(
        "{:<44} {:>12.1} ns/iter {:>14.0} iter/s",
        "audit: replay+certify per record (1000)",
        ns_per_record,
        1e9 / ns_per_record
    );
    points.push(Point {
        name: "audit: replay+certify per record (1000)",
        ns_per_iter: ns_per_record,
        per_second: 1e9 / ns_per_record,
    });

    // End-to-end TCP: one small pipelined run (2 clients × 32 writes)
    // against a group-commit store over loopback — not an iteration
    // bench, a single timed pass (sockets + threads are too heavy to
    // batch in quick mode on this 1-CPU container).
    let group = Durability::Group {
        max_records: 64,
        max_wait: std::time::Duration::from_millis(2),
    };
    let (elapsed, stats) = faust_bench::tcp_pipelined_run(2, 32, 64, group);
    assert!(
        stats.flushes < stats.frames_out,
        "egress must coalesce: {} writes for {} frames",
        stats.flushes,
        stats.frames_out
    );
    let ops = 2.0 * 32.0;
    let raw_ns_per_op = elapsed.as_nanos() as f64 / ops;
    println!(
        "{:<44} {:>12.1} ns/iter {:>14.0} iter/s",
        "e2e: tcp write op, group-commit (2x32)",
        raw_ns_per_op,
        1e9 / raw_ns_per_op
    );
    points.push(Point {
        name: "e2e: tcp write op, group-commit (2x32)",
        ns_per_iter: raw_ns_per_op,
        per_second: 1e9 / raw_ns_per_op,
    });

    // The same load shape through the *public* client API: 2 pipelined
    // FaustHandle sessions (depth 32 — a full burst, matching the raw
    // point) over TCP against the same group-commit store. The delta to
    // the raw point is the cost of the full fail-aware client: signing,
    // reply verification, version folding, stability tracking. The
    // acceptance bound is 1.5× raw; best-of-two damps 1-CPU scheduler
    // noise.
    let mut handle_ns_per_op = f64::MAX;
    for _ in 0..2 {
        let (elapsed, hstats) = faust_bench::tcp_handle_run(2, 32, 32, 64, group);
        assert_eq!(
            hstats.submits, 64,
            "every handle op reached the server exactly once"
        );
        handle_ns_per_op = handle_ns_per_op.min(elapsed.as_nanos() as f64 / ops);
    }
    println!(
        "{:<44} {:>12.1} ns/iter {:>14.0} iter/s",
        "client_api: tcp pipelined FaustHandle (2x32)",
        handle_ns_per_op,
        1e9 / handle_ns_per_op
    );
    points.push(Point {
        name: "client_api: tcp pipelined FaustHandle (2x32)",
        ns_per_iter: handle_ns_per_op,
        per_second: 1e9 / handle_ns_per_op,
    });
    assert!(
        handle_ns_per_op <= 1.5 * raw_ns_per_op,
        "the full fail-aware client must stay within 1.5x of the raw \
         pipelined path: {handle_ns_per_op:.0} vs {raw_ns_per_op:.0} ns/op"
    );

    // The sharded serving path. First the same 2x32 load at width 1:
    // every message still takes the router + worker-thread detour, so
    // this point is pure sharding overhead and must stay within 1.5x of
    // the unsharded raw point (best-of-two damps scheduler noise).
    let mut sharded1_ns_per_op = f64::MAX;
    for _ in 0..2 {
        let (elapsed, sstats) = faust_bench::tcp_sharded_run(2, 32, 64, group, 1);
        assert_eq!(sstats.submits, 64, "every submit reached its owner shard");
        sharded1_ns_per_op = sharded1_ns_per_op.min(elapsed.as_nanos() as f64 / ops);
    }
    println!(
        "{:<44} {:>12.1} ns/iter {:>14.0} iter/s",
        "e2e: tcp write op, sharded(1) (2x32)",
        sharded1_ns_per_op,
        1e9 / sharded1_ns_per_op
    );
    points.push(Point {
        name: "e2e: tcp write op, sharded(1) (2x32)",
        ns_per_iter: sharded1_ns_per_op,
        per_second: 1e9 / sharded1_ns_per_op,
    });
    assert!(
        sharded1_ns_per_op <= 1.5 * raw_ns_per_op,
        "a single shard behind the router must stay within 1.5x of the \
         unsharded path: {sharded1_ns_per_op:.0} vs {raw_ns_per_op:.0} ns/op"
    );

    // Then the scaling point: 4 clients x 16 writes, registers spread
    // across all shards, at widths 1 and 4. The >= 1.5x speedup claim
    // only holds where the shards actually get cores, so it is asserted
    // only on machines with at least 4 available CPUs (CI containers
    // with 1 CPU still record both points for the trend).
    let wide_ops = 4.0 * 16.0;
    let wide = |shards: usize| {
        let mut best = f64::MAX;
        for _ in 0..2 {
            let (elapsed, sstats) = faust_bench::tcp_sharded_run(4, 16, 64, group, shards);
            assert_eq!(sstats.submits, 64, "every submit reached its owner shard");
            best = best.min(elapsed.as_nanos() as f64 / wide_ops);
        }
        best
    };
    let wide1_ns_per_op = wide(1);
    let wide4_ns_per_op = wide(4);
    for (name, ns) in [
        ("e2e: tcp write op, sharded(1) (4x16)", wide1_ns_per_op),
        ("e2e: tcp write op, sharded(4) (4x16)", wide4_ns_per_op),
    ] {
        println!("{name:<44} {ns:>12.1} ns/iter {:>14.0} iter/s", 1e9 / ns);
        points.push(Point {
            name,
            ns_per_iter: ns,
            per_second: 1e9 / ns,
        });
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if cores >= 4 {
        assert!(
            wide4_ns_per_op <= wide1_ns_per_op / 1.5,
            "4 shards on {cores} cores must deliver >= 1.5x ops/s over 1 \
             shard: {wide4_ns_per_op:.0} vs {wide1_ns_per_op:.0} ns/op"
        );
    } else {
        println!(
            "(sharded scaling assertion skipped: {cores} CPU(s) available, \
             shards cannot parallelize)"
        );
    }

    // Many-connection scale: 512 concurrent sequential clients, each
    // completing 2 full write ops, served by ONE reactor event-loop
    // thread (a thread-per-connection transport would need 512 readers).
    // A single timed pass; the reactor's own counters plus the process
    // peak RSS ride along in the JSON so the trend shows both throughput
    // and the memory bound at this connection count.
    #[cfg(unix)]
    let reactor = {
        const CONNS: usize = 512;
        const ROUNDS: u64 = 2;
        let (elapsed, estats, rstats) = faust_bench::tcp_reactor_run(CONNS, ROUNDS, 64, group);
        assert_eq!(
            estats.submits,
            CONNS as u64 * ROUNDS,
            "every op reached the engine exactly once"
        );
        assert_eq!(rstats.accepted, CONNS as u64, "no connection was shed");
        let total_ops = CONNS as u64 * ROUNDS;
        let ns_per_op = elapsed.as_nanos() as f64 / total_ops as f64;
        println!(
            "{:<44} {:>12.1} ns/iter {:>14.0} iter/s",
            "e2e: reactor tcp write op (512 conns)",
            ns_per_op,
            1e9 / ns_per_op
        );
        points.push(Point {
            name: "e2e: reactor tcp write op (512 conns)",
            ns_per_iter: ns_per_op,
            per_second: 1e9 / ns_per_op,
        });
        ReactorSmoke {
            conns: CONNS,
            ops: total_ops,
            peak_rss_kb: peak_rss_kb(),
            stats: rstats,
        }
    };
    #[cfg(not(unix))]
    let reactor = ();

    (points, reactor)
}

/// The reactor smoke point's metadata: connection scale, process peak
/// RSS, and the reactor's own counters.
#[cfg(unix)]
struct ReactorSmoke {
    conns: usize,
    ops: u64,
    peak_rss_kb: u64,
    stats: faust_net::ReactorStats,
}

/// Process peak resident set (`VmHWM`) in KiB, from `/proc/self/status`;
/// 0 where the proc filesystem is unavailable.
#[cfg(unix)]
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// The `"reactor"` JSON object: scale, peak RSS, and reactor counters.
#[cfg(unix)]
fn reactor_json(r: &ReactorReport) -> String {
    format!(
        "{{\"conns\": {}, \"ops\": {}, \"peak_rss_kb\": {}, \
         \"accepted\": {}, \"peak_conns\": {}, \"peak_buffered_bytes\": {}, \
         \"msgs_in\": {}, \"frames_out\": {}, \"socket_writes\": {}, \
         \"read_pauses\": {}, \"global_pauses\": {}}}",
        r.conns,
        r.ops,
        r.peak_rss_kb,
        r.stats.accepted,
        r.stats.peak_conns,
        r.stats.peak_buffered_bytes,
        r.stats.msgs_in,
        r.stats.frames_out,
        r.stats.socket_writes,
        r.stats.read_pauses,
        r.stats.global_pauses,
    )
}

#[cfg(not(unix))]
fn reactor_json(_r: &ReactorReport) -> String {
    "null".to_string()
}

/// Hand-rolled JSON (names are fixed ASCII literals, so no escaping is
/// needed beyond what the format string provides).
fn to_json(points: &[Point], egress: &EngineStats, reactor: &ReactorReport) -> String {
    let mut out = String::from("{\n  \"schema\": 6,\n  \"mode\": \"quick\",\n  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"per_second\": {:.1}}}{}\n",
            p.name,
            p.ns_per_iter,
            p.per_second,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"egress\": {{\"frames_out\": {}, \"flushes\": {}, \"max_egress_batch\": {}}},\n",
        egress.frames_out, egress.flushes, egress.max_egress_batch
    ));
    out.push_str(&format!("  \"reactor\": {}\n", reactor_json(reactor)));
    out.push_str("}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut json_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_smoke [--json PATH]");
                std::process::exit(2);
            }
        }
    }

    println!("FAUST bench smoke (quick mode)");
    println!("==============================");
    let (points, reactor) = collect(TimingConfig::quick());
    let egress = egress_stats();
    println!(
        "{:<44} {:>4} frames in {} flushes (max batch {})",
        "engine: egress coalescing (4 x 8 pipelined)",
        egress.frames_out,
        egress.flushes,
        egress.max_egress_batch
    );
    let json = to_json(&points, &egress, &reactor);
    match json_path {
        Some(path) => {
            let mut file = std::fs::File::create(&path).expect("create json output");
            file.write_all(json.as_bytes()).expect("write json output");
            println!("\nwrote {} results to {path}", points.len());
        }
        None => print!("\n{json}"),
    }
}
