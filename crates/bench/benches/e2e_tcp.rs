//! End-to-end TCP throughput: the whole submit → log → fsync → reply →
//! socket path under load, with group-commit fsyncs and coalesced
//! egress — the two batching layers PR 4 added — measured together over
//! real loopback sockets.
//!
//! Load model: `CLIENTS` connections each send a pre-signed pipelined
//! burst of `PIPELINE` write SUBMITs (see
//! [`faust_bench::pipelined_writes`]) and then read back exactly that
//! many REPLYs. The server runs the real `serve` loop over a
//! `PersistentServer`, so under `Durability::Group` replies travel in
//! per-batch bursts and the TCP transport coalesces each client's burst
//! into one socket write.
//!
//! Two assertions, checked on every run:
//!
//! * **egress coalescing is real**: the engine hands the transport
//!   strictly fewer per-client batches (`flushes` — one socket write
//!   each) than frames (`frames_out`);
//! * **group commit beats per-record fsync end to end**: the identical
//!   run against `Durability::Always` is slower.
//!
//! Run with: `cargo bench -p faust-bench --bench e2e_tcp`

use faust_bench::tcp_pipelined_run;
use faust_bench::timing::section;
use faust_store::Durability;
use faust_ustor::EngineStats;
use std::time::Duration;

const CLIENTS: usize = 4;
const PIPELINE: u64 = 64;
const VALUE_LEN: usize = 64;

fn report(label: &str, elapsed: Duration, stats: &EngineStats) -> f64 {
    let ops = (CLIENTS as u64 * PIPELINE) as f64;
    let ops_per_s = ops / elapsed.as_secs_f64();
    println!(
        "{label:<28} {ops_per_s:>10.0} ops/s   frames_out {:>5}   socket writes {:>5}   \
         max egress batch {:>3}",
        stats.frames_out, stats.flushes, stats.max_egress_batch
    );
    ops_per_s
}

fn main() {
    section("end-to-end TCP: pipelined writes, persistent server");
    println!(
        "{CLIENTS} clients x {PIPELINE} pipelined writes of {VALUE_LEN} B over loopback TCP\n"
    );

    // Warm the stack (connect paths, allocator, page cache) once.
    let _ = tcp_pipelined_run(CLIENTS, PIPELINE, VALUE_LEN, Durability::Never);

    let (always_elapsed, always_stats) =
        tcp_pipelined_run(CLIENTS, PIPELINE, VALUE_LEN, Durability::Always);
    let always_ops = report("fsync-always", always_elapsed, &always_stats);

    let (group_elapsed, group_stats) = tcp_pipelined_run(
        CLIENTS,
        PIPELINE,
        VALUE_LEN,
        Durability::Group {
            max_records: 64,
            max_wait: Duration::from_millis(2),
        },
    );
    let group_ops = report("group-commit (64, 2ms)", group_elapsed, &group_stats);

    println!(
        "\ngroup-commit end-to-end speedup: {:.2}x",
        group_ops / always_ops
    );

    // The acceptance assertion: under group commit, replies leave in
    // per-client coalesced batches — strictly fewer socket writes than
    // frames sent.
    assert_eq!(
        group_stats.frames_out,
        (CLIENTS as u64) * PIPELINE,
        "every submit got exactly one reply"
    );
    assert!(
        group_stats.flushes < group_stats.frames_out,
        "coalesced egress must issue fewer socket writes than frames: \
         {} writes for {} frames",
        group_stats.flushes,
        group_stats.frames_out
    );
    assert!(
        group_stats.max_egress_batch > 1,
        "at least one multi-frame egress batch must have formed"
    );
    // The end-to-end wall-time win is asserted only when requested
    // (FAUST_BENCH_STRICT=1): it presumes fsync is expensive, which a
    // CI runner's filesystem (overlayfs, write-back volumes) may make
    // near-free and the two policies then legitimately converge. The
    // structural assertions above are deterministic and always run; the
    // store microbench asserts the fsync-amortization bound itself.
    if std::env::var("FAUST_BENCH_STRICT").as_deref() == Ok("1") {
        assert!(
            group_ops > always_ops * 1.5,
            "group commit must clearly beat fsync-always end to end: \
             {group_ops:.0} vs {always_ops:.0} ops/s"
        );
    }
}
