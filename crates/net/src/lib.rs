//! Transport layer for the USTOR server engine.
//!
//! The protocol state machines in `faust-ustor` are sans-io; this crate
//! defines how `(client, message)` pairs physically reach the server-side
//! engine and how replies travel back. One trait, three implementations:
//!
//! * [`queue`] — a deterministic, single-threaded queue pair. This is the
//!   adapter the discrete-event simulator drivers use: the simulator
//!   delivers a message, pushes it into the queue transport, lets the
//!   engine drain it, and forwards the outputs back into virtual time.
//!   No threads, no syscalls, bit-for-bit reproducible.
//! * [`channel`] — in-process `std::sync::mpsc` channels, for
//!   thread-per-client runtimes on one machine.
//! * [`tcp`] — length-prefixed frames over loopback or real TCP
//!   (`std::net`), using the stream framing of [`faust_types::frame`].
//!   One reader thread per connection.
//! * [`reactor`] (unix) — the same wire protocol on a single
//!   readiness-driven event loop with explicit admission control
//!   (bounded ingress queues, connection/memory caps with shed-on-accept,
//!   slow-consumer excision): connections ≫ threads.
//!
//! The client side mirrors the server side: [`ClientTransport`] is the
//! trait a client session drives, and [`ClientConn`] implements it for
//! both the channel and the TCP transport — runtimes (and `faust-core`'s
//! `FaustHandle`) are written once and run over channels or TCP
//! unchanged.
//!
//! # Invariants
//!
//! * Transports move `(ClientId, UstorMsg)` pairs verbatim: no
//!   reordering within one client's stream, no inspection — signatures
//!   and their verification are the business of `faust-crypto` and the
//!   engine's ingress policy, never the transport's.
//! * Sends are best-effort (a departed client's replies are dropped);
//!   receives surface closure as [`Incoming::Closed`] exactly once all
//!   clients are gone.
//!
//! # Example
//!
//! The deterministic queue pair, standing where the simulator would:
//!
//! ```
//! use faust_net::{Incoming, QueueTransport, ServerTransport};
//! use faust_types::{ClientId, UstorMsg, Version, CommitMsg};
//! use faust_crypto::Signature;
//!
//! let commit = CommitMsg {
//!     version: Version::initial(2),
//!     commit_sig: Signature::garbage(),
//!     proof_sig: Signature::garbage(),
//! };
//! let mut t = QueueTransport::new();
//! t.push_incoming(ClientId::new(0), UstorMsg::Commit(commit.clone()));
//! // The engine side drains it...
//! let Incoming::Msg(from, _msg) = t.recv() else { panic!("queued above") };
//! assert_eq!(from, ClientId::new(0));
//! // ...and can address replies back at clients.
//! t.send(ClientId::new(0), UstorMsg::Commit(commit));
//! assert_eq!(t.drain_outgoing().count(), 1);
//! ```

// `deny` rather than `forbid`: the reactor's raw epoll/poll syscall shim
// (`reactor::sys`) is the crate's one audited `allow(unsafe_code)` scope.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod chaos;
pub mod conn;
pub mod dial;
pub mod queue;
#[cfg(unix)]
pub mod reactor;
pub mod router;
pub mod tcp;

pub use channel::ChannelServerTransport;
pub use chaos::{KillSwitch, KillableTransport};
pub use conn::{ClientConn, ClientTransport, ConnSender, TransportClosed};
pub use dial::{ChannelDialer, ClientDialer, TcpDialer};
pub use queue::QueueTransport;
#[cfg(unix)]
pub use reactor::{DisconnectReason, ReactorConfig, ReactorStats, ReactorTransport};
pub use router::{shard_of, ShardRouter};
pub use tcp::{TcpServerTransport, TcpSever, MAX_CLIENTS};

use faust_types::{ClientId, UstorMsg};
use std::time::Instant;

/// One receive attempt on a server-side transport.
#[derive(Debug)]
pub enum Incoming {
    /// A message from a client.
    Msg(ClientId, UstorMsg),
    /// Nothing available right now (only returned by non-blocking
    /// transports such as [`QueueTransport`]); the caller should return
    /// control to whatever schedules deliveries.
    Idle,
    /// A [`ServerTransport::recv_deadline`] call reached its deadline
    /// with no traffic. The caller should run its due work (a durability
    /// flush) and come back; the transport is still open.
    TimedOut,
    /// The transport is finished: every client connection has ended.
    Closed,
}

/// Server side of a transport: a source of client messages and a sink for
/// client-addressed replies.
///
/// Blocking implementations ([`channel`], [`tcp`]) park in
/// [`ServerTransport::recv`] until traffic arrives and never return
/// [`Incoming::Idle`]; the deterministic [`queue`] implementation returns
/// `Idle` when drained. Sends are best-effort: a message to a departed
/// client is silently dropped, exactly as a real server cannot force a
/// client to stay connected.
pub trait ServerTransport {
    /// Receives the next client message, `Idle`, or `Closed`.
    fn recv(&mut self) -> Incoming;

    /// Receives like [`ServerTransport::recv`], but returns
    /// [`Incoming::TimedOut`] once `deadline` passes with nothing to
    /// deliver — how a serve loop honours a group-commit flush deadline
    /// without stranding held replies behind a blocking receive.
    ///
    /// The default simply delegates to `recv`, which is correct for
    /// non-blocking transports (they return [`Incoming::Idle`] instead
    /// of parking); blocking transports override it with a real timed
    /// wait.
    fn recv_deadline(&mut self, deadline: Instant) -> Incoming {
        let _ = deadline;
        self.recv()
    }

    /// Non-blocking receive: a message if one is already available,
    /// otherwise `Idle` (or `Closed`). Engine loops use this to gather a
    /// whole batch of already-arrived traffic before processing.
    fn try_recv(&mut self) -> Incoming;

    /// Sends `msg` to client `to` (best-effort).
    fn send(&mut self, to: ClientId, msg: UstorMsg);

    /// Sends a whole batch of messages to client `to` (best-effort),
    /// preserving their order.
    ///
    /// The default loops over [`ServerTransport::send`]; transports with
    /// per-message syscall cost override it to coalesce the batch into
    /// one write — the TCP transport encodes every frame into a single
    /// reused buffer and issues one `write_all` per client per batch.
    fn send_batch(&mut self, to: ClientId, msgs: Vec<UstorMsg>) {
        for msg in msgs {
            self.send(to, msg);
        }
    }
}
