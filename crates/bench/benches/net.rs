//! Transport benchmark: end-to-end USTOR operation throughput through the
//! server engine over the in-process channel transport and over loopback
//! TCP with length-prefixed framing — the cost of putting a real network
//! edge in front of the same engine.

use faust_core::runtime::{run_threaded_over, spawn_engine, ThreadedOp, ThreadedReport};
use faust_net::{channel, tcp, ClientConn, TcpServerTransport};
use faust_types::{ClientId, Value};
use faust_ustor::UstorServer;
use std::time::Instant;

const OPS_PER_CLIENT: u64 = 400;

fn workloads(n: usize) -> Vec<Vec<ThreadedOp>> {
    (0..n)
        .map(|i| {
            (0..OPS_PER_CLIENT)
                .map(|s| {
                    if s % 4 == 3 && n > 1 {
                        ThreadedOp::Read(ClientId::new(((i as u32) + 1) % n as u32))
                    } else {
                        ThreadedOp::Write(Value::unique(i as u32, s))
                    }
                })
                .collect()
        })
        .collect()
}

fn run_channel(n: usize) -> ThreadedReport {
    let (transport, conns) = channel::pair(n);
    let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
    run_threaded_over(n, workloads(n), conns, b"bench-net", engine)
}

fn run_tcp(n: usize) -> ThreadedReport {
    let transport = TcpServerTransport::bind("127.0.0.1:0", n).expect("bind loopback");
    let addr = transport.local_addr();
    let engine = spawn_engine(n, Box::new(UstorServer::new(n)), transport);
    let conns: Vec<ClientConn> = (0..n)
        .map(|i| tcp::connect(addr, ClientId::new(i as u32)).expect("connect"))
        .collect();
    run_threaded_over(n, workloads(n), conns, b"bench-net", engine)
}

/// Times `f` three times and reports the best ops/s (threaded runs are
/// long enough that best-of is stable).
fn measure(name: &str, n: usize, f: impl Fn(usize) -> ThreadedReport) {
    let total_ops = (n as u64 * OPS_PER_CLIENT) as f64;
    let mut best = f64::MIN;
    let mut last = None;
    for _ in 0..3 {
        let start = Instant::now();
        let report = f(n);
        let secs = start.elapsed().as_secs_f64();
        assert!(report.faults.is_empty(), "faults during bench");
        assert_eq!(report.completions.iter().sum::<usize>() as f64, total_ops);
        best = best.max(total_ops / secs);
        last = Some(report);
    }
    let report = last.expect("three runs");
    println!(
        "{:<44} {:>12.0} ops/s   (max batch {})",
        name, best, report.engine_stats.max_batch
    );
}

fn main() {
    println!("\n== engine throughput by transport ({OPS_PER_CLIENT} ops/client) ==");
    for n in [1usize, 4, 8] {
        measure(&format!("channel_transport/n{n}"), n, run_channel);
    }
    for n in [1usize, 4, 8] {
        measure(&format!("tcp_loopback_transport/n{n}"), n, run_tcp);
    }
}
