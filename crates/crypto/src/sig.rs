//! The signature abstraction of the FAUST paper.
//!
//! USTOR attaches four kinds of signatures to its messages (Section 5 of the
//! paper): SUBMIT-signatures on invocation tuples, DATA-signatures binding a
//! timestamp to the hash of the last written value, COMMIT-signatures on
//! versions, and PROOF-signatures on digest-vector entries. All of them are
//! modelled here as domain-separated signatures over byte strings.
//!
//! # Scheme
//!
//! The default scheme is HMAC-SHA256 with one secret key per client. Setup
//! ([`KeySet::generate`]) derives the per-client keys and yields:
//!
//! * one [`Keypair`] per client — the only value capable of producing that
//!   client's signatures, and
//! * a shared [`VerifierRegistry`] — handed to *clients only*, never to the
//!   server, which therefore cannot forge any signature (it only ever sees
//!   opaque [`Signature`] bytes).
//!
//! The [`Signer`] and [`Verifier`] traits decouple the protocol from this
//! particular scheme; a real asymmetric scheme can be dropped in without
//! changing protocol code.

use crate::hmac::{constant_time_eq, hmac_sha256};
use crate::sha256::{sha256, Digest};
use std::fmt;
use std::sync::Arc;

/// Index of a client, `0 ≤ id < n`.
///
/// The paper numbers clients `C_1..C_n`; this implementation uses zero-based
/// indices throughout.
pub type ClientIndex = u32;

/// Domain-separation tag for the four signature roles used by USTOR plus
/// the offline-message role used by FAUST.
///
/// Mixing a context byte into every signed message ensures a signature
/// produced for one role can never be replayed in another (e.g. a faulty
/// server cannot present a DATA-signature where a COMMIT-signature is
/// expected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigContext {
    /// Signature on an invocation tuple in a SUBMIT message.
    Submit,
    /// Signature binding a timestamp to the hash of the written value.
    Data,
    /// Signature on a version `(V, M)` in a COMMIT message.
    Commit,
    /// Signature on the signer's own digest-vector entry `M_i[i]`.
    Proof,
    /// Signature on offline client-to-client messages (FAUST layer).
    Offline,
}

impl SigContext {
    /// The tag byte mixed into signed messages.
    pub fn tag(self) -> u8 {
        match self {
            SigContext::Submit => 1,
            SigContext::Data => 2,
            SigContext::Commit => 3,
            SigContext::Proof => 4,
            SigContext::Offline => 5,
        }
    }
}

/// An opaque signature value.
///
/// The server stores and forwards signatures without being able to create
/// or validate them.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(Digest);

impl Signature {
    /// Byte length of an encoded signature.
    pub const LEN: usize = crate::sha256::DIGEST_LEN;

    /// Returns the signature bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// Builds a signature from raw bytes (used when decoding wire messages).
    pub fn from_bytes(bytes: [u8; Self::LEN]) -> Self {
        Signature(Digest::from_bytes(bytes))
    }

    /// A syntactically valid but never-verifying placeholder, useful for
    /// modelling a Byzantine server that fabricates messages.
    pub fn garbage() -> Self {
        Signature(sha256(b"garbage signature"))
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({}..)", &self.0.to_hex()[..8])
    }
}

/// Anything able to produce signatures on behalf of one client.
pub trait Signer {
    /// The index of the client this signer signs for.
    fn signer_index(&self) -> ClientIndex;

    /// Signs `message` under domain `context`.
    fn sign(&self, context: SigContext, message: &[u8]) -> Signature;
}

/// One signature check inside a batch handed to [`Verifier::verify_batch`].
#[derive(Debug, Clone)]
pub struct VerifyItem {
    /// The claimed signer.
    pub signer: ClientIndex,
    /// The signature's domain.
    pub context: SigContext,
    /// The canonical signed bytes.
    pub message: Vec<u8>,
    /// The signature to check.
    pub sig: Signature,
}

/// Anything able to verify any client's signatures.
pub trait Verifier {
    /// Returns `true` iff `sig` is a valid signature by client `signer` on
    /// `message` under domain `context`.
    fn verify(
        &self,
        signer: ClientIndex,
        context: SigContext,
        message: &[u8],
        sig: &Signature,
    ) -> bool;

    /// Verifies a whole batch, returning one verdict per item (same
    /// order).
    ///
    /// The default implementation just loops over [`Verifier::verify`];
    /// schemes with per-signer setup cost override it to amortize that
    /// cost across the batch — [`VerifierRegistry`] prepares each
    /// signer's HMAC key schedule once per batch, which is what the
    /// server engine's batched SUBMIT verification relies on for its
    /// speedup.
    fn verify_batch(&self, items: &[VerifyItem]) -> Vec<bool> {
        items
            .iter()
            .map(|item| self.verify(item.signer, item.context, &item.message, &item.sig))
            .collect()
    }
}

/// Per-client secret key material. Never leaves this module.
#[derive(Clone)]
struct SecretKey([u8; 32]);

impl SecretKey {
    fn derive(seed: &[u8], index: ClientIndex) -> Self {
        let mut h = crate::sha256::Sha256::new();
        h.update(b"faust-key-derivation/v1");
        h.update(seed);
        h.update(&index.to_be_bytes());
        SecretKey(h.finalize().into_bytes())
    }
}

/// A client's signing capability.
///
/// Only the holder of a `Keypair` can produce that client's signatures; the
/// untrusted server is never given one.
#[derive(Clone)]
pub struct Keypair {
    index: ClientIndex,
    secret: SecretKey,
}

impl fmt::Debug for Keypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Keypair")
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

impl Signer for Keypair {
    fn signer_index(&self) -> ClientIndex {
        self.index
    }

    fn sign(&self, context: SigContext, message: &[u8]) -> Signature {
        Signature(tagged_mac(&self.secret, context, message))
    }
}

fn tagged_mac(secret: &SecretKey, context: SigContext, message: &[u8]) -> Digest {
    let mut tagged = Vec::with_capacity(1 + message.len());
    tagged.push(context.tag());
    tagged.extend_from_slice(message);
    hmac_sha256(&secret.0, &tagged)
}

/// Verification keys for all `n` clients.
///
/// Distributed to clients at setup; cheap to clone (shared storage). The
/// server never receives one, which is what makes its signatures
/// unforgeable within this model.
#[derive(Clone)]
pub struct VerifierRegistry {
    keys: Arc<[SecretKey]>,
}

impl fmt::Debug for VerifierRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerifierRegistry")
            .field("clients", &self.keys.len())
            .finish_non_exhaustive()
    }
}

impl VerifierRegistry {
    /// Number of clients the registry can verify for.
    pub fn num_clients(&self) -> usize {
        self.keys.len()
    }
}

impl Verifier for VerifierRegistry {
    fn verify(
        &self,
        signer: ClientIndex,
        context: SigContext,
        message: &[u8],
        sig: &Signature,
    ) -> bool {
        let Some(secret) = self.keys.get(signer as usize) else {
            return false;
        };
        let expect = tagged_mac(secret, context, message);
        constant_time_eq(&expect, &sig.0)
    }

    fn verify_batch(&self, items: &[VerifyItem]) -> Vec<bool> {
        // Amortize the HMAC key schedule: each distinct signer in the
        // batch pays for its padded-key midstates once, after which every
        // item costs only the message compressions. Protocol messages are
        // short, so this is close to a 2× saving on the SUBMIT hot path.
        let mut prepared: Vec<Option<crate::hmac::PreparedHmac>> = vec![None; self.keys.len()];
        items
            .iter()
            .map(|item| {
                let Some(secret) = self.keys.get(item.signer as usize) else {
                    return false;
                };
                let mac = prepared[item.signer as usize]
                    .get_or_insert_with(|| crate::hmac::PreparedHmac::new(&secret.0));
                let expect = mac.mac(&[&[item.context.tag()], &item.message]);
                constant_time_eq(&expect, &item.sig.0)
            })
            .collect()
    }
}

/// The trusted-setup artifact: every client's [`Keypair`] plus the shared
/// [`VerifierRegistry`].
///
/// # Example
///
/// ```
/// use faust_crypto::sig::{KeySet, SigContext, Signer, Verifier};
///
/// let keys = KeySet::generate(2, b"seed");
/// let c0 = keys.keypair(0).expect("client 0");
/// let sig = c0.sign(SigContext::Commit, b"version bytes");
/// assert!(keys.registry().verify(0, SigContext::Commit, b"version bytes", &sig));
/// // A different message or signer index does not verify.
/// assert!(!keys.registry().verify(0, SigContext::Commit, b"other", &sig));
/// assert!(!keys.registry().verify(1, SigContext::Commit, b"version bytes", &sig));
/// ```
#[derive(Debug, Clone)]
pub struct KeySet {
    keypairs: Vec<Keypair>,
    registry: VerifierRegistry,
}

impl KeySet {
    /// Deterministically generates keys for `n` clients from `seed`.
    ///
    /// The same `(n, seed)` always yields the same keys, keeping simulated
    /// executions reproducible.
    pub fn generate(n: usize, seed: &[u8]) -> Self {
        let secrets: Vec<SecretKey> = (0..n as ClientIndex)
            .map(|i| SecretKey::derive(seed, i))
            .collect();
        let keypairs = secrets
            .iter()
            .enumerate()
            .map(|(i, secret)| Keypair {
                index: i as ClientIndex,
                secret: secret.clone(),
            })
            .collect();
        KeySet {
            keypairs,
            registry: VerifierRegistry {
                keys: secrets.into(),
            },
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.keypairs.len()
    }

    /// The signing keypair of client `index`, if it exists.
    pub fn keypair(&self, index: ClientIndex) -> Option<&Keypair> {
        self.keypairs.get(index as usize)
    }

    /// The shared verification registry (clients only).
    pub fn registry(&self) -> VerifierRegistry {
        self.registry.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let keys = KeySet::generate(4, b"t");
        let reg = keys.registry();
        for i in 0..4 {
            let kp = keys.keypair(i).unwrap();
            let sig = kp.sign(SigContext::Submit, b"hello");
            assert!(reg.verify(i, SigContext::Submit, b"hello", &sig));
        }
    }

    #[test]
    fn wrong_message_rejected() {
        let keys = KeySet::generate(2, b"t");
        let sig = keys.keypair(0).unwrap().sign(SigContext::Data, b"m1");
        assert!(!keys.registry().verify(0, SigContext::Data, b"m2", &sig));
    }

    #[test]
    fn wrong_signer_rejected() {
        let keys = KeySet::generate(2, b"t");
        let sig = keys.keypair(0).unwrap().sign(SigContext::Data, b"m");
        assert!(!keys.registry().verify(1, SigContext::Data, b"m", &sig));
    }

    #[test]
    fn wrong_context_rejected() {
        let keys = KeySet::generate(1, b"t");
        let sig = keys.keypair(0).unwrap().sign(SigContext::Data, b"m");
        assert!(!keys.registry().verify(0, SigContext::Commit, b"m", &sig));
        assert!(!keys.registry().verify(0, SigContext::Proof, b"m", &sig));
    }

    #[test]
    fn out_of_range_signer_rejected() {
        let keys = KeySet::generate(2, b"t");
        let sig = keys.keypair(0).unwrap().sign(SigContext::Data, b"m");
        assert!(!keys.registry().verify(99, SigContext::Data, b"m", &sig));
    }

    #[test]
    fn garbage_signature_rejected() {
        let keys = KeySet::generate(2, b"t");
        assert!(!keys
            .registry()
            .verify(0, SigContext::Data, b"m", &Signature::garbage()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = KeySet::generate(3, b"same-seed");
        let b = KeySet::generate(3, b"same-seed");
        let sig_a = a.keypair(1).unwrap().sign(SigContext::Proof, b"x");
        let sig_b = b.keypair(1).unwrap().sign(SigContext::Proof, b"x");
        assert_eq!(sig_a, sig_b);
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = KeySet::generate(1, b"seed-a");
        let b = KeySet::generate(1, b"seed-b");
        let sig = a.keypair(0).unwrap().sign(SigContext::Proof, b"x");
        assert!(!b.registry().verify(0, SigContext::Proof, b"x", &sig));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let keys = KeySet::generate(1, b"t");
        let sig = keys.keypair(0).unwrap().sign(SigContext::Submit, b"m");
        let mut raw = [0u8; Signature::LEN];
        raw.copy_from_slice(sig.as_bytes());
        assert_eq!(Signature::from_bytes(raw), sig);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    fn batch(n: u32, per_signer: u64) -> (VerifierRegistry, Vec<VerifyItem>) {
        let keys = KeySet::generate(n as usize, b"batch");
        let mut items = Vec::new();
        for i in 0..n {
            let kp = keys.keypair(i).unwrap();
            for s in 0..per_signer {
                let message = format!("message {i}/{s}").into_bytes();
                let sig = kp.sign(SigContext::Submit, &message);
                items.push(VerifyItem {
                    signer: i,
                    context: SigContext::Submit,
                    message,
                    sig,
                });
            }
        }
        (keys.registry(), items)
    }

    #[test]
    fn batch_agrees_with_per_item_verification() {
        let (reg, mut items) = batch(4, 5);
        // Corrupt a few items in distinctive ways.
        items[3].sig = Signature::garbage();
        items[7].message.push(0xFF);
        items[11].signer = (items[11].signer + 1) % 4;
        items[13].context = SigContext::Data;
        let per_item: Vec<bool> = items
            .iter()
            .map(|it| reg.verify(it.signer, it.context, &it.message, &it.sig))
            .collect();
        assert_eq!(reg.verify_batch(&items), per_item);
        assert_eq!(per_item.iter().filter(|ok| !**ok).count(), 4);
    }

    #[test]
    fn batch_rejects_unknown_signer() {
        let (reg, mut items) = batch(2, 1);
        items[0].signer = 99;
        assert_eq!(reg.verify_batch(&items), vec![false, true]);
    }

    #[test]
    fn empty_batch_is_empty() {
        let (reg, _) = batch(2, 1);
        assert!(reg.verify_batch(&[]).is_empty());
    }
}
