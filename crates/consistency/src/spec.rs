//! The sequential specification of `n` SWMR registers.
//!
//! "Each read operation returns the value written by the most recent
//! preceding write operation, if there is one, and the initial value `⊥`
//! otherwise" (Section 2 of the paper).

use faust_types::{ClientId, OpKind, OpRecord, Value};
use std::collections::HashMap;

/// Why a candidate sequential execution violates the register spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A read returned a value different from the register's content at
    /// that point of the sequence.
    WrongValue {
        /// The offending operation.
        op: faust_types::OpId,
        /// What the register held.
        expected: Option<Value>,
        /// What the read returned.
        returned: Option<Value>,
    },
    /// A non-read operation had a read outcome or vice versa (corrupt
    /// record).
    MalformedRecord(faust_types::OpId),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::WrongValue {
                op,
                expected,
                returned,
            } => write!(
                f,
                "{op} returned {returned:?} but the register held {expected:?}"
            ),
            SpecError::MalformedRecord(op) => write!(f, "{op} is malformed"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Incremental simulator of the register spec, used by the view search to
/// prune illegal prefixes early.
#[derive(Debug, Clone, Default)]
pub struct RegisterSim {
    contents: HashMap<ClientId, Value>,
}

impl RegisterSim {
    /// Fresh registers, all `⊥`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one operation; checks reads against register contents.
    ///
    /// # Errors
    ///
    /// [`SpecError::WrongValue`] if a read returns the wrong value.
    pub fn apply(&mut self, op: &OpRecord) -> Result<(), SpecError> {
        match op.kind {
            OpKind::Write => {
                let value = op
                    .written
                    .clone()
                    .ok_or(SpecError::MalformedRecord(op.id))?;
                self.contents.insert(op.register, value);
                Ok(())
            }
            OpKind::Read => {
                let expected = self.contents.get(&op.register);
                let returned = match &op.outcome {
                    faust_types::history::OpOutcome::ReadReturned(v) => v.as_ref(),
                    // A pending read imposes no constraint.
                    faust_types::history::OpOutcome::Pending => return Ok(()),
                    _ => return Err(SpecError::MalformedRecord(op.id)),
                };
                if expected == returned {
                    Ok(())
                } else {
                    Err(SpecError::WrongValue {
                        op: op.id,
                        expected: expected.cloned(),
                        returned: returned.cloned(),
                    })
                }
            }
        }
    }
}

/// Checks that an entire sequence satisfies the register spec.
///
/// # Errors
///
/// Returns the first [`SpecError`] encountered.
pub fn check_sequence<'a>(ops: impl IntoIterator<Item = &'a OpRecord>) -> Result<(), SpecError> {
    let mut sim = RegisterSim::new();
    for op in ops {
        sim.apply(op)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use faust_types::History;

    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn legal_sequence_accepted() {
        let mut h = History::new();
        let w = h.begin_write(c(0), Value::from("x"), 0);
        h.complete_write(w, 1, None);
        let r = h.begin_read(c(1), c(0), 2);
        h.complete_read(r, 3, Some(Value::from("x")), None);
        assert_eq!(check_sequence(h.ops()), Ok(()));
    }

    #[test]
    fn stale_read_rejected() {
        let mut h = History::new();
        let w1 = h.begin_write(c(0), Value::from("x1"), 0);
        h.complete_write(w1, 1, None);
        let w2 = h.begin_write(c(0), Value::from("x2"), 2);
        h.complete_write(w2, 3, None);
        let r = h.begin_read(c(1), c(0), 4);
        h.complete_read(r, 5, Some(Value::from("x1")), None);
        assert!(matches!(
            check_sequence(h.ops()),
            Err(SpecError::WrongValue { .. })
        ));
    }

    #[test]
    fn read_of_initial_register() {
        let mut h = History::new();
        let r = h.begin_read(c(1), c(0), 0);
        h.complete_read(r, 1, None, None);
        assert_eq!(check_sequence(h.ops()), Ok(()));

        // Returning a value from an unwritten register is illegal.
        let mut h2 = History::new();
        let r2 = h2.begin_read(c(1), c(0), 0);
        h2.complete_read(r2, 1, Some(Value::from("ghost")), None);
        assert!(check_sequence(h2.ops()).is_err());
    }

    #[test]
    fn pending_read_imposes_no_constraint() {
        let mut h = History::new();
        let w = h.begin_write(c(0), Value::from("x"), 0);
        h.complete_write(w, 1, None);
        let _r = h.begin_read(c(1), c(0), 2); // never completes
        assert_eq!(check_sequence(h.ops()), Ok(()));
    }

    #[test]
    fn registers_are_independent() {
        let mut h = History::new();
        let w0 = h.begin_write(c(0), Value::from("a"), 0);
        h.complete_write(w0, 1, None);
        let w1 = h.begin_write(c(1), Value::from("b"), 0);
        h.complete_write(w1, 1, None);
        let r = h.begin_read(c(2), c(1), 2);
        h.complete_read(r, 3, Some(Value::from("b")), None);
        assert_eq!(check_sequence(h.ops()), Ok(()));
    }
}
