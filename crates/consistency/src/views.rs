//! Search for candidate views: sequences over a chosen operation set that
//! respect a precedence relation and the register spec.
//!
//! The search is a depth-first enumeration of topological orders with the
//! sequential specification checked incrementally (illegal prefixes are
//! pruned immediately). Register contents are tracked as *writer indices*
//! rather than values — with unique written values, "read `r` returns the
//! register's current value" is exactly "the register's last writer is
//! `reads_from[r]`" — which makes the inner loop allocation-free.

use std::collections::{HashMap, HashSet};

/// Outcome of a budgeted search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome<T> {
    /// The search completed and found this result.
    Found(T),
    /// The search completed; no result exists.
    NotFound,
    /// The node budget ran out before the search completed.
    Exhausted,
}

/// Inputs to the view search, borrowed from the checker.
pub struct SearchProblem<'a> {
    /// Operation indices in the view, ascending.
    pub set: Vec<usize>,
    /// For each member of `set` (parallel vector): bitmask of `set`
    /// members that must precede it.
    pub preds: Vec<u64>,
    /// For each member of `set`: `Some(w)` = it is a read that must see
    /// writer index `w` (an index into the *history*); `None` = a write,
    /// or a read of `⊥`.
    pub reads_from: Vec<Option<usize>>,
    /// For each member of `set`: `Some(reg)` = it is a read of register
    /// `reg`; used to look up current contents.
    pub read_register: Vec<Option<u32>>,
    /// For each member of `set`: `Some(reg)` = it is a write to `reg`.
    pub write_register: Vec<Option<u32>>,
    /// Node budget, decremented as the search runs.
    pub max_nodes: &'a mut usize,
}

struct Dfs<'a, F: FnMut(&[usize]) -> bool> {
    problem: &'a mut SearchProblem<'a>,
    /// Current register contents: register → history index of last write.
    contents: HashMap<u32, usize>,
    sequence: Vec<usize>,
    placed: u64,
    /// Masks from which no completion was possible (find-one mode only).
    dead: HashSet<u64>,
    /// Invoked on every complete sequence; returns whether to accept it.
    accept: F,
    /// Accepted sequences (as history indices).
    found: Vec<Vec<usize>>,
    /// Stop after this many accepted sequences.
    cap: usize,
    exhausted: bool,
    /// Enables the dead-mask memoization (sound only when the caller
    /// needs a single sequence and `accept` is pure per-sequence-set —
    /// for post-filtered searches memoization must stay off).
    memoize: bool,
}

impl<'a, F: FnMut(&[usize]) -> bool> Dfs<'a, F> {
    fn run(&mut self) {
        self.dfs();
    }

    /// Returns `true` if the caller should keep searching.
    fn dfs(&mut self) -> bool {
        if *self.problem.max_nodes == 0 {
            self.exhausted = true;
            return false;
        }
        *self.problem.max_nodes -= 1;

        let k = self.problem.set.len();
        if self.sequence.len() == k {
            let seq: Vec<usize> = self
                .sequence
                .iter()
                .map(|&slot| self.problem.set[slot])
                .collect();
            if (self.accept)(&seq) {
                self.found.push(seq);
                if self.found.len() >= self.cap {
                    return false;
                }
            }
            return true;
        }
        if self.memoize && self.dead.contains(&self.placed) {
            return true;
        }
        let before = self.found.len();

        for slot in 0..k {
            let bit = 1u64 << slot;
            if self.placed & bit != 0 {
                continue;
            }
            if self.problem.preds[slot] & !self.placed != 0 {
                continue; // unplaced predecessors remain
            }
            // Register-spec check for reads.
            if let Some(reg) = self.problem.read_register[slot] {
                let current = self.contents.get(&reg).copied();
                if current != self.problem.reads_from[slot] {
                    continue;
                }
            }
            // Apply.
            let mut saved = None;
            if let Some(reg) = self.problem.write_register[slot] {
                saved = Some((reg, self.contents.get(&reg).copied()));
                self.contents.insert(reg, self.problem.set[slot]);
            }
            self.sequence.push(slot);
            self.placed |= bit;

            let keep_going = self.dfs();

            // Undo.
            self.placed &= !bit;
            self.sequence.pop();
            if let Some((reg, old)) = saved {
                match old {
                    Some(w) => {
                        self.contents.insert(reg, w);
                    }
                    None => {
                        self.contents.remove(&reg);
                    }
                }
            }
            if !keep_going {
                return false;
            }
        }

        if self.memoize && self.found.len() == before {
            self.dead.insert(self.placed);
        }
        true
    }
}

/// Searches for sequences over `problem.set` that respect the precedence
/// masks and the register spec, accepting those for which `accept`
/// returns `true`, up to `cap` results.
///
/// With `memoize = true` the search prunes revisited prefixsets — sound
/// only when one result is needed.
pub fn search<'a>(
    problem: &'a mut SearchProblem<'a>,
    cap: usize,
    memoize: bool,
    accept: impl FnMut(&[usize]) -> bool,
) -> SearchOutcome<Vec<Vec<usize>>> {
    assert!(problem.set.len() <= 64, "view search is capped at 64 ops");
    let mut dfs = Dfs {
        problem,
        contents: HashMap::new(),
        sequence: Vec::new(),
        placed: 0,
        dead: HashSet::new(),
        accept,
        found: Vec::new(),
        cap: cap.max(1),
        exhausted: false,
        memoize,
    };
    dfs.run();
    let exhausted = dfs.exhausted;
    let found = std::mem::take(&mut dfs.found);
    drop(dfs);
    if !found.is_empty() {
        SearchOutcome::Found(found)
    } else if exhausted {
        SearchOutcome::Exhausted
    } else {
        SearchOutcome::NotFound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two writes to the same register and one read that must see the
    /// second write: the read can only be scheduled after write 1.
    #[test]
    fn read_forces_write_order() {
        let mut nodes = 10_000;
        let mut p = SearchProblem {
            set: vec![0, 1, 2],
            preds: vec![0, 0, 0],
            reads_from: vec![None, None, Some(1)],
            read_register: vec![None, None, Some(0)],
            write_register: vec![Some(0), Some(0), None],
            max_nodes: &mut nodes,
        };
        let out = search(&mut p, 100, false, |_| true);
        let SearchOutcome::Found(seqs) = out else {
            panic!("expected sequences");
        };
        // In every sequence, the read (2) comes directly after write 1
        // with no intervening write 0.
        for s in &seqs {
            let pos_r = s.iter().position(|&x| x == 2).unwrap();
            let pos_w1 = s.iter().position(|&x| x == 1).unwrap();
            let pos_w0 = s.iter().position(|&x| x == 0).unwrap();
            assert!(pos_w1 < pos_r);
            assert!(!(pos_w0 > pos_w1 && pos_w0 < pos_r));
        }
        // w0 w1 r and w1 r w0? The latter violates nothing spec-wise…
        // wait: reading register 0 after w1 requires content==1; if w0 is
        // after the read it is fine. Both orders are found.
        assert!(seqs.len() >= 2);
    }

    #[test]
    fn precedence_respected() {
        let mut nodes = 10_000;
        let mut p = SearchProblem {
            set: vec![0, 1],
            preds: vec![0b10, 0], // 1 must precede 0
            reads_from: vec![None, None],
            read_register: vec![None, None],
            write_register: vec![Some(0), Some(1)],
            max_nodes: &mut nodes,
        };
        let out = search(&mut p, 10, false, |_| true);
        assert_eq!(out, SearchOutcome::Found(vec![vec![1, 0]]));
    }

    #[test]
    fn unsatisfiable_returns_not_found() {
        // A read that must see a writer that is not in the set at all:
        // contents can never equal Some(9).
        let mut nodes = 10_000;
        let mut p = SearchProblem {
            set: vec![0],
            preds: vec![0],
            reads_from: vec![Some(9)],
            read_register: vec![Some(0)],
            write_register: vec![None],
            max_nodes: &mut nodes,
        };
        assert_eq!(search(&mut p, 10, false, |_| true), SearchOutcome::NotFound);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut nodes = 1;
        let mut p = SearchProblem {
            set: vec![0, 1, 2, 3],
            preds: vec![0; 4],
            reads_from: vec![None; 4],
            read_register: vec![None; 4],
            write_register: vec![Some(0), Some(1), Some(2), Some(3)],
            max_nodes: &mut nodes,
        };
        assert_eq!(
            search(&mut p, 1000, false, |_| true),
            SearchOutcome::Exhausted
        );
    }

    #[test]
    fn post_filter_applies() {
        let mut nodes = 10_000;
        let mut p = SearchProblem {
            set: vec![0, 1],
            preds: vec![0, 0],
            reads_from: vec![None, None],
            read_register: vec![None, None],
            write_register: vec![Some(0), Some(1)],
            max_nodes: &mut nodes,
        };
        let out = search(&mut p, 10, false, |s| s[0] == 1);
        assert_eq!(out, SearchOutcome::Found(vec![vec![1, 0]]));
    }
}
